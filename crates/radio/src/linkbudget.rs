//! Link budget: transmit powers, path loss, and operator beam profiles.
//!
//! Path loss is the classic log-distance model with per-technology
//! exponents (mmWave is near-LOS within its tiny serving radius; blockage
//! is a separate channel process). The interesting paper-specific piece is
//! [`BeamProfile`]: §5.5 found Verizon's mmWave RSRP 10–20 dB *lower* than
//! AT&T's at similar throughput because Verizon uses fewer, wider beams —
//! RSRP is measured on the (wide) SSB beam while traffic flows on a
//! narrower refined beam. We model that as an operator-specific offset
//! applied to *reported* RSRP only, which is precisely what makes RSRP a
//! poor throughput predictor for Verizon DL in Table 2.

use serde::{Deserialize, Serialize};
use wheels_sim_core::units::{Db, Dbm, Distance};

use crate::tech::Technology;

/// Reference distance for the log-distance model.
const D0_M: f64 = 10.0;

/// Free-space path loss at distance `d0` meters and frequency `f` GHz.
fn fspl_db(d_m: f64, f_ghz: f64) -> f64 {
    // FSPL(dB) = 20 log10(d_m) + 20 log10(f_GHz) + 32.45 (d in m → km adj.)
    20.0 * d_m.max(1.0).log10() + 20.0 * f_ghz.log10() + 32.45 - 60.0 + 60.0
    // Note: the constant folds to the standard 32.45 with d in meters and
    // f in GHz after unit conversion; kept explicit for auditability.
}

/// The link budget of one technology, optionally shaped by an operator's
/// beam strategy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Technology whose band and exponent apply.
    pub tech: Technology,
    /// Effective isotropic radiated power of the cell (includes antenna
    /// gain).
    pub eirp: Dbm,
    /// Path-loss exponent beyond the reference distance.
    pub exponent: f64,
}

impl LinkBudget {
    /// Default budget for a technology.
    pub fn for_tech(tech: Technology) -> Self {
        let (eirp, exponent) = match tech {
            // Macro cells: 46 dBm PA + ~15 dBi panel.
            Technology::Lte => (Dbm(61.0), 3.35),
            Technology::LteA => (Dbm(61.0), 3.35),
            // Low-band propagates better (lower exponent) at same power.
            Technology::Nr5gLow => (Dbm(61.0), 3.15),
            // Massive-MIMO mid-band: higher EIRP, denser urban clutter.
            Technology::Nr5gMid => (Dbm(66.0), 3.45),
            // Beamformed mmWave: street-level clutter pushes the exponent
            // well above LOS even within the small serving radius.
            Technology::Nr5gMmWave => (Dbm(52.0), 2.90),
        };
        LinkBudget {
            tech,
            eirp,
            exponent,
        }
    }

    /// Path loss at distance `d`.
    pub fn path_loss(&self, d: Distance) -> Db {
        let d_m = d.as_m().max(D0_M);
        let pl0 = fspl_db(D0_M, self.tech.carrier_ghz());
        Db(pl0 + 10.0 * self.exponent * (d_m / D0_M).log10())
    }

    /// Mean received power at distance `d` (before shadowing/fading).
    pub fn mean_rx_power(&self, d: Distance) -> Dbm {
        self.eirp.minus(self.path_loss(d))
    }

    /// Thermal-noise-plus-noise-figure floor over one component carrier.
    pub fn noise_floor(&self) -> Dbm {
        let bw_hz = self.tech.cc_bandwidth_mhz() * 1e6;
        // -174 dBm/Hz thermal + 9 dB UE noise figure.
        Dbm(-174.0 + 10.0 * bw_hz.log10() + 9.0)
    }
}

/// Operator beam strategy for mmWave RSRP reporting (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeamProfile {
    /// Offset applied to *reported* RSRP (SSB beam gain relative to the
    /// traffic beam). Verizon's wide beams → strongly negative; AT&T's
    /// narrow beams → near zero.
    pub rsrp_offset: Db,
}

impl BeamProfile {
    /// Narrow-beam profile (reported RSRP tracks the traffic beam).
    pub fn narrow() -> Self {
        BeamProfile {
            rsrp_offset: Db(-2.0),
        }
    }

    /// Wide-beam profile (reported RSRP ~15 dB below the traffic beam).
    pub fn wide() -> Self {
        BeamProfile {
            rsrp_offset: Db(-15.0),
        }
    }

    /// Neutral profile for non-mmWave technologies.
    pub fn neutral() -> Self {
        BeamProfile {
            rsrp_offset: Db(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_increases_with_distance() {
        for tech in Technology::ALL {
            let lb = LinkBudget::for_tech(tech);
            let near = lb.path_loss(Distance::from_m(50.0));
            let far = lb.path_loss(Distance::from_m(5000.0));
            assert!(far.0 > near.0, "{tech:?}");
        }
    }

    #[test]
    fn path_loss_slope_matches_exponent() {
        let lb = LinkBudget::for_tech(Technology::Lte);
        let d1 = lb.path_loss(Distance::from_m(100.0));
        let d10 = lb.path_loss(Distance::from_m(1000.0));
        // One decade of distance adds 10·n dB.
        assert!((d10.0 - d1.0 - 10.0 * lb.exponent).abs() < 1e-9);
    }

    #[test]
    fn mmwave_loses_more_per_meter_at_band_but_less_per_decade() {
        let mm = LinkBudget::for_tech(Technology::Nr5gMmWave);
        let low = LinkBudget::for_tech(Technology::Nr5gLow);
        // At the same short distance, 28 GHz FSPL dwarfs 850 MHz.
        assert!(mm.path_loss(Distance::from_m(100.0)).0 > low.path_loss(Distance::from_m(100.0)).0);
        // But its exponent (short-range, beamformed) is smaller.
        assert!(mm.exponent < low.exponent);
    }

    #[test]
    fn rx_power_realistic_at_cell_edge() {
        // At each tech's serving radius, mean RX power should be in the
        // plausible RSRP regime (between -130 and -70 dBm).
        for tech in Technology::ALL {
            let lb = LinkBudget::for_tech(tech);
            let rx = lb.mean_rx_power(tech.cell_radius());
            assert!(
                (-130.0..=-60.0).contains(&rx.0),
                "{tech:?} edge rx {} dBm",
                rx.0
            );
        }
    }

    #[test]
    fn rx_power_strong_near_cell() {
        let lb = LinkBudget::for_tech(Technology::Nr5gMmWave);
        let rx = lb.mean_rx_power(Distance::from_m(30.0));
        assert!(rx.0 > -75.0, "near mmWave rx {} dBm", rx.0);
    }

    #[test]
    fn noise_floor_scales_with_bandwidth() {
        let lte = LinkBudget::for_tech(Technology::Lte).noise_floor();
        let mid = LinkBudget::for_tech(Technology::Nr5gMid).noise_floor();
        // 100 MHz vs 20 MHz → ~7 dB higher noise floor.
        assert!((mid.0 - lte.0 - 10.0 * (100.0f64 / 20.0).log10()).abs() < 1e-9);
    }

    #[test]
    fn beam_profiles_ordering() {
        assert!(BeamProfile::wide().rsrp_offset.0 < BeamProfile::narrow().rsrp_offset.0);
        assert_eq!(BeamProfile::neutral().rsrp_offset.0, 0.0);
    }

    #[test]
    fn fspl_reference_value() {
        // 2.4 GHz at 100 m ≈ 80 dB (well-known reference point).
        let v = fspl_db(100.0, 2.4);
        assert!((v - 80.05).abs() < 0.2, "fspl {v}");
    }
}
