//! Per-link channel dynamics.
//!
//! A [`LinkChannel`] owns the stochastic state of one UE↔cell link:
//!
//! - **Shadowing** — spatially-correlated log-normal (Gauss-Markov stepped
//!   by meters moved), so a car driving behind a hill stays shadowed for a
//!   correlated stretch of road.
//! - **Fast fading** — AR(1) in dB, stepped per poll.
//! - **Blockage** — mmWave only: a two-state LOS/NLOS Markov process whose
//!   dwell times shrink with speed (passing trucks, poles, foliage), adding
//!   a large penalty when blocked. This is the main source of the paper's
//!   "mmWave can deliver >1 Gbps and also extremely low throughput while
//!   driving" bimodality.
//!
//! The output [`ChannelSample`] separates *reported RSRP* (what XCAL logs,
//! including the operator's SSB beam offset) from *SINR* (what the
//! scheduler actually achieves on the traffic beam) — the wedge between the
//! two is what breaks the RSRP↔throughput correlation for wide-beam
//! operators (Table 2).

use serde::{Deserialize, Serialize};
use wheels_sim_core::process::{Ar1, GaussMarkov, TwoStateMarkov};
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::units::{Db, Dbm, Distance, Speed};

use crate::linkbudget::{BeamProfile, LinkBudget};
use crate::tech::Technology;

/// Instantaneous channel readout for one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelSample {
    /// RSRP as the modem reports it (includes the SSB beam offset).
    pub rsrp: Dbm,
    /// Signal-to-noise ratio on the traffic beam, before interference.
    pub snr: Db,
    /// True while a mmWave link is blocked (NLOS).
    pub blocked: bool,
}

/// dB penalty applied to a blocked mmWave link.
const BLOCKAGE_PENALTY_DB: f64 = 22.0;

/// Stochastic state of one UE↔cell radio link.
#[derive(Debug, Clone)]
pub struct LinkChannel {
    budget: LinkBudget,
    beam: BeamProfile,
    shadowing: GaussMarkov,
    fading: Ar1,
    blockage: Option<TwoStateMarkov>,
}

impl LinkChannel {
    /// Create the channel for a link using `tech` with the operator's
    /// mmWave `beam` profile.
    pub fn new(tech: Technology, beam: BeamProfile, rng: &mut SimRng) -> Self {
        let shadow_sigma = match tech {
            Technology::Nr5gMmWave => 4.5,
            Technology::Nr5gMid => 7.0,
            _ => 6.5,
        };
        // Correlation length in meters (decorrelation distance).
        let shadow_corr_m = match tech {
            Technology::Nr5gMmWave => 25.0,
            _ => 90.0,
        };
        let blockage = (tech == Technology::Nr5gMmWave)
            .then(|| TwoStateMarkov::new_stationary(6_000.0, 1_500.0, rng));
        LinkChannel {
            budget: LinkBudget::for_tech(tech),
            beam,
            shadowing: GaussMarkov::new_stationary(0.0, shadow_sigma, shadow_corr_m, rng),
            fading: Ar1::new(0.70, 2.5),
            blockage,
        }
    }

    /// The technology this link runs on.
    pub fn tech(&self) -> Technology {
        self.budget.tech
    }

    /// Re-bias the blockage process for a static, line-of-sight geometry
    /// (a tester standing in front of the BS): ~97% LOS with only brief
    /// obstructions from passing traffic.
    #[must_use]
    pub fn with_static_los(mut self) -> Self {
        if self.blockage.is_some() {
            self.blockage = Some(TwoStateMarkov::new(30_000.0, 900.0, true));
        }
        self
    }

    /// Advance the channel and sample it.
    ///
    /// * `distance` — current UE↔cell distance.
    /// * `moved` — meters moved since the last sample (steps shadowing).
    /// * `dt_ms` — time since the last sample (steps blockage; its dwell
    ///   times scale down with `speed` so faster driving blocks more).
    pub fn sample(
        &mut self,
        rng: &mut SimRng,
        distance: Distance,
        moved: Distance,
        dt_ms: u64,
        speed: Speed,
    ) -> ChannelSample {
        let shadow = Db(self.shadowing.step(rng, moved.as_m()));
        let fade = Db(self.fading.step(rng));

        let mut blocked = false;
        let mut blockage_loss = Db(0.0);
        if let Some(b) = &mut self.blockage {
            // Faster motion sweeps through blockers quicker in both
            // directions: scale effective time by (1 + v/10).
            let scale = 1.0 + speed.as_mps() / 10.0;
            blocked = !b.step(rng, dt_ms as f64 * scale);
            if blocked {
                blockage_loss = Db(BLOCKAGE_PENALTY_DB);
            }
        }

        let rx = self
            .budget
            .mean_rx_power(distance)
            .plus(shadow)
            .plus(fade)
            .minus(blockage_loss);
        let snr = rx - self.budget.noise_floor();
        let re_norm = Db(self.budget.tech.rsrp_per_re_offset_db());
        // Measurement error: the modem's reported RSRP is a filtered
        // estimate, a couple of dB off the true channel at any instant —
        // one of the reasons RSRP predicts throughput poorly (Table 2).
        let meas_err = Db(rng.normal(0.0, 2.0));
        let reported = rx.plus(self.beam.rsrp_offset).minus(re_norm).plus(meas_err);
        ChannelSample {
            // Modems report RSRP within [-140, -44] dBm.
            rsrp: Dbm(reported.0.clamp(-140.0, -44.0)),
            snr,
            blocked,
        }
    }

    /// Mean (deterministic) reported RSRP at a distance — used for cell
    /// selection and A3 handover comparison without consuming randomness.
    pub fn mean_rsrp(&self, distance: Distance) -> Dbm {
        self.budget
            .mean_rx_power(distance)
            .plus(self.beam.rsrp_offset)
            .minus(Db(self.budget.tech.rsrp_per_re_offset_db()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_many(
        tech: Technology,
        beam: BeamProfile,
        d: Distance,
        n: usize,
        seed: u64,
    ) -> Vec<ChannelSample> {
        let mut rng = SimRng::seed(seed);
        let mut ch = LinkChannel::new(tech, beam, &mut rng);
        (0..n)
            .map(|_| {
                ch.sample(
                    &mut rng,
                    d,
                    Distance::from_m(15.0),
                    500,
                    Speed::from_mph(65.0),
                )
            })
            .collect()
    }

    #[test]
    fn rsrp_centers_on_link_budget_minus_re_norm() {
        let d = Distance::from_km(2.0);
        let samples = sample_many(Technology::Lte, BeamProfile::neutral(), d, 5000, 1);
        let mean_rsrp = samples.iter().map(|s| s.rsrp.0).sum::<f64>() / samples.len() as f64;
        let expect = LinkBudget::for_tech(Technology::Lte).mean_rx_power(d).0
            - Technology::Lte.rsrp_per_re_offset_db();
        assert!(
            (mean_rsrp - expect).abs() < 1.0,
            "mean {mean_rsrp} expect {expect}"
        );
    }

    #[test]
    fn reported_mmwave_rsrp_in_paper_range() {
        // §5.5: Verizon mmWave RSRP mostly −80..−110 dBm (wide beams),
        // AT&T −70..−90 dBm (narrow beams).
        let d = Distance::from_m(150.0);
        let wide = sample_many(Technology::Nr5gMmWave, BeamProfile::wide(), d, 4000, 21);
        let med = |v: &[ChannelSample]| {
            let mut xs: Vec<f64> = v.iter().map(|s| s.rsrp.0).collect();
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        };
        let mv = med(&wide);
        assert!((-112.0..=-80.0).contains(&mv), "verizon-like median {mv}");
        let narrow = sample_many(Technology::Nr5gMmWave, BeamProfile::narrow(), d, 4000, 21);
        let ma = med(&narrow);
        assert!((-101.0..=-68.0).contains(&ma), "att-like median {ma}");
        assert!(ma > mv);
    }

    #[test]
    fn beam_offset_shifts_reported_rsrp_not_snr() {
        let d = Distance::from_m(120.0);
        let wide = sample_many(Technology::Nr5gMmWave, BeamProfile::wide(), d, 4000, 2);
        let narrow = sample_many(Technology::Nr5gMmWave, BeamProfile::narrow(), d, 4000, 2);
        let mean = |v: &[ChannelSample], f: fn(&ChannelSample) -> f64| {
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        let d_rsrp = mean(&narrow, |s| s.rsrp.0) - mean(&wide, |s| s.rsrp.0);
        let d_snr = mean(&narrow, |s| s.snr.0) - mean(&wide, |s| s.snr.0);
        assert!((d_rsrp - 13.0).abs() < 1.5, "rsrp delta {d_rsrp}");
        assert!(d_snr.abs() < 1.0, "snr delta {d_snr}");
    }

    #[test]
    fn mmwave_blocks_sometimes_others_never() {
        let mm = sample_many(
            Technology::Nr5gMmWave,
            BeamProfile::neutral(),
            Distance::from_m(150.0),
            5000,
            3,
        );
        let frac = mm.iter().filter(|s| s.blocked).count() as f64 / mm.len() as f64;
        assert!(frac > 0.05 && frac < 0.5, "blocked fraction {frac}");
        for tech in [Technology::Lte, Technology::Nr5gMid, Technology::Nr5gLow] {
            let s = sample_many(
                tech,
                BeamProfile::neutral(),
                Distance::from_km(1.0),
                1000,
                4,
            );
            assert!(s.iter().all(|x| !x.blocked), "{tech:?}");
        }
    }

    #[test]
    fn blockage_costs_snr() {
        let samples = sample_many(
            Technology::Nr5gMmWave,
            BeamProfile::neutral(),
            Distance::from_m(150.0),
            8000,
            5,
        );
        let (blocked, clear): (Vec<_>, Vec<_>) = samples.iter().partition(|s| s.blocked);
        assert!(!blocked.is_empty() && !clear.is_empty());
        let m = |v: &[&ChannelSample]| v.iter().map(|s| s.snr.0).sum::<f64>() / v.len() as f64;
        let gap = m(&clear) - m(&blocked);
        assert!(
            (gap - BLOCKAGE_PENALTY_DB).abs() < 3.0,
            "blockage gap {gap} dB"
        );
    }

    #[test]
    fn snr_declines_with_distance() {
        let near = sample_many(
            Technology::Nr5gMid,
            BeamProfile::neutral(),
            Distance::from_m(300.0),
            2000,
            6,
        );
        let far = sample_many(
            Technology::Nr5gMid,
            BeamProfile::neutral(),
            Distance::from_km(2.5),
            2000,
            6,
        );
        let m = |v: &[ChannelSample]| v.iter().map(|s| s.snr.0).sum::<f64>() / v.len() as f64;
        assert!(m(&near) > m(&far) + 15.0);
    }

    #[test]
    fn shadowing_is_correlated_over_short_moves() {
        let mut rng = SimRng::seed(7);
        let mut ch = LinkChannel::new(Technology::Lte, BeamProfile::neutral(), &mut rng);
        let d = Distance::from_km(3.0);
        // Tiny moves: consecutive samples should be close (correlated).
        let mut diffs = Vec::new();
        let mut last = ch
            .sample(&mut rng, d, Distance::from_m(1.0), 100, Speed::ZERO)
            .rsrp
            .0;
        for _ in 0..500 {
            let s = ch
                .sample(&mut rng, d, Distance::from_m(1.0), 100, Speed::ZERO)
                .rsrp
                .0;
            diffs.push((s - last).abs());
            last = s;
        }
        let mean_diff = diffs.iter().sum::<f64>() / diffs.len() as f64;
        // Fading contributes ~2.5 dB sd; shadowing barely moves at 1 m steps.
        assert!(mean_diff < 5.0, "mean step {mean_diff} dB");
    }

    #[test]
    fn mean_rsrp_is_deterministic() {
        let mut rng = SimRng::seed(8);
        let ch = LinkChannel::new(Technology::LteA, BeamProfile::neutral(), &mut rng);
        let a = ch.mean_rsrp(Distance::from_km(1.0));
        let b = ch.mean_rsrp(Distance::from_km(1.0));
        assert_eq!(a, b);
        assert!(ch.mean_rsrp(Distance::from_km(0.5)).0 > a.0);
    }
}
