//! # wheels-radio
//!
//! The cellular PHY substrate: everything between "the car is at this
//! distance from this cell" and "the modem reports RSRP −97 dBm, MCS 18,
//! BLER 9%, 4 component carriers, 212 Mbps achievable".
//!
//! The paper's analysis (§5.5, Table 2) correlates throughput against
//! exactly five lower-layer KPIs — primary-cell RSRP, primary-cell MCS,
//! carrier aggregation, primary-cell BLER, handovers — so this crate is
//! built around producing those KPIs with realistic dynamics:
//!
//! - [`tech`] — the five technologies of the study (LTE, LTE-A, 5G-low,
//!   5G-mid, 5G-mmWave) with their bands, bandwidths, and CA limits.
//! - [`linkbudget`] — log-distance path loss per band, per-operator beam
//!   models (the Verizon-wide-beam vs AT&T-narrow-beam RSRP effect), and
//!   transmit powers.
//! - [`channel`] — per-link dynamics: spatially-correlated shadowing,
//!   AR(1) fast fading, and a two-state LOS/blockage process for mmWave.
//! - [`mcs`] — SINR→CQI→MCS mapping and the BLER model around the 10%
//!   initial-transmission HARQ target.
//! - [`ca`] — carrier aggregation: assembling component carriers into an
//!   aggregate rate, UL/DL asymmetry included.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod channel;
pub mod linkbudget;
pub mod mcs;
pub mod tech;

pub use ca::{AggregateLink, CarrierAllocation};
pub use channel::{ChannelSample, LinkChannel};
pub use linkbudget::{BeamProfile, LinkBudget};
pub use mcs::{bler, mcs_from_sinr, spectral_efficiency, McsIndex};
pub use tech::{Direction, Technology};
