//! Carrier aggregation and aggregate link rate.
//!
//! A UE's aggregate rate is the sum over its component carriers (possibly
//! spanning technologies — EN-DC runs NR legs beside an LTE anchor), capped
//! by the device. §5.5's CA finding is reproduced structurally: more
//! carriers do not always mean more throughput, because secondary carriers
//! run at progressively lower SINR and an LTE anchor carrier contributes
//! only LTE-grade bandwidth.

use serde::{Deserialize, Serialize};
use wheels_sim_core::units::{DataRate, Db};

use crate::mcs::{bler, goodput_mcs, harq_goodput_factor, mcs_from_sinr, spectral_efficiency};
use crate::tech::{Direction, Technology};

/// One block of identical component carriers in an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarrierComponent {
    /// The carriers' technology.
    pub tech: Technology,
    /// Number of carriers of this technology.
    pub count: u8,
}

/// The set of carriers currently serving one UE in one direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarrierAllocation {
    /// The primary (anchor) component; its tech is what XCAL reports as
    /// the serving technology, and its SINR drives the reported MCS/BLER.
    pub primary: CarrierComponent,
    /// Secondary components (may be a different technology under EN-DC).
    pub secondaries: Vec<CarrierComponent>,
}

impl CarrierAllocation {
    /// Single-carrier allocation.
    pub fn single(tech: Technology) -> Self {
        CarrierAllocation {
            primary: CarrierComponent { tech, count: 1 },
            secondaries: Vec::new(),
        }
    }

    /// Total number of component carriers.
    pub fn total_carriers(&self) -> u8 {
        self.primary.count + self.secondaries.iter().map(|c| c.count).sum::<u8>()
    }

    /// Clamp carrier counts to the device's per-technology limits.
    pub fn clamped_to_device(mut self, dir: Direction) -> Self {
        self.primary.count = self
            .primary
            .count
            .min(self.primary.tech.max_ccs(dir))
            .max(1);
        for c in &mut self.secondaries {
            c.count = c.count.min(c.tech.max_ccs(dir));
        }
        self.secondaries.retain(|c| c.count > 0);
        self
    }
}

/// Per-technology device peak rates (Samsung S21-class): the modem caps
/// the aggregate regardless of spectrum (3.5 Gbps DL / 350 Mbps UL on
/// mmWave per the paper's testbed description, Appendix B).
pub fn device_peak(tech: Technology, dir: Direction) -> DataRate {
    let mbps = match (tech, dir) {
        (Technology::Lte, Direction::Downlink) => 110.0,
        (Technology::Lte, Direction::Uplink) => 45.0,
        (Technology::LteA, Direction::Downlink) => 450.0,
        (Technology::LteA, Direction::Uplink) => 90.0,
        (Technology::Nr5gLow, Direction::Downlink) => 160.0,
        (Technology::Nr5gLow, Direction::Uplink) => 60.0,
        (Technology::Nr5gMid, Direction::Downlink) => 1200.0,
        (Technology::Nr5gMid, Direction::Uplink) => 160.0,
        (Technology::Nr5gMmWave, Direction::Downlink) => 3500.0,
        (Technology::Nr5gMmWave, Direction::Uplink) => 350.0,
    };
    DataRate::from_mbps(mbps)
}

/// SINR degradation of the i-th extra carrier relative to the primary
/// (secondary cells are farther / less optimized).
const SECONDARY_SINR_STEP_DB: f64 = 1.8;

/// Protocol overhead (reference signals, control channels, headers) taken
/// off the PHY rate.
const OVERHEAD: f64 = 0.82;

/// Maximum MIMO layers by technology and direction.
fn mimo_layers(tech: Technology, dir: Direction) -> f64 {
    match (tech, dir) {
        (Technology::Nr5gMid, Direction::Downlink) => 4.0,
        (Technology::Nr5gMmWave, Direction::Downlink) => 2.0,
        (Technology::LteA, Direction::Downlink) => 2.0,
        (Technology::Lte, Direction::Downlink) => 2.0,
        (Technology::Nr5gLow, Direction::Downlink) => 2.0,
        (_, Direction::Uplink) => 1.0,
    }
}

/// Rank adaptation: usable spatial layers grow with SINR (rank 2 needs
/// roughly 15 dB, rank 4 roughly 33 dB), capped by the configuration.
fn effective_layers(sinr: Db, max_layers: f64) -> f64 {
    (1.0 + (sinr.0 - 6.0) / 9.0).clamp(1.0, max_layers)
}

/// A computed aggregate link: total rate plus the primary-cell KPIs XCAL
/// would report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateLink {
    /// Aggregate achievable goodput in this direction.
    pub rate: DataRate,
    /// Primary cell's MCS (the Table 2 KPI).
    pub primary_mcs: u8,
    /// Primary cell's initial BLER (the Table 2 KPI).
    pub primary_bler: f64,
    /// Total component carriers in the allocation (the Table 2 CA KPI).
    pub carriers: u8,
}

/// Rate of `count` carriers of `tech` at `sinr` (each successive carrier
/// loses `SECONDARY_SINR_STEP_DB` relative to the block's first).
fn component_rate(tech: Technology, count: u8, first_sinr: Db, dir: Direction) -> DataRate {
    let bw_hz = tech.cc_bandwidth_mhz() * 1e6 * tech.direction_fraction(dir);
    let max_layers = mimo_layers(tech, dir);
    let mut total = 0.0;
    for i in 0..count {
        let sinr = Db(first_sinr.0 - SECONDARY_SINR_STEP_DB * i as f64);
        // Transmit with the goodput-optimal index; the XCAL-reported KPI
        // (primary_mcs below) keeps the raw SINR-indicated index.
        let m = goodput_mcs(sinr);
        let se = spectral_efficiency(m);
        let goodput = harq_goodput_factor(bler(sinr, m));
        total += bw_hz * se * effective_layers(sinr, max_layers) * goodput * OVERHEAD;
    }
    DataRate::from_bps(total)
}

/// Compute the aggregate link for an allocation.
///
/// `primary_sinr` is the SINR on the primary carrier; each secondary block
/// starts `SECONDARY_SINR_STEP_DB` below the previous block's first
/// carrier. `load_factor` in 0..=1 is the fraction of cell resources
/// available to this UE (1 = empty cell).
pub fn aggregate(
    alloc: &CarrierAllocation,
    dir: Direction,
    primary_sinr: Db,
    load_factor: f64,
) -> AggregateLink {
    let alloc = alloc.clone().clamped_to_device(dir);
    let load = load_factor.clamp(0.0, 1.0);

    let mut rate = component_rate(alloc.primary.tech, alloc.primary.count, primary_sinr, dir);
    let mut block_start = primary_sinr.0 - SECONDARY_SINR_STEP_DB * alloc.primary.count as f64;
    for c in &alloc.secondaries {
        rate = rate + component_rate(c.tech, c.count, Db(block_start), dir);
        block_start -= SECONDARY_SINR_STEP_DB * c.count as f64;
    }

    // Device cap follows the fastest technology present.
    let cap = core::iter::once(alloc.primary.tech)
        .chain(alloc.secondaries.iter().map(|c| c.tech))
        .map(|t| device_peak(t, dir))
        .fold(DataRate::ZERO, DataRate::max);

    let m = mcs_from_sinr(primary_sinr);
    AggregateLink {
        rate: (rate * load).min(cap),
        primary_mcs: m.0,
        primary_bler: bler(primary_sinr, m),
        carriers: alloc.total_carriers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lte_carrier_realistic_rate() {
        let a = CarrierAllocation::single(Technology::Lte);
        let l = aggregate(&a, Direction::Downlink, Db(18.0), 1.0);
        // Good LTE link: several tens of Mbps, below the 110 cap.
        assert!(
            l.rate.as_mbps() > 40.0 && l.rate.as_mbps() <= 110.0,
            "rate {}",
            l.rate.as_mbps()
        );
    }

    #[test]
    fn mmwave_peak_hits_device_cap() {
        let a = CarrierAllocation {
            primary: CarrierComponent {
                tech: Technology::Nr5gMmWave,
                count: 8,
            },
            secondaries: vec![],
        };
        let l = aggregate(&a, Direction::Downlink, Db(28.0), 1.0);
        assert!(
            (l.rate.as_mbps() - 3500.0).abs() < 1e-6,
            "rate {}",
            l.rate.as_mbps()
        );
    }

    #[test]
    fn uplink_much_slower_than_downlink() {
        for tech in Technology::ALL {
            let a = CarrierAllocation::single(tech);
            let dl = aggregate(&a, Direction::Downlink, Db(15.0), 1.0);
            let ul = aggregate(&a, Direction::Uplink, Db(15.0), 1.0);
            assert!(
                dl.rate.as_mbps() > ul.rate.as_mbps() * 1.5,
                "{tech:?}: dl {} ul {}",
                dl.rate.as_mbps(),
                ul.rate.as_mbps()
            );
        }
    }

    #[test]
    fn more_carriers_more_rate_below_cap() {
        let one = CarrierAllocation::single(Technology::LteA);
        let three = CarrierAllocation {
            primary: CarrierComponent {
                tech: Technology::LteA,
                count: 3,
            },
            secondaries: vec![],
        };
        let r1 = aggregate(&one, Direction::Downlink, Db(12.0), 1.0);
        let r3 = aggregate(&three, Direction::Downlink, Db(12.0), 1.0);
        assert!(r3.rate.as_mbps() > r1.rate.as_mbps() * 2.0);
        assert_eq!(r1.carriers, 1);
        assert_eq!(r3.carriers, 3);
    }

    #[test]
    fn lte_anchor_contributes_little_beside_nr_mid() {
        // EN-DC: NR mid primary + LTE anchor secondary. The anchor adds a
        // carrier (CA KPI goes up) but little rate — the paper's T-Mobile
        // UL CA observation.
        let nr_only = CarrierAllocation::single(Technology::Nr5gMid);
        let endc = CarrierAllocation {
            primary: CarrierComponent {
                tech: Technology::Nr5gMid,
                count: 1,
            },
            secondaries: vec![CarrierComponent {
                tech: Technology::Lte,
                count: 1,
            }],
        };
        let a = aggregate(&nr_only, Direction::Uplink, Db(10.0), 1.0);
        let b = aggregate(&endc, Direction::Uplink, Db(10.0), 1.0);
        assert!(b.carriers == 2 && a.carriers == 1);
        let gain = b.rate.as_mbps() / a.rate.as_mbps();
        assert!(gain < 1.7, "EN-DC UL gain {gain}");
    }

    #[test]
    fn load_scales_rate_linearly() {
        let a = CarrierAllocation::single(Technology::Nr5gMid);
        let full = aggregate(&a, Direction::Downlink, Db(14.0), 1.0);
        let half = aggregate(&a, Direction::Downlink, Db(14.0), 0.5);
        assert!((half.rate.as_mbps() - full.rate.as_mbps() / 2.0).abs() < 1e-6);
    }

    #[test]
    fn clamp_respects_device_limits() {
        let a = CarrierAllocation {
            primary: CarrierComponent {
                tech: Technology::Nr5gMmWave,
                count: 20,
            },
            secondaries: vec![CarrierComponent {
                tech: Technology::Lte,
                count: 9,
            }],
        }
        .clamped_to_device(Direction::Downlink);
        assert_eq!(a.primary.count, 8);
        assert_eq!(a.secondaries[0].count, 1);
        let ul = CarrierAllocation {
            primary: CarrierComponent {
                tech: Technology::Nr5gMmWave,
                count: 20,
            },
            secondaries: vec![],
        }
        .clamped_to_device(Direction::Uplink);
        assert_eq!(ul.primary.count, 2);
    }

    #[test]
    fn bad_sinr_yields_tiny_rate() {
        let a = CarrierAllocation::single(Technology::Nr5gMid);
        let l = aggregate(&a, Direction::Downlink, Db(-8.0), 1.0);
        assert!(l.rate.as_mbps() < 20.0, "rate {}", l.rate.as_mbps());
        assert!(l.primary_bler > 0.3);
        assert_eq!(l.primary_mcs, 0);
    }

    #[test]
    fn kpis_reflect_primary_only() {
        let endc = CarrierAllocation {
            primary: CarrierComponent {
                tech: Technology::Lte,
                count: 1,
            },
            secondaries: vec![CarrierComponent {
                tech: Technology::Nr5gMid,
                count: 2,
            }],
        };
        let l = aggregate(&endc, Direction::Downlink, Db(20.0), 1.0);
        assert_eq!(l.primary_mcs, mcs_from_sinr(Db(20.0)).0);
        assert_eq!(l.carriers, 3);
    }

    #[test]
    fn tmobile_midband_driving_peak_plausible() {
        // Fig. 4: T-Mobile 5G-mid DL reaches ~760 Mbps while driving. Two
        // n41 carriers at strong SINR with some load should sit in the
        // several-hundred-Mbps regime.
        let a = CarrierAllocation {
            primary: CarrierComponent {
                tech: Technology::Nr5gMid,
                count: 2,
            },
            secondaries: vec![],
        };
        let l = aggregate(&a, Direction::Downlink, Db(24.0), 0.7);
        assert!(
            l.rate.as_mbps() > 500.0 && l.rate.as_mbps() <= 1200.0,
            "rate {}",
            l.rate.as_mbps()
        );
    }
}
