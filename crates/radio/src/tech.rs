//! The five cellular technologies of the study.
//!
//! The paper groups them two ways: *5G vs 4G* (Fig. 2a) and *high-speed
//! (5G mid + mmWave, "HT") vs low-speed ("LT")* (Fig. 6). Both groupings
//! live here so every crate bins identically.

use serde::{Deserialize, Serialize};
use wheels_sim_core::units::Distance;

/// Traffic direction. 5G service upgrades, CA limits, and bandwidth splits
/// all depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// Server → UE.
    Downlink,
    /// UE → server.
    Uplink,
}

impl Direction {
    /// Both directions.
    pub const ALL: [Direction; 2] = [Direction::Downlink, Direction::Uplink];

    /// Short label used in tables ("DL"/"UL").
    pub fn label(self) -> &'static str {
        match self {
            Direction::Downlink => "DL",
            Direction::Uplink => "UL",
        }
    }
}

/// A cellular radio access technology as the paper bins them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Technology {
    /// Plain LTE (single carrier).
    Lte,
    /// LTE-Advanced (carrier aggregation).
    LteA,
    /// 5G NR low-band (sub-1 GHz).
    Nr5gLow,
    /// 5G NR mid-band (C-band / n41).
    Nr5gMid,
    /// 5G NR mmWave (n260/n261).
    Nr5gMmWave,
}

impl Technology {
    /// All technologies, slowest to fastest.
    pub const ALL: [Technology; 5] = [
        Technology::Lte,
        Technology::LteA,
        Technology::Nr5gLow,
        Technology::Nr5gMid,
        Technology::Nr5gMmWave,
    ];

    /// Number of technologies (for fixed-size per-tech tables).
    pub const COUNT: usize = Technology::ALL.len();

    /// Position in [`Technology::ALL`] — the dense index for per-tech
    /// arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Technology::Lte => "LTE",
            Technology::LteA => "LTE-A",
            Technology::Nr5gLow => "5G-low",
            Technology::Nr5gMid => "5G-mid",
            Technology::Nr5gMmWave => "5G-mmWave",
        }
    }

    /// Is this a 5G NR technology?
    pub fn is_5g(self) -> bool {
        matches!(
            self,
            Technology::Nr5gLow | Technology::Nr5gMid | Technology::Nr5gMmWave
        )
    }

    /// The paper's "high-speed 5G" / high-throughput ("HT") grouping:
    /// mid-band and mmWave. Everything else is "LT".
    pub fn is_high_speed(self) -> bool {
        matches!(self, Technology::Nr5gMid | Technology::Nr5gMmWave)
    }

    /// Carrier frequency (GHz) used for path loss.
    pub fn carrier_ghz(self) -> f64 {
        match self {
            Technology::Lte => 1.9,
            Technology::LteA => 1.9,
            Technology::Nr5gLow => 0.85,
            Technology::Nr5gMid => 2.9, // blend of C-band (V/A) and n41 (T)
            Technology::Nr5gMmWave => 28.0,
        }
    }

    /// Bandwidth of one component carrier (MHz).
    pub fn cc_bandwidth_mhz(self) -> f64 {
        match self {
            Technology::Lte => 20.0,
            Technology::LteA => 20.0,
            Technology::Nr5gLow => 20.0,
            Technology::Nr5gMid => 100.0,
            Technology::Nr5gMmWave => 100.0,
        }
    }

    /// Maximum component carriers in each direction (Samsung S21 limits:
    /// up to 8 CC DL / 2 CC UL on mmWave; LTE-A up to 5 DL CA in the field).
    pub fn max_ccs(self, dir: Direction) -> u8 {
        match (self, dir) {
            (Technology::Lte, _) => 1,
            (Technology::LteA, Direction::Downlink) => 5,
            (Technology::LteA, Direction::Uplink) => 2,
            (Technology::Nr5gLow, _) => 1,
            (Technology::Nr5gMid, Direction::Downlink) => 2,
            (Technology::Nr5gMid, Direction::Uplink) => 2,
            (Technology::Nr5gMmWave, Direction::Downlink) => 8,
            (Technology::Nr5gMmWave, Direction::Uplink) => 2,
        }
    }

    /// Fraction of air-time/bandwidth available to this direction (TDD
    /// splits on NR mid/mmWave heavily favour DL; FDD LTE is symmetric per
    /// carrier but UL spectral efficiency is lower).
    pub fn direction_fraction(self, dir: Direction) -> f64 {
        match (self, dir) {
            (Technology::Nr5gMid, Direction::Downlink) => 0.74,
            (Technology::Nr5gMid, Direction::Uplink) => 0.23,
            (Technology::Nr5gMmWave, Direction::Downlink) => 0.77,
            (Technology::Nr5gMmWave, Direction::Uplink) => 0.20,
            (_, Direction::Downlink) => 1.0,
            (_, Direction::Uplink) => 0.75,
        }
    }

    /// Typical serving radius of a cell of this technology — drives both
    /// deployment density and the distance at which the link degrades.
    pub fn cell_radius(self) -> Distance {
        match self {
            Technology::Lte => Distance::from_km(9.0),
            Technology::LteA => Distance::from_km(9.0),
            Technology::Nr5gLow => Distance::from_km(7.5),
            Technology::Nr5gMid => Distance::from_km(2.8),
            Technology::Nr5gMmWave => Distance::from_m(280.0),
        }
    }

    /// Normalization from total received carrier power to the *per
    /// resource element* RSRP the modem reports: `10·log10(#RE)` over the
    /// carrier. This is why reported 5G RSRPs sit 30+ dB below the total
    /// received power.
    pub fn rsrp_per_re_offset_db(self) -> f64 {
        match self {
            // 20 MHz LTE: 100 PRB × 12 subcarriers.
            Technology::Lte | Technology::LteA | Technology::Nr5gLow => 30.8,
            // 100 MHz NR, 30 kHz SCS: 273 PRB × 12.
            Technology::Nr5gMid => 35.2,
            // 100 MHz NR, 120 kHz SCS: 66 PRB × 12.
            Technology::Nr5gMmWave => 29.0,
        }
    }

    /// One-way RAN (air interface + fronthaul) latency in ms under light
    /// load — mmWave's short TTI gives it the paper's lowest RTTs, and
    /// 5G-low's NSA anchoring makes it *worse* than LTE-A (§5.2: "LTE-A
    /// achieves lower RTTs than 5G-low").
    pub fn ran_latency_ms(self) -> f64 {
        match self {
            Technology::Lte => 14.0,
            Technology::LteA => 11.0,
            Technology::Nr5gLow => 13.0,
            Technology::Nr5gMid => 8.0,
            Technology::Nr5gMmWave => 4.0,
        }
    }
}

/// A set of technologies as a fixed-size bitmask.
///
/// The serving-session hot path re-evaluates "which technologies have an
/// in-range cell here" every poll; a `Copy` bitmask makes that check,
/// the change-detection compare, and the sticky-grant bookkeeping free of
/// heap allocation (a `Vec<Technology>` in the same role allocates per
/// poll).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TechSet(u8);

impl TechSet {
    /// The empty set.
    pub const EMPTY: TechSet = TechSet(0);

    /// Add a technology.
    pub fn insert(&mut self, t: Technology) {
        self.0 |= 1 << t.index();
    }

    /// Membership test.
    pub fn contains(self, t: Technology) -> bool {
        self.0 & (1 << t.index()) != 0
    }

    /// True when no technology is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of technologies present.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Members in [`Technology::ALL`] order (slowest to fastest).
    pub fn iter(self) -> impl Iterator<Item = Technology> {
        Technology::ALL
            .into_iter()
            .filter(move |t| self.contains(*t))
    }
}

impl FromIterator<Technology> for TechSet {
    fn from_iter<I: IntoIterator<Item = Technology>>(iter: I) -> Self {
        let mut s = TechSet::EMPTY;
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl From<&[Technology]> for TechSet {
    fn from(ts: &[Technology]) -> Self {
        ts.iter().copied().collect()
    }
}

impl<const N: usize> From<&[Technology; N]> for TechSet {
    fn from(ts: &[Technology; N]) -> Self {
        ts.iter().copied().collect()
    }
}

impl From<&Vec<Technology>> for TechSet {
    fn from(ts: &Vec<Technology>) -> Self {
        ts.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_index_matches_all_order() {
        for (i, t) in Technology::ALL.into_iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        assert_eq!(Technology::COUNT, 5);
    }

    #[test]
    fn techset_round_trips() {
        let mut s = TechSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Technology::Nr5gMid);
        s.insert(Technology::Lte);
        assert!(s.contains(Technology::Lte));
        assert!(s.contains(Technology::Nr5gMid));
        assert!(!s.contains(Technology::Nr5gMmWave));
        assert_eq!(s.len(), 2);
        // Iteration follows ALL order.
        let v: Vec<Technology> = s.iter().collect();
        assert_eq!(v, vec![Technology::Lte, Technology::Nr5gMid]);
        // Set equality is structural.
        let s2: TechSet = [Technology::Nr5gMid, Technology::Lte]
            .iter()
            .copied()
            .collect();
        assert_eq!(s, s2);
    }

    #[test]
    fn groupings_match_paper() {
        assert!(!Technology::Lte.is_5g());
        assert!(!Technology::LteA.is_5g());
        assert!(Technology::Nr5gLow.is_5g());
        assert!(!Technology::Nr5gLow.is_high_speed());
        assert!(Technology::Nr5gMid.is_high_speed());
        assert!(Technology::Nr5gMmWave.is_high_speed());
    }

    #[test]
    fn high_speed_implies_5g() {
        for t in Technology::ALL {
            if t.is_high_speed() {
                assert!(t.is_5g());
            }
        }
    }

    #[test]
    fn mmwave_has_smallest_radius_and_latency() {
        for t in Technology::ALL {
            if t != Technology::Nr5gMmWave {
                assert!(t.cell_radius() > Technology::Nr5gMmWave.cell_radius());
                assert!(t.ran_latency_ms() > Technology::Nr5gMmWave.ran_latency_ms());
            }
        }
    }

    #[test]
    fn nr5g_low_latency_worse_than_ltea() {
        // §5.2: LTE-A beats 5G-low on RTT for V and T.
        assert!(Technology::Nr5gLow.ran_latency_ms() > Technology::LteA.ran_latency_ms());
    }

    #[test]
    fn dl_ccs_at_least_ul_ccs() {
        for t in Technology::ALL {
            assert!(t.max_ccs(Direction::Downlink) >= t.max_ccs(Direction::Uplink));
        }
    }

    #[test]
    fn s21_mmwave_cc_caps() {
        assert_eq!(Technology::Nr5gMmWave.max_ccs(Direction::Downlink), 8);
        assert_eq!(Technology::Nr5gMmWave.max_ccs(Direction::Uplink), 2);
    }

    #[test]
    fn direction_fractions_in_range_and_dl_heavy() {
        for t in Technology::ALL {
            for d in Direction::ALL {
                let f = t.direction_fraction(d);
                assert!((0.0..=1.0).contains(&f));
            }
            assert!(
                t.direction_fraction(Direction::Downlink)
                    >= t.direction_fraction(Direction::Uplink)
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Technology::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), Technology::ALL.len());
    }
}
