//! Link adaptation: SINR → CQI → MCS, spectral efficiency, and BLER.
//!
//! The shapes follow LTE/NR link adaptation: the scheduler picks the
//! highest MCS whose expected initial-transmission BLER stays near the 10%
//! HARQ operating point; the realized BLER then follows a logistic curve in
//! the SINR error around that operating point. The XCAL logger reports the
//! primary cell's MCS and BLER — the two KPIs of Table 2.

use serde::{Deserialize, Serialize};
use wheels_sim_core::units::Db;

/// An MCS index, 0–28 as in the LTE/NR MCS tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct McsIndex(pub u8);

impl McsIndex {
    /// Largest index in the table.
    pub const MAX: McsIndex = McsIndex(28);
}

/// SINR (dB) at which each MCS hits the 10% BLER operating point.
/// Approximately 1.05 dB per step from −6 dB, matching published LTE link
/// curves.
fn mcs_threshold_db(mcs: McsIndex) -> f64 {
    -6.0 + 1.05 * mcs.0 as f64
}

/// Pick the MCS a proportional-fair scheduler would choose at `sinr`:
/// the largest index whose operating point is at or below `sinr`.
pub fn mcs_from_sinr(sinr: Db) -> McsIndex {
    let idx = ((sinr.0 + 6.0) / 1.05).floor();
    McsIndex(idx.clamp(0.0, 28.0) as u8)
}

/// Spectral efficiency (bits/s/Hz per spatial layer) delivered by an MCS.
///
/// Shannon-backoff form: ~75% of capacity at the MCS's operating SINR,
/// capped at 256-QAM rate-0.93 (≈7.4 b/Hz is the table ceiling; real field
/// links rarely exceed ~5.5 with overheads, which the caller applies).
pub fn spectral_efficiency(mcs: McsIndex) -> f64 {
    let sinr_lin = 10f64.powf(mcs_threshold_db(mcs) / 10.0);
    (0.75 * (1.0 + sinr_lin).log2()).min(5.55)
}

/// Initial-transmission block error rate at `sinr` for a given `mcs`.
///
/// Logistic in the dB error around the operating point: exactly 10% when
/// the link adaptation is perfect, collapsing toward 0 with headroom and
/// toward 1 when the channel drops faster than adaptation tracks.
pub fn bler(sinr: Db, mcs: McsIndex) -> f64 {
    bler_from_err(sinr.0 - mcs_threshold_db(mcs))
}

fn bler_from_err(err_db: f64) -> f64 {
    // err = 0 → 10%; slope 1.1 dB per e-fold.
    let x = -err_db / 1.1 + (0.1f64 / 0.9).ln();
    1.0 / (1.0 + (-x).exp())
}

/// Expected goodput-per-Hz of transmitting with `mcs` at `sinr`.
fn goodput_per_hz(mcs: McsIndex, sinr_db: f64) -> f64 {
    spectral_efficiency(mcs) * harq_goodput_factor(bler_from_err(sinr_db - mcs_threshold_db(mcs)))
}

/// SINR (dB) at which stepping up to each MCS index first *improves*
/// expected goodput over staying one index lower. Near the spectral-
/// efficiency cap the SE gain of a step shrinks below the BLER-reset
/// cost, so the profitable switch point sits above the 10%-BLER
/// operating point — and for the capped top index it never comes.
fn goodput_up_thresholds() -> &'static [f64; 29] {
    static THRESHOLDS: std::sync::OnceLock<[f64; 29]> = std::sync::OnceLock::new();
    THRESHOLDS.get_or_init(|| {
        let mut t = [f64::NEG_INFINITY; 29];
        for k in 1..29usize {
            let profitable = |s: f64| {
                goodput_per_hz(McsIndex(k as u8), s) >= goodput_per_hz(McsIndex(k as u8 - 1), s)
            };
            let base = mcs_threshold_db(McsIndex(k as u8));
            t[k] = if profitable(base) {
                base
            } else if !profitable(base + 60.0) {
                f64::INFINITY
            } else {
                let (mut lo, mut hi) = (base, base + 60.0);
                for _ in 0..80 {
                    let mid = 0.5 * (lo + hi);
                    if profitable(mid) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                hi
            };
            // Keep the table sorted so the chain k ≥ k-1 ≥ ... holds at
            // every switch point.
            if t[k] < t[k - 1] {
                t[k] = t[k - 1];
            }
        }
        t
    })
}

/// The MCS the scheduler actually transmits with: like
/// [`mcs_from_sinr`], but it steps up only once the higher index
/// improves expected goodput. This makes realized goodput monotone in
/// SINR across MCS switch points (the raw table dips at switches near
/// the spectral-efficiency cap).
pub fn goodput_mcs(sinr: Db) -> McsIndex {
    let t = goodput_up_thresholds();
    let idx = t.partition_point(|&thr| sinr.0 >= thr);
    McsIndex(idx.saturating_sub(1) as u8)
}

/// Goodput factor after HARQ: one retransmission recovers most errors, so
/// goodput ≈ rate × (1 − bler/(1+bler)) — a mild penalty at the 10% point
/// and a steep one when BLER runs away.
pub fn harq_goodput_factor(bler: f64) -> f64 {
    let b = bler.clamp(0.0, 1.0);
    1.0 - b / (1.0 + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcs_monotone_in_sinr() {
        let mut last = McsIndex(0);
        for s in -10..=35 {
            let m = mcs_from_sinr(Db(s as f64));
            assert!(m >= last);
            last = m;
        }
    }

    #[test]
    fn mcs_clamps_at_table_edges() {
        assert_eq!(mcs_from_sinr(Db(-30.0)), McsIndex(0));
        assert_eq!(mcs_from_sinr(Db(60.0)), McsIndex::MAX);
    }

    #[test]
    fn chosen_mcs_runs_near_ten_percent_bler() {
        for s in [-2.0f64, 5.0, 12.0, 20.0] {
            let m = mcs_from_sinr(Db(s));
            let b = bler(Db(s), m);
            // At or just above the operating point: BLER in (2%, 12%].
            assert!(b > 0.02 && b <= 0.12, "sinr {s} mcs {} bler {b}", m.0);
        }
    }

    #[test]
    fn bler_logistic_extremes() {
        let m = McsIndex(15);
        assert!(bler(Db(mcs_threshold_db(m) + 15.0), m) < 0.01);
        assert!(bler(Db(mcs_threshold_db(m) - 15.0), m) > 0.95);
        let at_point = bler(Db(mcs_threshold_db(m)), m);
        assert!((at_point - 0.10).abs() < 1e-9, "bler {at_point}");
    }

    #[test]
    fn spectral_efficiency_monotone_and_capped() {
        let mut last = 0.0;
        for i in 0..=28 {
            let se = spectral_efficiency(McsIndex(i));
            assert!(se >= last, "mcs {i}");
            last = se;
        }
        assert!(spectral_efficiency(McsIndex::MAX) <= 5.55 + 1e-12);
        assert!(spectral_efficiency(McsIndex(0)) > 0.1);
    }

    #[test]
    fn spectral_efficiency_realistic_midrange() {
        // MCS ~14 (≈ 8.7 dB) should deliver ~2.3-2.7 b/Hz.
        let se = spectral_efficiency(McsIndex(14));
        assert!((2.0..3.0).contains(&se), "se {se}");
    }

    #[test]
    fn harq_factor_behaviour() {
        assert!((harq_goodput_factor(0.0) - 1.0).abs() < 1e-12);
        let at_op = harq_goodput_factor(0.10);
        assert!((at_op - (1.0 - 0.1 / 1.1)).abs() < 1e-12);
        assert!((harq_goodput_factor(1.0) - 0.5).abs() < 1e-12);
        // Clamps out-of-range inputs.
        assert_eq!(harq_goodput_factor(-0.5), 1.0);
        assert_eq!(harq_goodput_factor(2.0), 0.5);
    }
}
