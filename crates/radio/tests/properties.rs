//! Property-based tests for link adaptation and carrier aggregation.

use proptest::prelude::*;
use wheels_radio::ca::{aggregate, device_peak, CarrierAllocation, CarrierComponent};
use wheels_radio::linkbudget::LinkBudget;
use wheels_radio::mcs::{bler, harq_goodput_factor, mcs_from_sinr, spectral_efficiency, McsIndex};
use wheels_radio::tech::{Direction, Technology};
use wheels_sim_core::units::{Db, Distance};

fn any_tech() -> impl Strategy<Value = Technology> {
    prop::sample::select(Technology::ALL.to_vec())
}

fn any_dir() -> impl Strategy<Value = Direction> {
    prop::sample::select(Direction::ALL.to_vec())
}

proptest! {
    #[test]
    fn mcs_monotone_nondecreasing(a in -30.0f64..50.0, d in 0.0f64..20.0) {
        prop_assert!(mcs_from_sinr(Db(a + d)) >= mcs_from_sinr(Db(a)));
    }

    #[test]
    fn bler_in_unit_interval_and_monotone_in_sinr(sinr in -40.0f64..60.0, mcs in 0u8..=28) {
        let m = McsIndex(mcs);
        let b = bler(Db(sinr), m);
        prop_assert!((0.0..=1.0).contains(&b));
        let better = bler(Db(sinr + 5.0), m);
        prop_assert!(better <= b + 1e-12);
    }

    #[test]
    fn spectral_efficiency_positive_and_bounded(mcs in 0u8..=28) {
        let se = spectral_efficiency(McsIndex(mcs));
        prop_assert!(se > 0.0 && se <= 5.55 + 1e-12);
    }

    #[test]
    fn harq_factor_bounded(b in -1.0f64..2.0) {
        let f = harq_goodput_factor(b);
        prop_assert!((0.5..=1.0).contains(&f));
    }

    #[test]
    fn aggregate_rate_nonnegative_and_capped(
        tech in any_tech(),
        dir in any_dir(),
        sinr in -30.0f64..50.0,
        load in 0.0f64..1.0,
        count in 1u8..10,
    ) {
        let alloc = CarrierAllocation {
            primary: CarrierComponent { tech, count },
            secondaries: vec![],
        };
        let link = aggregate(&alloc, dir, Db(sinr), load);
        prop_assert!(link.rate.as_bps() >= 0.0);
        prop_assert!(link.rate.as_bps() <= device_peak(tech, dir).as_bps() + 1e-6);
        prop_assert!(link.primary_mcs <= 28);
        prop_assert!((0.0..=1.0).contains(&link.primary_bler));
        prop_assert!(link.carriers >= 1);
    }

    #[test]
    fn aggregate_monotone_in_load(
        tech in any_tech(),
        dir in any_dir(),
        sinr in -10.0f64..40.0,
        lo in 0.0f64..1.0,
        d in 0.0f64..1.0,
    ) {
        let hi = (lo + d).min(1.0);
        let alloc = CarrierAllocation::single(tech);
        let a = aggregate(&alloc, dir, Db(sinr), lo);
        let b = aggregate(&alloc, dir, Db(sinr), hi);
        prop_assert!(b.rate.as_bps() >= a.rate.as_bps() - 1e-6);
    }

    #[test]
    fn aggregate_monotone_in_sinr(
        tech in any_tech(),
        dir in any_dir(),
        sinr in -20.0f64..40.0,
        d in 0.0f64..15.0,
    ) {
        let alloc = CarrierAllocation::single(tech);
        let a = aggregate(&alloc, dir, Db(sinr), 0.8);
        let b = aggregate(&alloc, dir, Db(sinr + d), 0.8);
        prop_assert!(b.rate.as_bps() >= a.rate.as_bps() - 1e-6);
    }

    #[test]
    fn clamp_never_exceeds_device_limits(
        tech in any_tech(),
        dir in any_dir(),
        count in 1u8..30,
    ) {
        let alloc = CarrierAllocation {
            primary: CarrierComponent { tech, count },
            secondaries: vec![CarrierComponent { tech: Technology::Lte, count: 7 }],
        }
        .clamped_to_device(dir);
        prop_assert!(alloc.primary.count <= tech.max_ccs(dir));
        prop_assert!(alloc.primary.count >= 1);
        for s in &alloc.secondaries {
            prop_assert!(s.count <= s.tech.max_ccs(dir));
            prop_assert!(s.count >= 1);
        }
    }

    #[test]
    fn path_loss_monotone_in_distance(tech in any_tech(), m in 10.0f64..20_000.0, d in 0.0f64..5_000.0) {
        let lb = LinkBudget::for_tech(tech);
        let near = lb.path_loss(Distance::from_m(m));
        let far = lb.path_loss(Distance::from_m(m + d));
        prop_assert!(far.0 >= near.0 - 1e-9);
    }

    #[test]
    fn rx_power_below_eirp(tech in any_tech(), m in 10.0f64..20_000.0) {
        let lb = LinkBudget::for_tech(tech);
        prop_assert!(lb.mean_rx_power(Distance::from_m(m)).0 < lb.eirp.0);
    }
}
