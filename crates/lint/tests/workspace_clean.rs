//! The shipped tree must lint clean: every rule enabled, zero findings.

use std::path::Path;

use wheels_lint::{lint_workspace, Config};

#[test]
fn shipped_workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root, &Config::default()).expect("workspace scan succeeds");
    assert!(
        report.files_checked > 50,
        "expected to scan the full workspace, saw {} files",
        report.files_checked
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
}
