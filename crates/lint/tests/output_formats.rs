//! Output-format pins: the `--json` payload (schema version, field
//! order, snake_case rule ids) is compared byte-for-byte against a
//! golden file, and the SARIF log must carry the 2.1.0 envelope shape
//! with `ruleId`s matching the JSON `id`s.

use wheels_lint::rules::RULES;
use wheels_lint::{lint_sources, render_sarif, Config, Report, SourceFile};

/// A minimal workspace with exactly one finding at a pinned position.
fn one_finding_report() -> Report {
    let f = SourceFile {
        rel_path: "crates/geo/src/sample.rs".to_string(),
        crate_name: "geo".to_string(),
        is_bin: false,
        is_crate_root: false,
        src: "pub fn first(xs: &[u32]) -> u32 {\n    *xs.first().unwrap()\n}\n".to_string(),
    };
    lint_sources(&[f], &Config::default())
}

#[test]
fn json_matches_golden_file() {
    let got = one_finding_report().render_json();
    let golden = include_str!("golden/report.json");
    assert_eq!(
        got,
        golden.trim_end(),
        "--json layout drifted; if intentional, bump SCHEMA_VERSION and regenerate tests/golden/report.json"
    );
}

#[test]
fn json_schema_version_and_ids_are_pinned() {
    let json = one_finding_report().render_json();
    assert!(json.starts_with("{\"schema_version\":2,"), "{json}");
    assert!(json.contains("\"rule\":\"unwrap-in-lib\""), "{json}");
    assert!(json.contains("\"id\":\"unwrap_in_lib\""), "{json}");
}

#[test]
fn rule_ids_are_snake_case_of_names() {
    for r in RULES.iter() {
        assert_eq!(r.id, r.name.replace('-', "_"), "{}", r.name);
        assert!(
            r.id.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
            "{}",
            r.id
        );
    }
}

#[test]
fn sarif_envelope_matches_2_1_0_shape() {
    let sarif = render_sarif(&one_finding_report());
    // Envelope.
    assert!(sarif.starts_with(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":["
    ));
    // Driver with the full rule catalogue.
    assert!(sarif.contains("\"tool\":{\"driver\":{\"name\":\"wheels-lint\",\"rules\":["));
    for r in RULES.iter() {
        assert!(sarif.contains(&format!("\"id\":\"{}\"", r.id)), "{}", r.id);
    }
    // The result, with ruleId == JSON id and the physical location.
    assert!(sarif.contains("\"ruleId\":\"unwrap_in_lib\""));
    assert!(sarif.contains("\"level\":\"error\""));
    assert!(sarif.contains("\"artifactLocation\":{\"uri\":\"crates/geo/src/sample.rs\"}"));
    assert!(sarif.contains("\"startLine\":2,\"startColumn\":17"));
    assert!(sarif.contains("\"snippet\":{\"text\":\"    *xs.first().unwrap()\"}"));
}

#[test]
fn sarif_and_json_agree_on_rule_ids() {
    let report = one_finding_report();
    let sarif = render_sarif(&report);
    for f in &report.findings {
        assert!(
            sarif.contains(&format!("\"ruleId\":\"{}\"", f.id)),
            "{}",
            f.id
        );
    }
}
