//! Tier-2 fixture tests: each dataflow pass must fire on its `_bad.rs`
//! fixture with the exact `file:line:col` positions and stay silent on
//! the clean `_ok.rs` counterpart, the `--tier1-only` switch must mute
//! all of tier 2, and the strict-allows audit must flag exactly the
//! directives that suppress nothing.

use wheels_lint::{lint_sources, lint_sources_opts, Config, Options, SourceFile};

/// Build the virtual workspace entry for one fixture.
fn fixture(name: &str, crate_name: &str, src: &str) -> SourceFile {
    SourceFile {
        rel_path: format!("crates/{crate_name}/src/{name}.rs"),
        crate_name: crate_name.to_string(),
        is_bin: false,
        is_crate_root: false,
        src: src.to_string(),
    }
}

/// Lint fixtures and return `(rule, line, col)` triples.
fn lint_all(files: Vec<SourceFile>) -> Vec<(&'static str, u32, u32)> {
    let report = lint_sources(&files, &Config::default());
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect()
}

/// The record-struct sink file, mounted on a `taint_sink_paths` entry.
fn records_file() -> SourceFile {
    fixture("records", "core", include_str!("fixtures/taint_records.rs"))
}

#[test]
fn determinism_taint_fires_with_positions() {
    let bad = fixture("taint_bad", "core", include_str!("fixtures/taint_bad.rs"));
    let got = lint_all(vec![records_file(), bad]);
    assert_eq!(got, vec![("determinism-taint", 14, 5)]);
}

#[test]
fn determinism_taint_reports_the_call_chain() {
    let bad = fixture("taint_bad", "core", include_str!("fixtures/taint_bad.rs"));
    let report = lint_sources(&[records_file(), bad], &Config::default());
    let msg = &report.findings[0].message;
    assert!(msg.contains("available_parallelism"), "{msg}");
    assert!(msg.contains("returned by host_threads"), "{msg}");
    assert!(msg.contains("record `RunRecord` literal"), "{msg}");
}

#[test]
fn determinism_taint_silent_on_clean_counterpart() {
    let ok = fixture("taint_ok", "core", include_str!("fixtures/taint_ok.rs"));
    assert_eq!(lint_all(vec![records_file(), ok]), vec![]);
}

#[test]
fn rng_stream_flow_fires_with_positions() {
    let bad = fixture(
        "streamflow_bad",
        "ran",
        include_str!("fixtures/streamflow_bad.rs"),
    );
    assert_eq!(lint_all(vec![bad]), vec![("rng-stream-flow", 7, 9)]);
}

#[test]
fn rng_stream_flow_silent_on_clean_counterpart() {
    let ok = fixture(
        "streamflow_ok",
        "ran",
        include_str!("fixtures/streamflow_ok.rs"),
    );
    assert_eq!(lint_all(vec![ok]), vec![]);
}

#[test]
fn persistence_ordering_fires_with_positions() {
    // `checkpoint_flow_bad` lands inside the `crates/core/src/checkpoint`
    // persist-path prefix.
    let bad = fixture(
        "checkpoint_flow_bad",
        "core",
        include_str!("fixtures/checkpoint_flow_bad.rs"),
    );
    assert_eq!(lint_all(vec![bad]), vec![("persistence-ordering", 12, 9)]);
}

#[test]
fn persistence_ordering_silent_on_transitive_fsync() {
    let ok = fixture(
        "checkpoint_flow_ok",
        "core",
        include_str!("fixtures/checkpoint_flow_ok.rs"),
    );
    assert_eq!(lint_all(vec![ok]), vec![]);
}

#[test]
fn unordered_float_reduction_fires_with_positions() {
    let bad = fixture(
        "analysis/floatfold_bad",
        "core",
        include_str!("fixtures/floatfold_bad.rs"),
    );
    assert_eq!(
        lint_all(vec![bad]),
        vec![
            ("unordered-float-reduction", 9, 15),
            ("unordered-float-reduction", 15, 15),
        ]
    );
}

#[test]
fn unordered_float_reduction_silent_on_clean_counterpart() {
    let ok = fixture(
        "analysis/floatfold_ok",
        "core",
        include_str!("fixtures/floatfold_ok.rs"),
    );
    assert_eq!(lint_all(vec![ok]), vec![]);
}

#[test]
fn tier1_only_mutes_every_tier2_pass() {
    let files = vec![
        records_file(),
        fixture("taint_bad", "core", include_str!("fixtures/taint_bad.rs")),
        fixture(
            "streamflow_bad",
            "ran",
            include_str!("fixtures/streamflow_bad.rs"),
        ),
        fixture(
            "checkpoint_flow_bad",
            "core",
            include_str!("fixtures/checkpoint_flow_bad.rs"),
        ),
        fixture(
            "analysis/floatfold_bad",
            "core",
            include_str!("fixtures/floatfold_bad.rs"),
        ),
    ];
    let opts = Options {
        tier2: false,
        ..Options::default()
    };
    let report = lint_sources_opts(&files, &Config::default(), opts);
    assert_eq!(report.findings.len(), 0, "{:?}", report.findings);
}

#[test]
fn tier2_findings_honour_allow_directives() {
    let src = include_str!("fixtures/streamflow_bad.rs").replace(
        "    rng.split(&label);",
        "    // lint: allow(rng-stream-flow, pinned legacy label)\n    rng.split(&label);",
    );
    let bad = fixture("streamflow_bad", "ran", &src);
    assert_eq!(lint_all(vec![bad]), vec![]);
}

#[test]
fn strict_allows_flags_stale_directive() {
    let src =
        "pub fn f() -> u32 {\n    1\n}\n// lint: allow(unwrap-in-lib, nothing left to suppress)\n";
    let f = fixture("stale", "geo", src);
    let opts = Options {
        strict_allows: true,
        ..Options::default()
    };
    let report = lint_sources_opts(&[f], &Config::default(), opts);
    let got: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect();
    assert_eq!(got, vec![("stale-allow", 4, 1)]);
}

#[test]
fn strict_allows_flags_unknown_rule_name() {
    let src = "pub fn f() -> u32 {\n    // lint: allow(no-such-rule, typo)\n    1\n}\n";
    let f = fixture("typo", "geo", src);
    let opts = Options {
        strict_allows: true,
        ..Options::default()
    };
    let report = lint_sources_opts(&[f], &Config::default(), opts);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "stale-allow");
    assert!(report.findings[0].message.contains("no-such-rule"));
}

#[test]
fn strict_allows_accepts_used_directive() {
    let src = "pub fn f(xs: &[u32]) -> u32 {\n    // lint: allow(unwrap-in-lib, slice is non-empty by construction)\n    *xs.first().unwrap()\n}\n";
    let f = fixture("used", "geo", src);
    let opts = Options {
        strict_allows: true,
        ..Options::default()
    };
    let report = lint_sources_opts(&[f], &Config::default(), opts);
    assert_eq!(report.findings.len(), 0, "{:?}", report.findings);
}
