//! Per-rule fixture tests: every rule must fire on its `_bad.rs` fixture
//! with the exact `file:line:col` positions, and stay silent on the clean
//! `_ok.rs` counterpart (including the `// lint: allow(rule, reason)`
//! escape hatch each counterpart exercises).

use wheels_lint::{lint_sources, Config, SourceFile};

/// Build the virtual workspace entry for one fixture.
fn fixture(name: &str, crate_name: &str, src: &str) -> SourceFile {
    SourceFile {
        rel_path: format!("crates/{crate_name}/src/{name}.rs"),
        crate_name: crate_name.to_string(),
        is_bin: false,
        is_crate_root: false,
        src: src.to_string(),
    }
}

/// Lint one fixture and return `(rule, line, col)` triples.
fn lint_one(file: SourceFile) -> Vec<(&'static str, u32, u32)> {
    let report = lint_sources(&[file], &Config::default());
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect()
}

#[test]
fn nondeterminism_fires_with_positions() {
    let src = include_str!("fixtures/nondeterminism_bad.rs");
    let got = lint_one(fixture("nondeterminism_bad", "sim-core", src));
    assert_eq!(
        got,
        vec![
            ("nondeterminism", 4, 14),
            ("nondeterminism", 9, 23),
            ("nondeterminism", 10, 11),
            ("nondeterminism", 14, 15),
        ]
    );
}

#[test]
fn nondeterminism_silent_on_clean_counterpart() {
    let src = include_str!("fixtures/nondeterminism_ok.rs");
    assert_eq!(
        lint_one(fixture("nondeterminism_ok", "sim-core", src)),
        vec![]
    );
}

#[test]
fn nondeterminism_exempts_binaries() {
    let src = include_str!("fixtures/nondeterminism_bad.rs");
    let mut f = fixture("main", "sim-core", src);
    f.is_bin = true;
    assert_eq!(lint_one(f), vec![]);
}

#[test]
fn hash_iteration_fires_with_positions() {
    let src = include_str!("fixtures/hash_iteration_bad.rs");
    let got = lint_one(fixture("hash_iteration_bad", "core", src));
    assert_eq!(
        got,
        vec![
            ("hash-iteration", 1, 23),
            ("hash-iteration", 3, 31),
            ("hash-iteration", 4, 17),
        ]
    );
}

#[test]
fn hash_iteration_silent_on_clean_counterpart() {
    let src = include_str!("fixtures/hash_iteration_ok.rs");
    assert_eq!(lint_one(fixture("hash_iteration_ok", "core", src)), vec![]);
}

#[test]
fn hash_iteration_ignores_non_dataset_crates() {
    let src = include_str!("fixtures/hash_iteration_bad.rs");
    assert_eq!(
        lint_one(fixture("hash_iteration_bad", "radio", src)),
        vec![]
    );
}

#[test]
fn rng_stream_labels_fire_with_positions() {
    let src = include_str!("fixtures/rng_stream_labels_bad.rs");
    let got = lint_one(fixture("rng_stream_labels_bad", "ran", src));
    assert_eq!(
        got,
        vec![("rng-stream-labels", 2, 23), ("rng-stream-labels", 4, 23),]
    );
}

#[test]
fn rng_stream_labels_silent_on_clean_counterpart() {
    let src = include_str!("fixtures/rng_stream_labels_ok.rs");
    assert_eq!(
        lint_one(fixture("rng_stream_labels_ok", "ran", src)),
        vec![]
    );
}

#[test]
fn rng_stream_labels_unique_across_files() {
    // The registry spans the whole lint run: the same label in two files
    // is a duplicate even though each file alone is fine.
    let a = fixture(
        "a",
        "ran",
        "pub fn f(r: &SimRng) { r.split(\"area/same\"); }\n",
    );
    let b = fixture(
        "b",
        "ue",
        "pub fn g(r: &SimRng) { r.split(\"area/same\"); }\n",
    );
    let report = lint_sources(&[a, b], &Config::default());
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, "rng-stream-labels");
    assert_eq!(f.file, "crates/ue/src/b.rs");
    assert!(
        f.message.contains("crates/ran/src/a.rs:1:32"),
        "{}",
        f.message
    );
}

#[test]
fn unwrap_in_lib_fires_with_positions() {
    let src = include_str!("fixtures/unwrap_in_lib_bad.rs");
    let got = lint_one(fixture("unwrap_in_lib_bad", "geo", src));
    assert_eq!(got, vec![("unwrap-in-lib", 2, 17), ("unwrap-in-lib", 6, 5)]);
}

#[test]
fn unwrap_in_lib_silent_on_clean_counterpart() {
    let src = include_str!("fixtures/unwrap_in_lib_ok.rs");
    assert_eq!(lint_one(fixture("unwrap_in_lib_ok", "geo", src)), vec![]);
}

#[test]
fn lossy_cast_fires_with_positions() {
    let src = include_str!("fixtures/lossy_cast_bad.rs");
    let got = lint_one(fixture("lossy_cast_bad", "core", src));
    assert_eq!(got, vec![("lossy-cast", 2, 16), ("lossy-cast", 6, 18)]);
}

#[test]
fn lossy_cast_silent_on_clean_counterpart() {
    let src = include_str!("fixtures/lossy_cast_ok.rs");
    assert_eq!(lint_one(fixture("lossy_cast_ok", "core", src)), vec![]);
}

#[test]
fn lossy_cast_scoped_to_configured_paths() {
    let src = include_str!("fixtures/lossy_cast_bad.rs");
    assert_eq!(lint_one(fixture("lossy_cast_bad", "radio", src)), vec![]);
}

#[test]
fn crate_hygiene_fires_on_bare_root() {
    let src = include_str!("fixtures/crate_hygiene_bad.rs");
    let mut f = fixture("lib", "transport", src);
    f.is_crate_root = true;
    let got = lint_one(f);
    assert_eq!(got, vec![("crate-hygiene", 1, 1), ("crate-hygiene", 1, 1)]);
}

#[test]
fn crate_hygiene_silent_on_clean_counterpart() {
    let src = include_str!("fixtures/crate_hygiene_ok.rs");
    let mut f = fixture("lib", "transport", src);
    f.is_crate_root = true;
    assert_eq!(lint_one(f), vec![]);
}

#[test]
fn cfg_test_modules_are_masked() {
    let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x: Option<u32> = None;\n        x.unwrap();\n    }\n}\n";
    assert_eq!(lint_one(fixture("masked", "geo", src)), vec![]);
}

#[test]
fn allow_without_reason_does_not_suppress() {
    let src = "pub fn f(xs: &[u32]) -> u32 {\n    // lint: allow(unwrap-in-lib, )\n    *xs.first().unwrap()\n}\n";
    let got = lint_one(fixture("noreason", "geo", src));
    assert_eq!(got, vec![("unwrap-in-lib", 3, 17)]);
}

#[test]
fn disrupt_stream_namespace_fires_with_positions() {
    let src = include_str!("fixtures/disrupt_stream_bad.rs");
    let got = lint_one(fixture("disrupt_stream_bad", "core", src));
    assert_eq!(
        got,
        vec![
            ("disrupt-stream-namespace", 2, 23),
            ("disrupt-stream-namespace", 3, 32),
        ]
    );
}

#[test]
fn disrupt_stream_namespace_silent_on_clean_counterpart() {
    let src = include_str!("fixtures/disrupt_stream_ok.rs");
    assert_eq!(lint_one(fixture("disrupt_stream_ok", "core", src)), vec![]);
}

#[test]
fn disrupt_stream_namespace_scoped_to_disrupt_paths() {
    // The same labels outside the disrupt module are rule-3 territory
    // only (well-formed and unique, so no findings at all).
    let src = include_str!("fixtures/disrupt_stream_bad.rs");
    assert_eq!(lint_one(fixture("other", "core", src)), vec![]);
}

#[test]
fn atomic_persistence_fires_with_positions() {
    // `checkpoint_bad` lands at crates/core/src/checkpoint_bad.rs, inside
    // the `crates/core/src/checkpoint` persist-path prefix.
    let src = include_str!("fixtures/checkpoint_bad.rs");
    let got = lint_one(fixture("checkpoint_bad", "core", src));
    assert_eq!(
        got,
        vec![("atomic-persistence", 4, 9), ("atomic-persistence", 8, 23)]
    );
}

#[test]
fn atomic_persistence_silent_on_clean_counterpart() {
    // Temp-file + rename, append-mode writes, and the reasoned allow are
    // all accepted.
    let src = include_str!("fixtures/checkpoint_ok.rs");
    assert_eq!(lint_one(fixture("checkpoint_ok", "core", src)), vec![]);
}

#[test]
fn atomic_persistence_scoped_to_persist_paths() {
    let src = include_str!("fixtures/checkpoint_bad.rs");
    assert_eq!(lint_one(fixture("journal_bad", "core", src)), vec![]);
}

#[test]
fn columnar_kernel_fires_with_positions() {
    // `analysis/…` lands the fixture inside the `crates/core/src/analysis`
    // columnar-path prefix.
    let src = include_str!("fixtures/columnar_kernel_bad.rs");
    let got = lint_one(fixture("analysis/columnar_kernel_bad", "core", src));
    assert_eq!(
        got,
        vec![("columnar-kernel", 2, 32), ("columnar-kernel", 7, 13)]
    );
}

#[test]
fn columnar_kernel_silent_on_clean_counterpart() {
    // Index gathers (`|&i|`), method-call maps (`r.len()`), and the
    // reasoned allow are all accepted.
    let src = include_str!("fixtures/columnar_kernel_ok.rs");
    assert_eq!(
        lint_one(fixture("analysis/columnar_kernel_ok", "core", src)),
        vec![]
    );
}

#[test]
fn columnar_kernel_scoped_to_columnar_paths() {
    // The same projections outside the analysis kernels (here, the
    // records module) are ordinary row iteration — no findings.
    let src = include_str!("fixtures/columnar_kernel_bad.rs");
    assert_eq!(
        lint_one(fixture("columnar_kernel_bad", "core", src)),
        vec![]
    );
}

#[test]
fn bounded_ingest_fires_with_positions() {
    // `campaign` lands at crates/core/src/campaign.rs, one of the two
    // configured ingest-path files.
    let src = include_str!("fixtures/bounded_ingest_bad.rs");
    let got = lint_one(fixture("campaign", "core", src));
    assert_eq!(
        got,
        vec![
            ("bounded-ingest", 4, 17),
            ("bounded-ingest", 12, 19),
            ("bounded-ingest", 18, 16),
        ]
    );
}

#[test]
fn bounded_ingest_silent_on_clean_counterpart() {
    // The reorder-window park carries the reasoned allow; plan structs
    // (`ShardJob`) and frame-span bookkeeping are out of scope.
    let src = include_str!("fixtures/bounded_ingest_ok.rs");
    assert_eq!(lint_one(fixture("checkpoint", "core", src)), vec![]);
}

#[test]
fn bounded_ingest_scoped_to_ingest_paths() {
    // The same accumulation outside the campaign-merge files (here, a
    // records helper) is ordinary collection building — no findings.
    let src = include_str!("fixtures/bounded_ingest_bad.rs");
    assert_eq!(lint_one(fixture("records", "core", src)), vec![]);
}

#[test]
fn bounded_retry_fires_with_positions() {
    // `server` lands at crates/serve/src/server.rs, inside the
    // configured retry paths.
    let src = include_str!("fixtures/bounded_retry_bad.rs");
    let got = lint_one(fixture("server", "serve", src));
    assert_eq!(
        got,
        vec![
            ("bounded-retry", 2, 5),
            ("bounded-retry", 11, 5),
            ("bounded-retry", 18, 5),
        ]
    );
}

#[test]
fn bounded_retry_silent_on_clean_counterpart() {
    // Stop flag, deadline, and attempt budget each count as the bound;
    // for-loops are exempt (the iterator bounds them); the supervised
    // spin helper carries the reasoned allow.
    let src = include_str!("fixtures/bounded_retry_ok.rs");
    assert_eq!(lint_one(fixture("harness", "stress", src)), vec![]);
}

#[test]
fn bounded_retry_scoped_to_service_paths() {
    // The same sleepy loops outside the serve/stress paths (here, a
    // core helper) are out of scope — batch code may pace itself
    // however it likes.
    let src = include_str!("fixtures/bounded_retry_bad.rs");
    assert_eq!(lint_one(fixture("pacing", "core", src)), vec![]);
}

#[test]
fn atomic_persistence_covers_binaries() {
    // Binaries are exempt from most rules but their output writers are
    // exactly where torn files hurt, so this rule reaches into src/bin.
    let src = include_str!("fixtures/checkpoint_bad.rs");
    let f = SourceFile {
        rel_path: "crates/experiments/src/bin/export_bad.rs".to_string(),
        crate_name: "experiments".to_string(),
        is_bin: true,
        is_crate_root: false,
        src: src.to_string(),
    };
    assert_eq!(
        lint_one(f),
        vec![("atomic-persistence", 4, 9), ("atomic-persistence", 8, 23)]
    );
}
