//! Whole-workspace parser smoke test: every shipped source file must
//! lex with exact byte spans, parse into an item AST with zero
//! diagnostics, and the top-level items must tile the token stream
//! seamlessly — the tier-2 passes silently skip anything the parser
//! drops, so a recovery here is a coverage hole there.

use std::path::Path;

use wheels_lint::lexer::{self, TokKind};
use wheels_lint::tier2::parse;
use wheels_lint::{workspace, Config};

#[test]
fn whole_workspace_parses_with_exact_spans() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace::collect_workspace(&root, &Config::default()).expect("workspace walk");
    assert!(
        files.len() > 50,
        "workspace walk looks truncated: {} files",
        files.len()
    );
    for f in &files {
        let lexed = lexer::lex(&f.src);

        // Byte spans: in order, non-overlapping, and reconstructing the
        // token text exactly.
        let mut prev_hi = 0usize;
        for t in &lexed.toks {
            assert!(
                t.lo >= prev_hi && t.hi <= f.src.len() && t.lo < t.hi,
                "{}: bad span at {}:{}",
                f.rel_path,
                t.line,
                t.col
            );
            let text = &f.src[t.lo..t.hi];
            match t.kind {
                TokKind::Ident | TokKind::Num => assert_eq!(
                    text, t.text,
                    "{}: span text mismatch at {}:{}",
                    f.rel_path, t.line, t.col
                ),
                TokKind::Str => assert!(
                    ["\"", "r\"", "r#", "b\"", "br"]
                        .iter()
                        .any(|p| text.starts_with(p)),
                    "{}: string span at {}:{} is `{text}`",
                    f.rel_path,
                    t.line,
                    t.col
                ),
                _ => {}
            }
            prev_hi = t.hi;
        }

        // Parse: no diagnostics anywhere in the shipped tree.
        let ast = parse::parse(&lexed.toks);
        assert!(
            ast.diags.is_empty(),
            "{}: parser diagnostics {:?}",
            f.rel_path,
            ast.diags
        );

        // Top-level items tile the token stream.
        let mut pos = 0usize;
        for item in &ast.items {
            assert_eq!(
                item.toks.0, pos,
                "{}: item `{}` leaves a gap at token {pos}",
                f.rel_path, item.name
            );
            assert!(item.toks.1 > item.toks.0, "{}: empty item", f.rel_path);
            pos = item.toks.1;
        }
        assert_eq!(
            pos,
            lexed.toks.len(),
            "{}: items do not cover the tail",
            f.rel_path
        );

        // Item byte spans are valid source slices.
        parse::walk(&ast.items, &mut |item, _parent| {
            let (lo, hi) = item.byte_span(&lexed.toks);
            assert!(
                lo <= hi && hi <= f.src.len(),
                "{}: item `{}` has byte span {lo}..{hi}",
                f.rel_path,
                item.name
            );
        });
    }
}
