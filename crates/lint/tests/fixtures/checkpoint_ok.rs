use std::fs::{self, File};
use std::io::Write;

pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, path)
}

pub fn append(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(bytes)?;
    f.sync_data()
}

pub fn save_legacy(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    // lint: allow(atomic-persistence, scratch file no resumed run ever reads)
    fs::write(path, bytes)
}
