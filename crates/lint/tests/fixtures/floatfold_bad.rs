//! f64 reductions rooted in a channel receiver: worker completion order
//! is scheduling-dependent, and float addition is not associative.

use std::sync::mpsc::channel;

pub fn total() -> f64 {
    let (tx, rx) = channel::<f64>();
    drop(tx);
    rx.iter().sum::<f64>()
}

pub fn total_folded() -> f64 {
    let (tx, rx) = channel::<f64>();
    drop(tx);
    rx.iter().fold(0.0, |acc, v| acc + v)
}
