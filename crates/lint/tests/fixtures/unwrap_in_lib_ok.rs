pub fn first(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees non-empty input")
}

pub fn checked_first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn invariant(xs: &[u32]) -> u32 {
    // lint: allow(unwrap-in-lib, slice is built two lines up with one element)
    *xs.first().unwrap()
}
