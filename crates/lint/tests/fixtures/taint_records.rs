//! Sink-side fixture: a record struct "defined" on a taint-sink path
//! (the test mounts this file at `crates/core/src/records.rs`).

pub struct RunRecord {
    pub threads: usize,
}
