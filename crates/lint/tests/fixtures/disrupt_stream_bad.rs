pub fn schedules(rng: &SimRng, seg: u32) {
    let a = rng.split("campaign/ran2");
    let b = rng.split(&format!("campaign/faults-extra/{seg}"));
    let c = rng.split("campaign/faults/vz/3");
}
