pub fn noop() {}
