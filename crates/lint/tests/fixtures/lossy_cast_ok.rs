pub fn bucket(x: f64) -> u32 {
    (x / 10.0).floor() as u32
}

pub fn clamp8(x: f64) -> u8 {
    x.min(255.0).round() as u8
}

pub fn exact() -> u64 {
    500 as u64
}

pub fn truncating(x: f64) -> u32 {
    // lint: allow(lossy-cast, truncation is the intended binning semantics)
    x as u32
}
