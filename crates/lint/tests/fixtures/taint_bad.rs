//! Host-core count flows through a helper's return value into a record
//! literal — the taint pass must report the full chain.

use crate::records::RunRecord;

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

pub fn emit() -> RunRecord {
    let threads = host_threads();
    RunRecord { threads }
}
