pub fn bucket(x: f64) -> u32 {
    (x / 10.0) as u32
}

pub fn clamp8(x: f64) -> u8 {
    x.min(255.0) as u8
}
