pub fn streams(rng: &SimRng, id: u32) {
    let a = rng.split("trace");
    let b = rng.split("area/x");
    let c = rng.split("area/x");
    let d = rng.split(&format!("rtt/{id}"));
}
