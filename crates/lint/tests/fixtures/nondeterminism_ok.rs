//! Deterministic counterpart: time and randomness flow through the
//! simulation clock and seeded streams.

pub fn elapsed(t0: SimTime, t1: SimTime) -> f64 {
    t1.since(t0).as_secs_f64()
}

pub fn draw(rng: &mut SimRng) -> u64 {
    rng.uniform_u64(0, 100)
}

pub fn profiled() -> std::time::Instant {
    // lint: allow(nondeterminism, profiling probe never feeds the dataset)
    std::time::Instant::now()
}
