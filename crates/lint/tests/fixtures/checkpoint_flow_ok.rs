//! Clean counterpart: the fsync sits between create and rename — and it
//! is *transitive*, through a helper, to exercise the call-graph
//! fixpoint.

use std::fs::{self, File};
use std::io::Write;

fn seal(f: &File) -> std::io::Result<()> {
    f.sync_all()
}

pub fn publish(dir: &std::path::Path) -> std::io::Result<()> {
    let tmp = dir.join("out.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(b"frame")?;
    seal(&f)?;
    fs::rename(&tmp, dir.join("out.bin"))?;
    Ok(())
}
