use std::collections::BTreeMap;

pub fn count(keys: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for k in keys {
        *m.entry(*k).or_insert(0) += 1;
    }
    m
}

pub fn lookup_only() -> bool {
    // lint: allow(hash-iteration, keyed membership check only, never iterated)
    std::collections::HashSet::<u32>::new().is_empty()
}
