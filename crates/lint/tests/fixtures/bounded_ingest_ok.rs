pub fn park(parked: &mut BTreeMap<usize, Done>, i: usize, rec: ShardRecords, next: usize, window: usize) {
    if i < next.saturating_add(window) {
        // lint: allow(bounded-ingest, residency is capped at the reorder window; everything past it spills to the journal)
        parked.insert(i, Done::Resident(ShardOut::from_records(rec)));
    }
}

pub fn plan(jobs: &mut Vec<ShardJob>, op: Operator) {
    jobs.push(ShardJob { op, segment: None });
}

pub fn frame_ends(ends: &mut Vec<u64>, end: u64) {
    ends.push(end);
}
