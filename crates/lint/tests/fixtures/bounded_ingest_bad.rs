pub fn drain_all(jobs: Vec<ShardJob>) -> Vec<ShardRecords> {
    let mut records = Vec::new();
    for job in jobs {
        records.push(run_shard(job).into_records());
    }
    records
}

pub fn replay(spans: &BTreeMap<usize, FrameSpan>, reader: &mut JournalReader) -> BTreeMap<usize, ShardRecords> {
    let mut completed = BTreeMap::new();
    for (job, span) in spans {
        completed.insert(*job, reader.read_frame(span).expect("frame decodes"));
    }
    completed
}

pub fn stash(shard_tail: &mut Vec<Frame>, frame: Frame) {
    shard_tail.push(frame);
}
