use std::time::Instant;

pub fn elapsed() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn draw() -> u64 {
    let mut r = rand::thread_rng();
    rand::random()
}

pub fn home() -> Option<String> {
    std::env::var("HOME").ok()
}
