//! Clean counterpart: the same record literal fed from a deterministic
//! plan, and a host-core read that only sizes a loop (scheduling, not
//! values) — neither may fire.

use crate::records::RunRecord;

fn plan_threads(requested: usize) -> usize {
    requested.max(1)
}

pub fn emit(requested: usize) -> RunRecord {
    let threads = plan_threads(requested);
    RunRecord { threads }
}

pub fn run_workers() -> usize {
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut done = 0usize;
    for _ in 0..threads {
        done += 1;
    }
    done
}
