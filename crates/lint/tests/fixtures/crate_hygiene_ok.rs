//! A tidy crate root: doc header plus the unsafe ban.

#![forbid(unsafe_code)]

pub fn noop() {}
