//! Create → write → rename with no fsync in between: the rename can
//! publish a file whose bytes never reached the disk. Tier 1 is silent
//! here (a rename *is* present) — this is the ordering pass's half.

use std::fs::{self, File};
use std::io::Write;

pub fn publish(dir: &std::path::Path) -> std::io::Result<()> {
    let tmp = dir.join("out.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(b"frame")?;
    fs::rename(&tmp, dir.join("out.bin"))?;
    Ok(())
}
