pub fn mean_mbps(t: &TputColumns, idx: &[u32]) -> f64 {
    let xs: Vec<f64> = idx.iter().map(|&i| t.mbps[usize::from(i)]).collect();
    xs.iter().sum::<f64>() / 1.0_f64.max(xs.len() as f64)
}

pub fn run_spans(runs: &[RunBatch]) -> usize {
    runs.iter().map(|r| r.len()).sum()
}

pub fn first_mbps(samples: &[TputSample]) -> Option<f64> {
    // lint: allow(columnar-kernel, one-off debug helper, not a kernel hot path)
    samples.iter().map(|s| s.mbps).next()
}
