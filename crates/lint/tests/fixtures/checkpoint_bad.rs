use std::fs::{self, File};

pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes)
}

pub fn save_streamed(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    std::io::Write::write_all(&mut f, bytes)?;
    f.sync_all()
}
