pub fn mean_mbps(samples: &[TputSample]) -> f64 {
    let xs: Vec<f64> = samples.iter().map(|s| s.mbps).collect();
    xs.iter().sum::<f64>() / 1.0_f64.max(xs.len() as f64)
}

pub fn speeds(samples: &[TputSample]) -> Vec<f64> {
    samples.iter().map(|s| s.speed_mph).collect()
}
