//! Clean counterparts: slice-rooted sums are ordered, `max` folds
//! commute, and integer sums are associative at any visit order.

use std::sync::mpsc::channel;

pub fn total(vals: &[f64]) -> f64 {
    vals.iter().sum::<f64>()
}

pub fn peak() -> f64 {
    let (tx, rx) = channel::<f64>();
    drop(tx);
    rx.iter().fold(f64::MIN, f64::max)
}

pub fn count() -> usize {
    let (tx, rx) = channel::<usize>();
    drop(tx);
    rx.iter().sum::<usize>()
}
