pub fn streams(rng: &SimRng, id: u32) {
    let a = rng.split("fixture/trace");
    let b = rng.split("fixture/area-x");
    let c = rng.split(&format!("fixture/rtt/{id}"));
    // lint: allow(rng-stream-labels, legacy label kept for seed compatibility)
    let d = rng.split("legacy");
}
