pub fn drain(stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(POLL);
    }
}

pub fn await_ready(client: &Client, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while !client.ready() {
        if t0.elapsed() > timeout {
            return false;
        }
        std::thread::sleep(POLL);
    }
    true
}

pub fn reconnect(addr: Addr) -> Option<Conn> {
    let mut attempts = 0u32;
    while attempts < MAX_ATTEMPTS {
        if let Ok(c) = Conn::open(addr) {
            return Some(c);
        }
        attempts += 1;
        std::thread::sleep(BACKOFF);
    }
    None
}

pub fn warm_cache(paths: &[PathBuf]) {
    // The iterator is the bound: for-loops are out of scope.
    for p in paths {
        std::thread::sleep(IO_PACE);
        touch(p);
    }
}

pub fn spin(door: &Door) {
    // lint: allow(bounded-retry, the supervisor SIGKILLs this helper at its own deadline; a local bound would mask real wedges)
    loop {
        std::thread::sleep(POLL);
        if door.open() {
            return;
        }
    }
}
