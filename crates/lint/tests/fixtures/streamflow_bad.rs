//! The label reaches `split` through a local bound to a callee's return
//! literal — invisible to tier 1, resolved by the stream-flow pass, and
//! off the `area/rest` scheme.

pub fn shuffle(rng: &mut SimRng) {
    let label = stream_name();
    rng.split(&label);
}

fn stream_name() -> &'static str {
    "plainlabel"
}
