pub fn schedules(rng: &SimRng, op: &str, seg: u32) {
    let a = rng.split("campaign/faults/vz/0");
    let b = rng.split(&format!("campaign/faults/{op}/{seg}"));
    // lint: allow(disrupt-stream-namespace, replays the drive walk to align fault windows)
    let c = rng.split("campaign/drive-walk");
}
