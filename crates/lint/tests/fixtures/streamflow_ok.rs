//! Clean counterpart: the flowed label is on-scheme and unique, and the
//! bare-literal site stays tier 1's business (skipped here).

pub fn shuffle(rng: &mut SimRng) {
    let label = stream_name();
    rng.split(&label);
}

fn stream_name() -> &'static str {
    "area/deck"
}

pub fn direct(rng: &mut SimRng) {
    rng.split("area/direct");
}
