pub fn poll_forever(client: &mut Client) {
    loop {
        if client.ready() {
            return;
        }
        std::thread::sleep(POLL);
    }
}

pub fn reconnect(addr: Addr) -> Conn {
    while !addr.reachable() {
        std::thread::sleep(BACKOFF);
    }
    Conn::open(addr)
}

pub fn wait_for_journal(dir: &Path) {
    while !Journal::file_path(dir).exists() {
        std::thread::sleep(POLL);
    }
}
