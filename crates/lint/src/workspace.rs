//! Workspace file discovery.
//!
//! The lint scans library source only: the root package's `src/` plus
//! every `crates/*/src/`. Integration tests, benches and examples live
//! outside `src/` and are intentionally out of scope; `#[cfg(test)]`
//! modules inside `src/` are masked at the token level instead.

use std::fs;
use std::io;
use std::path::Path;

use crate::config::Config;

/// One source file with its workspace context.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Crate identifier: the directory name under `crates/`, or
    /// `"wheels"` for the root package.
    pub crate_name: String,
    /// True for binary targets (`src/bin/**` or `src/main.rs`): entry
    /// points are exempt from the simulation-determinism rules.
    pub is_bin: bool,
    /// True for the crate root (`src/lib.rs`), which the hygiene rule
    /// holds to extra requirements.
    pub is_crate_root: bool,
    /// File contents.
    pub src: String,
}

/// Collect every library source file of the workspace rooted at `root`,
/// in deterministic (path-sorted) order.
pub fn collect_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    collect_crate(root, &root.join("src"), "wheels", cfg, &mut out)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if name.is_empty() || cfg.skips_dir(&name) {
                continue;
            }
            collect_crate(root, &dir.join("src"), &name, cfg, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// Collect one crate's `src/` tree.
fn collect_crate(
    root: &Path,
    src_dir: &Path,
    crate_name: &str,
    cfg: &Config,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    walk(root, src_dir, src_dir, crate_name, cfg, out)
}

fn walk(
    root: &Path,
    src_dir: &Path,
    dir: &Path,
    crate_name: &str,
    cfg: &Config,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if !cfg.skips_dir(&name) {
                walk(root, src_dir, &path, crate_name, cfg, out)?;
            }
            continue;
        }
        if !name.ends_with(".rs") {
            continue;
        }
        let rel_path = rel(&path, root);
        let is_bin = rel_path.contains("/bin/") || name == "main.rs";
        let is_crate_root = name == "lib.rs" && path.parent() == Some(src_dir);
        let src = fs::read_to_string(&path)?;
        out.push(SourceFile {
            rel_path,
            crate_name: crate_name.to_string(),
            is_bin,
            is_crate_root,
            src,
        });
    }
    Ok(())
}

/// Workspace-relative `/`-separated path.
fn rel(path: &Path, root: &Path) -> String {
    let p = path.strip_prefix(root).unwrap_or(path);
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
