//! # wheels-lint
//!
//! Determinism & hygiene static analysis for the wheels workspace.
//!
//! The simulator's headline guarantee — bit-identical datasets from a
//! published seed, at any thread count — is a property of the *whole*
//! tree, and nothing in the type system stops a future change from
//! iterating a `HashMap` into an output table or reading the wall clock
//! inside the simulator. This crate enforces those invariants
//! mechanically: a self-contained Rust lexer (the build environment is
//! registry-free, so no `syn`) feeds a token-pattern rule engine with
//! nine domain rules:
//!
//! 1. **nondeterminism** — no `Instant::now` / `SystemTime::now` /
//!    `thread_rng` / `from_entropy` / `rand::random` / `env::var` in
//!    simulator and analysis crates (binaries exempt);
//! 2. **hash-iteration** — no `HashMap`/`HashSet` in dataset-producing
//!    crates, whose iteration order can leak into emitted tables;
//! 3. **rng-stream-labels** — every `SimRng::split("…")` label literal
//!    is unique workspace-wide and follows the `area/{…}` scheme;
//! 4. **unwrap-in-lib** — no bare `.unwrap()` / `panic!` in library code
//!    without a justification comment;
//! 5. **lossy-cast** — no unannotated `as`-casts to integer types in
//!    record/analysis paths;
//! 6. **crate-hygiene** — every crate root carries
//!    `#![forbid(unsafe_code)]` and a `//!` doc header;
//! 7. **disrupt-stream-namespace** — RNG stream labels in the disruption
//!    subsystem stay inside the dedicated `campaign/faults/` namespace,
//!    so fault injection can never perturb the simulation streams;
//! 8. **atomic-persistence** — on persistence paths (checkpoint journal,
//!    binary output writers), no in-place `fs::write` or non-renamed
//!    `File::create`: files must land via temp-file + atomic rename so a
//!    crash mid-write never leaves a torn file a resumed run would trust;
//! 9. **columnar-kernel** — in the batched analysis paths, no per-row
//!    `.iter().map(|s| s.field)` projections: kernels scan the
//!    contiguous column slices of the columnar dataset, not an array of
//!    structs one row at a time.
//!
//! A finding is silenced in place with `// lint: allow(rule, reason)` on
//! the offending line or the line above; the reason is mandatory.
//!
//! Run it three ways: `cargo run -p wheels-lint -- --workspace [--json]`,
//! the fixture tests under `tests/`, and the workspace-clean integration
//! test in the root package (tier 1).

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::io;
use std::path::Path;

pub use config::Config;
pub use report::{Finding, Report};
pub use workspace::SourceFile;

/// Lint a set of already-loaded source files.
pub fn lint_sources(files: &[SourceFile], cfg: &Config) -> Report {
    let mut findings = Vec::new();
    let mut labels = rules::LabelRegistry::default();
    for file in files {
        let lexed = lexer::lex(&file.src);
        let mask = lexer::test_mask(&lexed.toks);
        rules::nondeterminism(file, &lexed, &mask, cfg, &mut findings);
        rules::hash_iteration(file, &lexed, &mask, cfg, &mut findings);
        rules::collect_labels(file, &lexed, &mask, cfg, &mut labels);
        rules::unwrap_in_lib(file, &lexed, &mask, cfg, &mut findings);
        rules::lossy_cast(file, &lexed, &mask, cfg, &mut findings);
        rules::crate_hygiene(file, &lexed, &mask, cfg, &mut findings);
        rules::disrupt_stream_namespace(file, &lexed, &mask, cfg, &mut findings);
        rules::atomic_persistence(file, &lexed, &mask, cfg, &mut findings);
        rules::columnar_kernel(file, &lexed, &mask, cfg, &mut findings);
    }
    rules::label_findings(&labels, &mut findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Report {
        findings,
        files_checked: files.len(),
    }
}

/// Lint the workspace rooted at `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let files = workspace::collect_workspace(root, cfg)?;
    Ok(lint_sources(&files, cfg))
}
