//! # wheels-lint
//!
//! Determinism & hygiene static analysis for the wheels workspace.
//!
//! The simulator's headline guarantee — bit-identical datasets from a
//! published seed, at any thread count — is a property of the *whole*
//! tree, and nothing in the type system stops a future change from
//! iterating a `HashMap` into an output table or reading the wall clock
//! inside the simulator. This crate enforces those invariants
//! mechanically, in two tiers over one shared token stream (the build
//! environment is registry-free, so no `syn` — a self-contained lexer
//! and a lightweight recursive-descent parser live in this crate).
//!
//! **Tier 1** is the token-pattern rule engine: eleven single-file rules.
//!
//! 1. **nondeterminism** — no `Instant::now` / `SystemTime::now` /
//!    `thread_rng` / `from_entropy` / `rand::random` / `env::var` in
//!    simulator and analysis crates (binaries exempt);
//! 2. **hash-iteration** — no `HashMap`/`HashSet` in dataset-producing
//!    crates, whose iteration order can leak into emitted tables;
//! 3. **rng-stream-labels** — every `SimRng::split("…")` label literal
//!    is unique workspace-wide and follows the `area/{…}` scheme;
//! 4. **unwrap-in-lib** — no bare `.unwrap()` / `panic!` in library code
//!    without a justification comment;
//! 5. **lossy-cast** — no unannotated `as`-casts to integer types in
//!    record/analysis paths;
//! 6. **crate-hygiene** — every crate root carries
//!    `#![forbid(unsafe_code)]` and a `//!` doc header;
//! 7. **disrupt-stream-namespace** — RNG stream labels in the disruption
//!    subsystem stay inside the dedicated `campaign/faults/` namespace,
//!    so fault injection can never perturb the simulation streams;
//! 8. **atomic-persistence** — on persistence paths (checkpoint journal,
//!    binary output writers), no in-place `fs::write` or non-renamed
//!    `File::create`: files must land via temp-file + atomic rename so a
//!    crash mid-write never leaves a torn file a resumed run would trust;
//! 9. **columnar-kernel** — in the batched analysis paths, no per-row
//!    `.iter().map(|s| s.field)` projections: kernels scan the
//!    contiguous column slices of the columnar dataset, not an array of
//!    structs one row at a time;
//! 10. **bounded-ingest** — on the campaign-merge paths, no unbounded
//!     `.push(..)`/`.insert(..)` accumulation of shard records: the
//!     streaming merge keeps at most `merge_window` completed shards
//!     resident and spills the rest through the journal, and one
//!     unbounded collection silently restores the all-shards-in-memory
//!     behavior the reorder window exists to prevent;
//! 11. **bounded-retry** — on the always-on service and soak-harness
//!     paths, `loop`/`while` bodies that sleep (retry/poll loops) must
//!     visibly bound themselves with a stop flag, deadline/timeout, or
//!     attempt budget — an unbounded sleep loop spins forever against a
//!     peer that never recovers.
//!
//! **Tier 2** ([`tier2`]) parses every file into an item AST, builds a
//! workspace symbol table and approximate call graph, and runs four
//! cross-file dataflow passes:
//!
//! 12. **determinism-taint** — nondeterministic values (clock reads,
//!     entropy, host topology, hash-iteration order) must not *flow*,
//!     through locals, params, and returns, into record constructors,
//!     checkpoint/WCD1 encoders, or report printers — the full call
//!     chain appears in the diagnostic;
//! 13. **rng-stream-flow** — `split(label)` sites whose label arrives
//!     through value flow (`format!`, locals, params, callee returns)
//!     obey the `area/rest` scheme, workspace uniqueness, and the
//!     disrupt-namespace confinement, just like literal labels;
//! 14. **persistence-ordering** — when a created file is later renamed
//!     into place, an fsync (possibly transitive through a callee) must
//!     sit between the create and the rename;
//! 15. **unordered-float-reduction** — non-commutative `f64` reductions
//!     must not consume hash-map or channel iteration order in the
//!     analysis kernels or the campaign merge.
//!
//! A finding is silenced in place with `// lint: allow(rule, reason)` on
//! the offending line or the line above; the reason is mandatory. Rules
//! emit *raw* findings and this driver applies the allow filter
//! uniformly, which is what powers `--strict-allows`: the audit diffs
//! the directives against the raw findings and reports every directive
//! that no longer suppresses anything as **stale-allow** (rule 16).
//!
//! Run it four ways: `cargo run -p wheels-lint -- --workspace [--json]
//! [--sarif FILE] [--tier1-only] [--strict-allows]`, the fixture tests
//! under `tests/`, and the workspace-clean integration test in the root
//! package (tier 1).

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod tier2;
pub mod workspace;

use std::io;
use std::path::Path;

pub use config::Config;
pub use report::{Finding, Report, SCHEMA_VERSION};
pub use sarif::render_sarif;
pub use workspace::SourceFile;

/// Knobs for a lint run beyond the per-crate [`Config`].
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Run the tier-2 dataflow passes (default: on).
    pub tier2: bool,
    /// Audit allow directives: any directive that suppresses no raw
    /// finding becomes a `stale-allow` finding (default: off).
    pub strict_allows: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            tier2: true,
            strict_allows: false,
        }
    }
}

/// Lint a set of already-loaded source files with explicit [`Options`].
pub fn lint_sources_opts(files: &[SourceFile], cfg: &Config, opts: Options) -> Report {
    // Lex every file once; tier 1, tier 2, the allow filter, and the
    // strict-allows audit all share the streams.
    let lexed: Vec<lexer::LexedFile> = files.iter().map(|f| lexer::lex(&f.src)).collect();
    let masks: Vec<Vec<bool>> = lexed.iter().map(|l| lexer::test_mask(&l.toks)).collect();

    let mut raw = Vec::new();
    let mut labels = rules::LabelRegistry::default();
    for (i, file) in files.iter().enumerate() {
        let (lx, mask) = (&lexed[i], &masks[i]);
        rules::nondeterminism(file, lx, mask, cfg, &mut raw);
        rules::hash_iteration(file, lx, mask, cfg, &mut raw);
        rules::collect_labels(file, lx, mask, cfg, &mut labels);
        rules::unwrap_in_lib(file, lx, mask, cfg, &mut raw);
        rules::lossy_cast(file, lx, mask, cfg, &mut raw);
        rules::crate_hygiene(file, lx, mask, cfg, &mut raw);
        rules::disrupt_stream_namespace(file, lx, mask, cfg, &mut raw);
        rules::atomic_persistence(file, lx, mask, cfg, &mut raw);
        rules::columnar_kernel(file, lx, mask, cfg, &mut raw);
        rules::bounded_ingest(file, lx, mask, cfg, &mut raw);
        rules::bounded_retry(file, lx, mask, cfg, &mut raw);
    }
    rules::label_findings(&labels, &mut raw);

    if opts.tier2 {
        let t2 = tier2::Tier2::build(files, &lexed, &masks);
        t2.run(cfg, &labels, &mut raw);
    }

    // Uniform suppression: drop raw findings covered by an allow
    // directive with a reason, in the finding's own file.
    let index_of = |rel: &str| files.iter().position(|f| f.rel_path == rel);
    let mut findings: Vec<Finding> = raw
        .iter()
        .filter(|f| index_of(&f.file).is_none_or(|i| !rules::allowed(&lexed[i], f.rule, f.line)))
        .cloned()
        .collect();

    if opts.strict_allows {
        stale_allows(files, &lexed, &raw, &mut findings);
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Report {
        schema_version: SCHEMA_VERSION,
        findings,
        files_checked: files.len(),
    }
}

/// The strict-allows audit: every `// lint: allow(rule, reason)`
/// directive must suppress at least one raw finding (same rule, on the
/// directive's line or the line below — the two positions [`rules::allowed`]
/// honours). Directives that suppress nothing, name an unknown rule, or
/// carry an empty reason are reported as `stale-allow`.
fn stale_allows(
    files: &[SourceFile],
    lexed: &[lexer::LexedFile],
    raw: &[Finding],
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "stale-allow";
    for (i, file) in files.iter().enumerate() {
        for (&line, dirs) in &lexed[i].allows {
            for d in dirs {
                let why = if !rules::known_rule(&d.rule) {
                    Some(format!(
                        "allow directive names unknown rule \"{}\" — it can never suppress anything",
                        d.rule
                    ))
                } else if d.reason.trim().is_empty() {
                    Some(format!(
                        "allow directive for `{}` has no reason, so it suppresses nothing — add a justification or delete it",
                        d.rule
                    ))
                } else {
                    let used = raw.iter().any(|f| {
                        f.file == file.rel_path
                            && f.rule == d.rule
                            && (f.line == line || f.line == line + 1)
                    });
                    (!used).then(|| {
                        format!(
                            "stale allow: no `{}` finding on this line or the next — the directive suppresses nothing; delete it",
                            d.rule
                        )
                    })
                };
                if let Some(message) = why {
                    out.push(Finding {
                        rule: RULE,
                        id: rules::rule_id(RULE),
                        file: file.rel_path.clone(),
                        line,
                        col: 1,
                        message,
                        snippet: lexed[i]
                            .lines
                            .get(line as usize - 1)
                            .cloned()
                            .unwrap_or_default(),
                    });
                }
            }
        }
    }
}

/// Lint a set of already-loaded source files with default options
/// (tier 2 on, strict-allows off).
pub fn lint_sources(files: &[SourceFile], cfg: &Config) -> Report {
    lint_sources_opts(files, cfg, Options::default())
}

/// Lint the workspace rooted at `root` with explicit [`Options`].
pub fn lint_workspace_opts(root: &Path, cfg: &Config, opts: Options) -> io::Result<Report> {
    let files = workspace::collect_workspace(root, cfg)?;
    Ok(lint_sources_opts(&files, cfg, opts))
}

/// Lint the workspace rooted at `root` with default options.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    lint_workspace_opts(root, cfg, Options::default())
}
