//! CLI for `wheels-lint`.
//!
//! ```text
//! cargo run -p wheels-lint -- --workspace [--json] [--sarif FILE]
//!     [--tier1-only] [--strict-allows] [--root DIR] [--config FILE]
//! ```
//!
//! `--tier1-only` skips the tier-2 dataflow passes (fast token-rule
//! scan). `--strict-allows` audits suppression directives: any
//! `// lint: allow(…)` that no longer silences a finding is itself
//! reported as `stale-allow`. `--sarif FILE` additionally writes a
//! SARIF 2.1.0 log to `FILE` (alongside the text or JSON on stdout).
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use wheels_lint::{lint_workspace_opts, render_sarif, Config, Options};

const USAGE: &str = "usage: wheels-lint --workspace [--json] [--sarif FILE] [--tier1-only] [--strict-allows] [--root DIR] [--config FILE]";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut opts = Options::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--tier1-only" => opts.tier2 = false,
            "--strict-allows" => opts.strict_allows = true,
            "--sarif" => match args.next() {
                Some(file) => sarif_path = Some(PathBuf::from(file)),
                None => return usage_error("--sarif requires a file"),
            },
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage_error("--config requires a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("--workspace is required");
    }

    let cfg = match config_path {
        None => Config::default(),
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Config>(&s).map_err(|e| e.to_string()))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("wheels-lint: cannot load config {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };

    match lint_workspace_opts(&root, &cfg, opts) {
        Ok(report) => {
            if let Some(path) = sarif_path {
                if let Err(e) = std::fs::write(&path, render_sarif(&report)) {
                    eprintln!("wheels-lint: cannot write SARIF {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("wheels-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("wheels-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
