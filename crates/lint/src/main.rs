//! CLI for `wheels-lint`.
//!
//! ```text
//! cargo run -p wheels-lint -- --workspace [--json] [--root DIR] [--config FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use wheels_lint::{lint_workspace, Config};

const USAGE: &str = "usage: wheels-lint --workspace [--json] [--root DIR] [--config FILE]";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage_error("--config requires a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("--workspace is required");
    }

    let cfg = match config_path {
        None => Config::default(),
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<Config>(&s).map_err(|e| e.to_string()))
        {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("wheels-lint: cannot load config {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };

    match lint_workspace(&root, &cfg) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("wheels-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("wheels-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
