//! Tier-2 recursive-descent item parser.
//!
//! Parses the flat token stream of one file into a tree of *items* — fns,
//! inline modules, impl blocks, type definitions, consts, uses, macro
//! invocations — each carrying its exact token range and byte span. This
//! is deliberately not a full Rust grammar: expression structure stays a
//! token soup (the dataflow passes pattern-match inside body ranges), but
//! item boundaries, fn signatures (name, impl owner, parameter names,
//! return-type tokens, body range) and nesting are recovered exactly.
//!
//! Totality is a hard requirement — the parse-all smoke test feeds every
//! `.rs` file in the workspace through here and asserts (a) zero
//! diagnostics, (b) the top-level items tile the token stream with no gap
//! or overlap, and (c) each item's byte span reproduces its exact source
//! text. Anything unrecognized is consumed into an [`ItemKind::Other`]
//! item *and* recorded as a diagnostic, so breakage is loud, not silent.

use crate::lexer::{Tok, TokKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, impl-associated, or trait-provided).
    Fn,
    /// Inline or out-of-line `mod`.
    Mod,
    /// `impl` block (children are its associated items).
    Impl,
    /// `struct` / `union` definition.
    Struct,
    /// `enum` definition.
    Enum,
    /// `trait` definition (children are its items).
    Trait,
    /// `use` declaration or `extern crate`.
    Use,
    /// `const` / `static` item.
    Const,
    /// `type` alias or associated type.
    TypeAlias,
    /// `extern "…" { … }` foreign block.
    ExternBlock,
    /// `macro_rules!` definition.
    MacroDef,
    /// Item-position macro invocation (`thread_local! { … }`).
    MacroCall,
    /// Inner attribute, stray semicolon, or recovered-from construct.
    Other,
}

/// A parsed fn signature.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Parameter names in declaration order; `self` for receivers, `_`
    /// for wildcard or destructuring patterns.
    pub params: Vec<String>,
    /// Return-type tokens (joined text), empty for `()`.
    pub ret: String,
    /// Token range of the body *contents* (inside the braces), if the fn
    /// has a body.
    pub body: Option<(usize, usize)>,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Kind.
    pub kind: ItemKind,
    /// Item name (`fn`/`mod`/type name; impl self-type's last path
    /// segment; empty when nameless).
    pub name: String,
    /// Half-open token range covering the whole item, attributes
    /// included.
    pub toks: (usize, usize),
    /// Position of the name token (or first token).
    pub line: u32,
    /// Position of the name token (or first token).
    pub col: u32,
    /// Signature, for [`ItemKind::Fn`].
    pub sig: Option<FnSig>,
    /// Nested items, for `mod` / `impl` / `trait` bodies.
    pub children: Vec<Item>,
}

impl Item {
    /// Byte span of the item in the source (first token's `lo` to last
    /// token's `hi`).
    pub fn byte_span(&self, toks: &[Tok]) -> (usize, usize) {
        (toks[self.toks.0].lo, toks[self.toks.1 - 1].hi)
    }
}

/// A place the parser had to recover.
#[derive(Debug, Clone)]
pub struct ParseDiag {
    /// Position.
    pub line: u32,
    /// Position.
    pub col: u32,
    /// What was unexpected.
    pub message: String,
}

/// A fully parsed file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Top-level items, in source order, tiling the token stream.
    pub items: Vec<Item>,
    /// Recovery diagnostics; empty on every file the parser fully
    /// understands (asserted workspace-wide by the parse-all test).
    pub diags: Vec<ParseDiag>,
}

/// Parse one lexed file's token stream.
pub fn parse(toks: &[Tok]) -> FileAst {
    let mut p = Parser {
        t: toks,
        diags: Vec::new(),
    };
    let items = p.items(0, toks.len());
    FileAst {
        items,
        diags: p.diags,
    }
}

struct Parser<'a> {
    t: &'a [Tok],
    diags: Vec<ParseDiag>,
}

/// Keywords that can begin an item after visibility/modifiers.
const ITEM_KEYWORDS: [&str; 13] = [
    "fn",
    "mod",
    "impl",
    "struct",
    "union",
    "enum",
    "trait",
    "use",
    "const",
    "static",
    "type",
    "extern",
    "macro_rules",
];

impl<'a> Parser<'a> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        self.t.get(i).and_then(|t| t.ident())
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.t.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Parse items in `[lo, hi)`; the returned items tile the range.
    fn items(&mut self, lo: usize, hi: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            let item = self.item(i, hi);
            debug_assert!(item.toks.1 > i, "parser must make progress");
            i = item.toks.1;
            out.push(item);
        }
        out
    }

    /// Parse one item starting at `i` (bounded by `hi`).
    fn item(&mut self, i: usize, hi: usize) -> Item {
        let start = i;
        let mut i = i;

        // Stray semicolon at item position.
        if self.punct_at(i, ';') {
            return self.mk(ItemKind::Other, String::new(), start, i + 1, None, vec![]);
        }
        // Inner attribute `#![…]` — belongs to the enclosing module, not
        // the next item.
        if self.punct_at(i, '#') && self.punct_at(i + 1, '!') && self.punct_at(i + 2, '[') {
            let end = self.balanced(i + 2, hi, '[', ']');
            return self.mk(ItemKind::Other, String::new(), start, end, None, vec![]);
        }
        // Outer attributes attach to the item they precede.
        while self.punct_at(i, '#') && self.punct_at(i + 1, '[') {
            i = self.balanced(i + 1, hi, '[', ']');
        }
        // Visibility and modifiers.
        loop {
            match self.ident_at(i) {
                Some("pub") => {
                    i += 1;
                    if self.punct_at(i, '(') {
                        i = self.balanced(i, hi, '(', ')');
                    }
                }
                Some("default") if self.is_modifier_here(i) => i += 1,
                Some("async") | Some("unsafe") => i += 1,
                Some("const") if self.ident_at(i + 1) == Some("fn") => i += 1,
                Some("extern")
                    if self.t.get(i + 1).is_some_and(|t| t.kind == TokKind::Str)
                        && self.ident_at(i + 2) == Some("fn") =>
                {
                    i += 2;
                }
                _ => break,
            }
        }

        match self.ident_at(i) {
            Some("fn") => self.fn_item(start, i, hi),
            Some("mod") => {
                let name = self.ident_at(i + 1).unwrap_or_default().to_string();
                let mut j = i + 2;
                if self.punct_at(j, ';') {
                    return self.mk(ItemKind::Mod, name, start, j + 1, None, vec![]);
                }
                if self.punct_at(j, '{') {
                    let end = self.balanced(j, hi, '{', '}');
                    let children = self.items(j + 1, end - 1);
                    return self.mk(ItemKind::Mod, name, start, end, None, children);
                }
                j = self.recover(j, hi, "mod body");
                self.mk(ItemKind::Mod, name, start, j, None, vec![])
            }
            Some("impl") => {
                let mut j = i + 1;
                if self.punct_at(j, '<') {
                    j = self.angles(j, hi);
                }
                // Self type: tokens up to the body `{` (or a terminating
                // `;` — never valid, but recover); `for` switches to the
                // implemented-for type.
                let mut type_start = j;
                let mut body_open = None;
                while j < hi {
                    if self.punct_at(j, '{') {
                        body_open = Some(j);
                        break;
                    }
                    if self.punct_at(j, ';') {
                        break;
                    }
                    // Skip balanced groups whole: a `;` inside
                    // `From<&[T; N]>` or a `{` inside `Fn() -> { … }`
                    // bounds must not end the header scan.
                    if self.punct_at(j, '<') {
                        j = self.angles(j, hi);
                        continue;
                    }
                    if self.punct_at(j, '(') {
                        j = self.balanced(j, hi, '(', ')');
                        continue;
                    }
                    if self.punct_at(j, '[') {
                        j = self.balanced(j, hi, '[', ']');
                        continue;
                    }
                    if self.ident_at(j) == Some("for") {
                        type_start = j + 1;
                    }
                    j += 1;
                }
                let name = self.type_name(type_start, body_open.unwrap_or(j));
                match body_open {
                    Some(open) => {
                        let end = self.balanced(open, hi, '{', '}');
                        let children = self.items(open + 1, end - 1);
                        self.mk(ItemKind::Impl, name, start, end, None, children)
                    }
                    None => self.mk(ItemKind::Impl, name, start, (j + 1).min(hi), None, vec![]),
                }
            }
            Some(kw @ ("struct" | "union" | "enum" | "trait")) => {
                let kind = match kw {
                    "struct" | "union" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    _ => ItemKind::Trait,
                };
                let name = self.ident_at(i + 1).unwrap_or_default().to_string();
                let end = self.skip_to_item_end(i + 2, hi);
                if kind == ItemKind::Trait {
                    // Trait bodies hold provided methods worth indexing.
                    if let Some(open) = (i + 2..end).find(|&k| self.punct_at(k, '{')) {
                        let close = self.balanced(open, hi, '{', '}');
                        let children = self.items(open + 1, close - 1);
                        return self.mk(kind, name, start, end.max(close), None, children);
                    }
                }
                self.mk(kind, name, start, end, None, vec![])
            }
            Some("use") => {
                let end = self.skip_to_semi(i + 1, hi);
                self.mk(ItemKind::Use, String::new(), start, end, None, vec![])
            }
            Some("const") | Some("static") => {
                // `const NAME: T = …;` (the `const fn` case was consumed
                // as a modifier above).
                let name = self.ident_at(i + 1).unwrap_or_default().to_string();
                let end = self.skip_to_semi(i + 1, hi);
                self.mk(ItemKind::Const, name, start, end, None, vec![])
            }
            Some("type") => {
                let name = self.ident_at(i + 1).unwrap_or_default().to_string();
                let end = self.skip_to_semi(i + 1, hi);
                self.mk(ItemKind::TypeAlias, name, start, end, None, vec![])
            }
            Some("extern") => {
                // `extern crate …;` or a foreign block `extern "C" { … }`.
                if self.ident_at(i + 1) == Some("crate") {
                    let end = self.skip_to_semi(i + 1, hi);
                    return self.mk(ItemKind::Use, String::new(), start, end, None, vec![]);
                }
                let mut j = i + 1;
                if self.t.get(j).is_some_and(|t| t.kind == TokKind::Str) {
                    j += 1;
                }
                if self.punct_at(j, '{') {
                    let end = self.balanced(j, hi, '{', '}');
                    return self.mk(
                        ItemKind::ExternBlock,
                        String::new(),
                        start,
                        end,
                        None,
                        vec![],
                    );
                }
                let end = self.recover(j, hi, "extern item");
                self.mk(ItemKind::Other, String::new(), start, end, None, vec![])
            }
            Some("macro_rules") if self.punct_at(i + 1, '!') => {
                let name = self.ident_at(i + 2).unwrap_or_default().to_string();
                let end = self.macro_body(i + 3, hi);
                self.mk(ItemKind::MacroDef, name, start, end, None, vec![])
            }
            Some(name) if self.punct_at(i + 1, '!') => {
                // Item-position macro invocation.
                let name = name.to_string();
                let end = self.macro_body(i + 2, hi);
                self.mk(ItemKind::MacroCall, name, start, end, None, vec![])
            }
            _ => {
                let end = self.recover(i, hi, "item");
                self.mk(ItemKind::Other, String::new(), start, end, None, vec![])
            }
        }
    }

    /// Parse a fn item whose `fn` keyword sits at `i`; `start` includes
    /// attributes/modifiers already consumed.
    fn fn_item(&mut self, start: usize, i: usize, hi: usize) -> Item {
        let name = self.ident_at(i + 1).unwrap_or_default().to_string();
        let mut j = i + 2;
        if self.punct_at(j, '<') {
            j = self.angles(j, hi);
        }
        let mut params = Vec::new();
        if self.punct_at(j, '(') {
            let close = self.balanced(j, hi, '(', ')');
            params = self.param_names(j + 1, close - 1);
            j = close;
        } else {
            self.diag(j.min(hi.saturating_sub(1)), "fn without parameter list");
        }
        // Return type: `-> …` up to `where`, `{`, or `;` at depth 0.
        let mut ret = String::new();
        if self.punct_at(j, '-') && self.punct_at(j + 1, '>') {
            j += 2;
            let ret_start = j;
            let mut depth = 0i32;
            while j < hi {
                let t = &self.t[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0
                    && (t.is_punct('{') || t.is_punct(';') || t.ident() == Some("where"))
                {
                    break;
                }
                j += 1;
            }
            ret = self.t[ret_start..j]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
        }
        // Where clause: up to `{` or `;` at depth 0.
        let mut depth = 0i32;
        while j < hi {
            let t = &self.t[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        if self.punct_at(j, ';') {
            let sig = FnSig {
                params,
                ret,
                body: None,
            };
            return self.mk(ItemKind::Fn, name, start, j + 1, Some(sig), vec![]);
        }
        if self.punct_at(j, '{') {
            let end = self.balanced(j, hi, '{', '}');
            let sig = FnSig {
                params,
                ret,
                body: Some((j + 1, end - 1)),
            };
            return self.mk(ItemKind::Fn, name, start, end, Some(sig), vec![]);
        }
        let end = self.recover(j, hi, "fn body");
        self.mk(
            ItemKind::Fn,
            name,
            start,
            end,
            Some(FnSig {
                params,
                ret,
                body: None,
            }),
            vec![],
        )
    }

    /// Extract parameter names from the token range between the parens.
    fn param_names(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut part_start = lo;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut k = lo;
        while k <= hi {
            let at_end = k == hi;
            let t = (!at_end).then(|| &self.t[k]);
            let is_top_comma =
                !at_end && t.is_some_and(|t| t.is_punct(',')) && depth == 0 && angle <= 0;
            if at_end || is_top_comma {
                if part_start < k {
                    out.push(self.one_param(part_start, k));
                }
                part_start = k + 1;
                if at_end {
                    break;
                }
                k += 1;
                continue;
            }
            let t = t.expect("bounds checked above");
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(k > lo && self.punct_at(k - 1, '-')) {
                angle -= 1;
            }
            k += 1;
        }
        out
    }

    /// The binding name of one parameter's token range.
    fn one_param(&self, lo: usize, hi: usize) -> String {
        let mut k = lo;
        // Skip `&`, lifetimes, and `mut` to find the pattern head.
        while k < hi {
            let t = &self.t[k];
            if t.is_punct('&') || t.kind == TokKind::Lifetime || t.ident() == Some("mut") {
                k += 1;
            } else {
                break;
            }
        }
        match self.ident_at(k) {
            Some("self") => "self".to_string(),
            Some(name)
                if self.punct_at(k + 1, ':')
                    || (k + 1 >= hi && name != "_")
                    || self.punct_at(k + 1, ',') =>
            {
                name.to_string()
            }
            _ => "_".to_string(),
        }
    }

    /// The last path-segment identifier of a type token range (the name
    /// an impl block is indexed under).
    fn type_name(&self, lo: usize, hi: usize) -> String {
        let mut angle = 0i32;
        let mut name = String::new();
        let mut k = lo;
        while k < hi {
            let t = &self.t[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(k > lo && self.punct_at(k - 1, '-')) {
                angle -= 1;
            } else if angle == 0 && t.ident() == Some("where") {
                break;
            } else if angle == 0 {
                if let Some(id) = t.ident() {
                    if id != "dyn" && id != "mut" {
                        name = id.to_string();
                    }
                }
            }
            k += 1;
        }
        name
    }

    /// Token index one past the matching closer for the opener at `open`.
    fn balanced(&mut self, open: usize, hi: usize, o: char, c: char) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < hi {
            if self.t[k].is_punct(o) {
                depth += 1;
            } else if self.t[k].is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        self.diag(open.min(hi.saturating_sub(1)), "unclosed delimiter");
        hi
    }

    /// One past a balanced `<…>` group at `open`, ignoring the `>` of
    /// `->` arrows inside.
    fn angles(&mut self, open: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < hi {
            let t = &self.t[k];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(k > open && self.punct_at(k - 1, '-')) {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                // Balanced sub-groups (fn-pointer params in bounds).
                k = self.balanced(k, hi, if t.is_punct('(') { '(' } else { '[' }, {
                    if self.t[k].is_punct('(') {
                        ')'
                    } else {
                        ']'
                    }
                });
                continue;
            }
            k += 1;
        }
        self.diag(open.min(hi.saturating_sub(1)), "unclosed angle brackets");
        hi
    }

    /// One past the `;` ending a declaration-style item (braced groups
    /// along the way are consumed balanced, so `= { … };` works).
    fn skip_to_semi(&mut self, from: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut k = from;
        while k < hi {
            let t = &self.t[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return k + 1;
            }
            k += 1;
        }
        self.diag(from.min(hi.saturating_sub(1)), "missing `;`");
        hi
    }

    /// One past the end of a definition-style item: the first `;` at
    /// depth 0, or the close of the first brace group at depth 0
    /// (whichever comes first) — `struct S;`, `struct S(T);`,
    /// `enum E { … }`.
    fn skip_to_item_end(&mut self, from: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut k = from;
        while k < hi {
            let t = &self.t[k];
            if t.is_punct('{') && depth == 0 {
                return self.balanced(k, hi, '{', '}');
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return k + 1;
            }
            k += 1;
        }
        self.diag(from.min(hi.saturating_sub(1)), "unterminated definition");
        hi
    }

    /// Consume a macro body: a balanced delimiter group, plus the
    /// trailing `;` for `(…)` / `[…]` invocations.
    fn macro_body(&mut self, from: usize, hi: usize) -> usize {
        match self.t.get(from) {
            Some(t) if t.is_punct('{') => self.balanced(from, hi, '{', '}'),
            Some(t) if t.is_punct('(') => {
                let end = self.balanced(from, hi, '(', ')');
                if self.punct_at(end, ';') {
                    end + 1
                } else {
                    end
                }
            }
            Some(t) if t.is_punct('[') => {
                let end = self.balanced(from, hi, '[', ']');
                if self.punct_at(end, ';') {
                    end + 1
                } else {
                    end
                }
            }
            _ => {
                self.diag(from.min(hi.saturating_sub(1)), "macro without body");
                self.recover(from, hi, "macro body")
            }
        }
    }

    /// `default` is a modifier only when an item keyword follows.
    fn is_modifier_here(&self, i: usize) -> bool {
        self.ident_at(i + 1)
            .is_some_and(|id| ITEM_KEYWORDS.contains(&id))
    }

    /// Error recovery: record a diagnostic and consume to the next `;` at
    /// depth 0 or through the first balanced brace group.
    fn recover(&mut self, from: usize, hi: usize, what: &str) -> usize {
        self.diag(from.min(hi.saturating_sub(1)), what);
        let end = self.skip_to_item_end(from, hi);
        end.max(from + 1).min(hi)
    }

    fn diag(&mut self, at: usize, what: &str) {
        let (line, col) = self.t.get(at).map(|t| (t.line, t.col)).unwrap_or((1, 1));
        self.diags.push(ParseDiag {
            line,
            col,
            message: format!("unexpected tokens while parsing {what}"),
        });
    }

    fn mk(
        &self,
        kind: ItemKind,
        name: String,
        start: usize,
        end: usize,
        sig: Option<FnSig>,
        children: Vec<Item>,
    ) -> Item {
        let name_tok = self.t[start..end]
            .iter()
            .find(|t| t.ident() == Some(name.as_str()))
            .or_else(|| self.t.get(start));
        let (line, col) = name_tok.map(|t| (t.line, t.col)).unwrap_or((1, 1));
        Item {
            kind,
            name,
            toks: (start, end.max(start + 1)),
            line,
            col,
            sig,
            children,
        }
    }
}

/// Walk an item tree depth-first, visiting every item.
pub fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item, Option<&'a Item>)) {
    fn inner<'a>(
        items: &'a [Item],
        parent: Option<&'a Item>,
        f: &mut impl FnMut(&'a Item, Option<&'a Item>),
    ) {
        for it in items {
            f(it, parent);
            inner(&it.children, Some(it), f);
        }
    }
    inner(items, None, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileAst {
        parse(&lex(src).toks)
    }

    #[test]
    fn items_tile_the_stream() {
        let src = "use std::fmt;\n\npub struct S { x: u8 }\n\nimpl S {\n    pub fn get(&self) -> u8 { self.x }\n}\n\nfn free(a: u64, mut b: f64) -> f64 { b += a as f64; b }\n";
        let lexed = lex(src);
        let ast = parse(&lexed.toks);
        assert!(ast.diags.is_empty(), "{:?}", ast.diags);
        let mut pos = 0usize;
        for it in &ast.items {
            assert_eq!(it.toks.0, pos, "gap before {:?}", it.kind);
            pos = it.toks.1;
        }
        assert_eq!(pos, lexed.toks.len());
        let kinds: Vec<ItemKind> = ast.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::Struct,
                ItemKind::Impl,
                ItemKind::Fn
            ]
        );
    }

    #[test]
    fn fn_signatures_recovered() {
        let ast = parse_src(
            "impl Journal {\n    fn append(&mut self, frame: &[u8], n: usize) -> io::Result<()> { Ok(()) }\n}\n",
        );
        let imp = &ast.items[0];
        assert_eq!(imp.kind, ItemKind::Impl);
        assert_eq!(imp.name, "Journal");
        let f = &imp.children[0];
        assert_eq!(f.name, "append");
        let sig = f.sig.as_ref().expect("fn has sig");
        assert_eq!(sig.params, vec!["self", "frame", "n"]);
        assert!(sig.ret.contains("Result"));
        assert!(sig.body.is_some());
    }

    #[test]
    fn impl_for_takes_the_implemented_type() {
        let ast = parse_src("impl fmt::Display for Fingerprint { }\n");
        assert_eq!(ast.items[0].name, "Fingerprint");
    }

    #[test]
    fn generics_and_wheres_do_not_confuse_boundaries() {
        let ast = parse_src(
            "fn gather<T: Copy, F: Fn(&T) -> f64>(xs: &[T], f: F) -> Vec<f64>\nwhere\n    T: Send,\n{\n    xs.iter().map(f).collect()\n}\n",
        );
        assert!(ast.diags.is_empty(), "{:?}", ast.diags);
        assert_eq!(ast.items.len(), 1);
        assert_eq!(ast.items[0].name, "gather");
        assert_eq!(
            ast.items[0].sig.as_ref().expect("sig").params,
            vec!["xs", "f"]
        );
    }

    #[test]
    fn const_with_block_initializer_ends_at_semi() {
        let ast = parse_src("const X: usize = { 1 + 2 };\nfn after() {}\n");
        assert!(ast.diags.is_empty(), "{:?}", ast.diags);
        assert_eq!(ast.items.len(), 2);
        assert_eq!(ast.items[0].kind, ItemKind::Const);
        assert_eq!(ast.items[1].name, "after");
    }

    #[test]
    fn nested_mods_recurse() {
        let ast = parse_src("mod outer {\n    mod inner {\n        fn leaf() {}\n    }\n}\n");
        let outer = &ast.items[0];
        let inner = &outer.children[0];
        assert_eq!(inner.children[0].name, "leaf");
    }

    #[test]
    fn macro_invocations_at_item_position() {
        let ast = parse_src("thread_local! {\n    static T: u8 = 0;\n}\nmacro_rules! m { () => {}; }\nfn tail() {}\n");
        assert!(ast.diags.is_empty(), "{:?}", ast.diags);
        let kinds: Vec<ItemKind> = ast.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![ItemKind::MacroCall, ItemKind::MacroDef, ItemKind::Fn]
        );
    }

    #[test]
    fn byte_spans_reproduce_source() {
        let src = "fn a() { let s = \"x\"; }\n\npub fn b(v: u8) -> u8 { v }\n";
        let lexed = lex(src);
        let ast = parse(&lexed.toks);
        let (lo, hi) = ast.items[0].byte_span(&lexed.toks);
        assert_eq!(&src[lo..hi], "fn a() { let s = \"x\"; }");
        let (lo, hi) = ast.items[1].byte_span(&lexed.toks);
        assert_eq!(&src[lo..hi], "pub fn b(v: u8) -> u8 { v }");
    }
}
