//! Workspace symbol table and approximate call graph.
//!
//! Flattens the per-file item trees into a table of fn definitions
//! (keyed by name, with impl owner where applicable) plus the struct
//! names defined per file, then scans every fn body for call sites and
//! resolves them by callee name. Resolution is deliberately approximate
//! — no type inference, no import tracking — but biased to be useful on
//! this workspace's idiom:
//!
//! * `Owner::name(…)` keeps only candidates whose impl owner matches the
//!   path segment before `::` (`Self` maps to the caller's own owner);
//!   when nothing matches the segment is treated as a module path and
//!   free fns win.
//! * `recv.name(…)` method calls keep impl-associated candidates, and
//!   narrow to the caller's own impl when the receiver is literally
//!   `self`.
//! * Bare `name(…)` calls prefer free fns.
//!
//! Unresolvable names (std/vendored callees, tuple-struct constructors)
//! simply get no edges; the dataflow passes treat those as opaque.

use std::collections::BTreeMap;

use crate::lexer::{LexedFile, TokKind};
use crate::tier2::parse::{walk, FileAst, ItemKind};

/// One fn definition anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into the workspace file list.
    pub file: usize,
    /// Fn name.
    pub name: String,
    /// Impl self-type (or trait) name when associated, `None` for free
    /// fns.
    pub owner: Option<String>,
    /// Parameter names in order (`self` included when present).
    pub params: Vec<String>,
    /// Return-type token text (empty for unit).
    pub ret: String,
    /// Token range of the body contents, `None` for bodyless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
    /// Position of the definition.
    pub line: u32,
    /// Position of the definition.
    pub col: u32,
}

/// One struct (or union) definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Index into the workspace file list.
    pub file: usize,
    /// Type name.
    pub name: String,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Every fn definition, in (file, source) order.
    pub fns: Vec<FnDef>,
    /// Name → indices into [`Self::fns`].
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Every struct definition.
    pub structs: Vec<StructDef>,
}

impl Symbols {
    /// Collect fn and struct definitions from parsed files. Items whose
    /// first token is test-masked are skipped entirely — test code never
    /// enters the symbol table.
    pub fn collect(asts: &[FileAst], masks: &[Vec<bool>]) -> Symbols {
        let mut sym = Symbols::default();
        for (file, ast) in asts.iter().enumerate() {
            let mask = &masks[file];
            walk(&ast.items, &mut |item, parent| {
                if mask.get(item.toks.0).copied().unwrap_or(false) {
                    return;
                }
                match item.kind {
                    ItemKind::Fn => {
                        let sig = item.sig.as_ref().expect("fn items carry a signature");
                        let owner = parent
                            .filter(|p| matches!(p.kind, ItemKind::Impl | ItemKind::Trait))
                            .map(|p| p.name.clone());
                        let idx = sym.fns.len();
                        sym.by_name.entry(item.name.clone()).or_default().push(idx);
                        sym.fns.push(FnDef {
                            file,
                            name: item.name.clone(),
                            owner,
                            params: sig.params.clone(),
                            ret: sig.ret.clone(),
                            body: sig.body,
                            line: item.line,
                            col: item.col,
                        });
                    }
                    ItemKind::Struct => sym.structs.push(StructDef {
                        file,
                        name: item.name.clone(),
                    }),
                    _ => {}
                }
            });
        }
        sym
    }

    /// All fn indices whose definition lives in `file`.
    pub fn fns_in_file(&self, file: usize) -> impl Iterator<Item = usize> + '_ {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.file == file)
            .map(|(i, _)| i)
    }
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub callee: String,
    /// Path segment immediately before `::` for qualified calls.
    pub qualifier: Option<String>,
    /// `true` for `recv.name(…)` method syntax.
    pub is_method: bool,
    /// `true` when the method receiver is literally `self`.
    pub self_receiver: bool,
    /// Token index of the callee name.
    pub name_tok: usize,
    /// Half-open token ranges of the top-level arguments.
    pub args: Vec<(usize, usize)>,
    /// Resolved candidate callees (indices into [`Symbols::fns`]).
    pub resolved: Vec<usize>,
}

/// Per-caller call sites: `calls[fn_index]` lists the sites inside that
/// fn's body, in source order.
pub type CallGraph = Vec<Vec<CallSite>>;

/// Rust keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "ref",
    "mut", "box", "await", "where",
];

/// Scan every fn body for call sites and resolve them against `sym`.
pub fn call_graph(sym: &Symbols, lexed: &[LexedFile], masks: &[Vec<bool>]) -> CallGraph {
    let mut graph = Vec::with_capacity(sym.fns.len());
    for def in &sym.fns {
        let mut sites = Vec::new();
        if let Some((lo, hi)) = def.body {
            let toks = &lexed[def.file].toks;
            let mask = &masks[def.file];
            let mut k = lo;
            while k + 1 < hi {
                if mask.get(k).copied().unwrap_or(false) {
                    k += 1;
                    continue;
                }
                let is_call = toks[k].kind == TokKind::Ident
                    && toks[k + 1].is_punct('(')
                    && !NON_CALL_KEYWORDS.contains(&toks[k].text.as_str())
                    && !(k > 0 && toks[k - 1].ident() == Some("fn"));
                if !is_call {
                    k += 1;
                    continue;
                }
                let callee = toks[k].text.clone();
                let is_method = k > 0 && toks[k - 1].is_punct('.');
                let self_receiver = is_method && k >= 2 && toks[k - 2].ident() == Some("self");
                let qualifier = (!is_method
                    && k >= 3
                    && toks[k - 1].is_punct(':')
                    && toks[k - 2].is_punct(':'))
                .then(|| toks[k - 3].ident().map(str::to_string))
                .flatten();
                let close = close_paren(toks, k + 1, hi);
                let args = split_args(toks, k + 2, close);
                let resolved = resolve(sym, &callee, qualifier.as_deref(), is_method, {
                    if self_receiver || qualifier.as_deref() == Some("Self") {
                        def.owner.as_deref()
                    } else {
                        None
                    }
                });
                sites.push(CallSite {
                    callee,
                    qualifier,
                    is_method,
                    self_receiver,
                    name_tok: k,
                    args,
                    resolved,
                });
                // Continue *inside* the argument list — nested calls are
                // sites too.
                k += 2;
            }
        }
        graph.push(sites);
    }
    graph
}

/// Index one past the `)` matching the `(` at `open` (clamped to `hi`).
fn close_paren(toks: &[crate::lexer::Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < hi {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    hi
}

/// Split the token range between a call's parens at top-level commas.
/// Closure parameter lists (`|a, b|`) are skipped so their commas don't
/// split the surrounding argument.
fn split_args(toks: &[crate::lexer::Tok], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = lo;
    let mut k = lo;
    while k < hi {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('|')
            && depth == 0
            && k > lo
            && (toks[k - 1].is_punct(',')
                || toks[k - 1].is_punct('(')
                || toks[k - 1].ident() == Some("move"))
        {
            // Closure param list: jump past the closing `|`.
            let mut j = k + 1;
            while j < hi && !toks[j].is_punct('|') {
                j += 1;
            }
            k = j + 1;
            continue;
        } else if t.is_punct(',') && depth == 0 {
            if start < k {
                out.push((start, k));
            }
            start = k + 1;
        }
        k += 1;
    }
    if start < hi {
        out.push((start, hi));
    }
    out
}

/// Candidate callees for a call site.
fn resolve(
    sym: &Symbols,
    name: &str,
    qualifier: Option<&str>,
    is_method: bool,
    self_owner: Option<&str>,
) -> Vec<usize> {
    let Some(cands) = sym.by_name.get(name) else {
        return Vec::new();
    };
    let with = |pred: &dyn Fn(&FnDef) -> bool| -> Vec<usize> {
        cands
            .iter()
            .copied()
            .filter(|&i| pred(&sym.fns[i]))
            .collect()
    };
    if let Some(owner) = self_owner {
        let own = with(&|f| f.owner.as_deref() == Some(owner));
        if !own.is_empty() {
            return own;
        }
    }
    if let Some(q) = qualifier {
        if q != "Self" {
            let owned = with(&|f| f.owner.as_deref() == Some(q));
            if !owned.is_empty() {
                return owned;
            }
            // Module-path qualifier: free fns.
            let free = with(&|f| f.owner.is_none());
            if !free.is_empty() {
                return free;
            }
        }
        return cands.clone();
    }
    if is_method {
        let assoc = with(&|f| f.owner.is_some());
        if !assoc.is_empty() {
            return assoc;
        }
        return cands.clone();
    }
    let free = with(&|f| f.owner.is_none());
    if !free.is_empty() {
        return free;
    }
    cands.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mask};
    use crate::tier2::parse::parse;

    fn build(srcs: &[&str]) -> (Symbols, Vec<LexedFile>, Vec<Vec<bool>>, CallGraph) {
        let lexed: Vec<LexedFile> = srcs.iter().map(|s| lex(s)).collect();
        let masks: Vec<Vec<bool>> = lexed.iter().map(|l| test_mask(&l.toks)).collect();
        let asts: Vec<_> = lexed.iter().map(|l| parse(&l.toks)).collect();
        let sym = Symbols::collect(&asts, &masks);
        let graph = call_graph(&sym, &lexed, &masks);
        (sym, lexed, masks, graph)
    }

    #[test]
    fn cross_file_resolution_by_owner() {
        let (sym, _, _, graph) = build(&[
            "pub struct J;\nimpl J {\n    pub fn push(&mut self) {}\n}\npub fn push() {}\n",
            "fn caller(j: &mut J) {\n    j.push();\n    push();\n    J::push();\n}\n",
        ]);
        let caller = sym.by_name["caller"][0];
        let sites = &graph[caller];
        assert_eq!(sites.len(), 3);
        // Method call resolves to the impl fn.
        assert_eq!(sites[0].resolved.len(), 1);
        assert!(sym.fns[sites[0].resolved[0]].owner.is_some());
        // Bare call prefers the free fn.
        assert_eq!(sites[1].resolved.len(), 1);
        assert!(sym.fns[sites[1].resolved[0]].owner.is_none());
        // Qualified call resolves to the impl fn.
        assert_eq!(sites[2].resolved.len(), 1);
        assert_eq!(sym.fns[sites[2].resolved[0]].owner.as_deref(), Some("J"));
    }

    #[test]
    fn self_calls_narrow_to_own_impl() {
        let (sym, _, _, graph) = build(&[
            "struct A;\nimpl A {\n    fn go(&self) { self.step(); Self::leap(); }\n    fn step(&self) {}\n    fn leap() {}\n}\nstruct B;\nimpl B {\n    fn step(&self) {}\n    fn leap() {}\n}\n",
        ]);
        let go = sym.by_name["go"][0];
        for site in &graph[go] {
            assert_eq!(site.resolved.len(), 1, "{:?}", site);
            assert_eq!(
                sym.fns[site.resolved[0]].owner.as_deref(),
                Some("A"),
                "{:?}",
                site
            );
        }
    }

    #[test]
    fn closure_commas_do_not_split_args() {
        let (sym, _, _, graph) = build(&[
            "fn f(a: f64, g: impl Fn(f64, f64) -> f64) -> f64 { g(a, a) }\nfn h() -> f64 { f(0.0, |x, y| x + y) }\n",
        ]);
        let h = sym.by_name["h"][0];
        let call_f = graph[h]
            .iter()
            .find(|s| s.callee == "f")
            .expect("call to f");
        assert_eq!(call_f.args.len(), 2, "{:?}", call_f.args);
    }

    #[test]
    fn test_code_stays_out_of_the_table() {
        let (sym, _, _, _) =
            build(&["fn real() {}\n#[cfg(test)]\nmod tests {\n    fn fake() {}\n}\n"]);
        assert!(sym.by_name.contains_key("real"));
        assert!(!sym.by_name.contains_key("fake"));
    }
}
