//! Pass: `unordered-float-reduction`.
//!
//! Floating-point addition is not associative: summing the same `f64`
//! multiset in two different orders can produce two different results.
//! That is fatal in the analysis kernels and the campaign merge, where
//! the reproducibility contract says byte-identical output at any thread
//! count. This pass flags non-commutative `f64` reductions (`.sum()`,
//! `.product()`, float-seeded `.fold(0.0, …)`) whose receiver chain is
//! rooted in an *unordered* source:
//!
//! * a local bound to a `HashMap`/`HashSet` (iteration order is
//!   arbitrary), or
//! * a local bound to an mpsc channel endpoint (`Receiver`, `channel`,
//!   `sync_channel` — worker completion order is scheduling-dependent),
//!   or
//! * a call to a fn whose return type mentions a hash container.
//!
//! `fold`s whose closure is `max`/`min` are skipped (order-insensitive
//! on the totally-ordered values these kernels feed them), as are
//! integer reductions — integer `+` is associative, so an unordered
//! *sum* of counts is still deterministic; only the float fold cares
//! about order. Scope: files under `float_fold_paths` (the analysis
//! kernels and the campaign orchestrator).

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use crate::tier2::{in_paths, locals_in, mentions_channel, mentions_hash, Tier2};

/// Run the pass.
pub fn run(t2: &Tier2, cfg: &Config, out: &mut Vec<Finding>) {
    for def in t2.sym.fns.iter() {
        let file = &t2.files[def.file];
        if !in_paths(&file.rel_path, &cfg.float_fold_paths) || t2.exempt(def.file, cfg) {
            continue;
        }
        let Some((lo, hi)) = def.body else { continue };
        let toks = &t2.lexed[def.file].toks;
        let mask = &t2.masks[def.file];
        let locals = locals_in(toks, lo, hi);
        let unordered = |name: &str| -> Option<&'static str> {
            let l = locals.iter().find(|l| l.name == name)?;
            let ranges = l.ty.iter().chain(l.rhs.iter());
            for &r in ranges {
                if mentions_hash(toks, r) {
                    return Some("a hash container (arbitrary iteration order)");
                }
                if mentions_channel(toks, r) {
                    return Some("a channel endpoint (scheduling-dependent order)");
                }
            }
            None
        };
        for k in lo..hi {
            if mask[k] {
                continue;
            }
            let Some(method) = toks[k].ident() else {
                continue;
            };
            if !(k >= 1 && toks[k - 1].is_punct('.')) {
                continue;
            }
            let is_float = match method {
                "sum" | "product" => has_f64_turbofish(toks, k, hi),
                "fold" => fold_is_float_accum(toks, k, hi),
                _ => continue,
            };
            if !is_float {
                continue;
            }
            let Some(head) = chain_head(toks, k - 1, lo) else {
                continue;
            };
            let why = unordered(&head).or_else(|| {
                // A call head returning a hash container.
                t2.sym.by_name.get(&head).and_then(|cands| {
                    cands
                        .iter()
                        .any(|&ri| {
                            let ret = &t2.sym.fns[ri].ret;
                            ret.contains("HashMap") || ret.contains("HashSet")
                        })
                        .then_some("a call returning a hash container")
                })
            });
            let Some(why) = why else { continue };
            let tok = &toks[k];
            out.push(Finding {
                rule: "unordered-float-reduction",
                id: crate::rules::rule_id("unordered-float-reduction"),
                file: file.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`.{method}` reduces f64 values fed from `{head}`, {why} — float addition is not associative, so the result depends on visit order; collect into an ordered container (or sort) before reducing"
                ),
                snippet: t2.lexed[def.file]
                    .lines
                    .get(tok.line as usize - 1)
                    .cloned()
                    .unwrap_or_default(),
            });
        }
    }
}

/// `.sum::<f64>(` — only explicitly-f64 reductions are flagged; integer
/// sums are associative.
fn has_f64_turbofish(toks: &[Tok], k: usize, hi: usize) -> bool {
    toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 3).is_some_and(|t| t.is_punct('<'))
        && (k + 4 < hi)
        && toks[k + 4].ident() == Some("f64")
}

/// `.fold(0.0, |…| …)` with a float-literal seed and a closure that is
/// not a pure `max`/`min` selection.
fn fold_is_float_accum(toks: &[Tok], k: usize, hi: usize) -> bool {
    if !toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let seed_is_float = toks
        .get(k + 2)
        .is_some_and(|t| t.kind == TokKind::Num && t.text.contains('.'));
    if !seed_is_float {
        return false;
    }
    // Scan the rest of the call for max/min — those folds commute.
    let mut depth = 0i32;
    for t in &toks[k + 1..hi] {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if matches!(t.ident(), Some("max" | "min")) {
            return false;
        }
    }
    true
}

/// Walk a method chain backwards from the `.` at `dot` to the leftmost
/// identifier that roots it: `map.values().map(|x| x.v).sum…` → `map`.
fn chain_head(toks: &[Tok], dot: usize, lo: usize) -> Option<String> {
    let mut head = None;
    let mut k = dot;
    loop {
        if k == lo {
            break;
        }
        k -= 1;
        let t = &toks[k];
        if t.is_punct(')') || t.is_punct(']') {
            // Skip the balanced group.
            let close = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0i32;
            loop {
                if toks[k].is_punct(close.1) {
                    depth += 1;
                } else if toks[k].is_punct(close.0) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == lo {
                    return head;
                }
                k -= 1;
            }
            continue;
        }
        if t.kind == TokKind::Ident {
            if matches!(t.ident(), Some("return" | "in" | "let" | "else" | "match")) {
                break;
            }
            head = Some(t.text.clone());
            continue;
        }
        if t.is_punct('.')
            || t.is_punct(':')
            || t.is_punct('<')
            || t.is_punct('>')
            || t.is_punct('&')
        {
            continue;
        }
        break;
    }
    head
}
