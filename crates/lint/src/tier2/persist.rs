//! Pass: `persistence-ordering`.
//!
//! Tier 1's `atomic-persistence` rule flags `fs::write` and
//! `File::create` with *no* rename at all on persistence paths. This
//! pass takes the complementary, path-sensitive half: when a created
//! file *is* later renamed into place, the bytes must be fsynced before
//! the rename — `create → write… → sync_all/sync_data → rename` — or a
//! crash after the rename can publish a destination whose contents never
//! reached the disk. The fsync may be transitive: a call between the
//! create and the rename to a fn that (transitively) fsyncs counts,
//! computed as a call-graph fixpoint.
//!
//! Scope: fns defined in files under `persist_paths`. The create and the
//! rename are matched within one fn body (the `write_atomic` idiom this
//! workspace standardizes on); cross-fn create/rename splits are out of
//! scope by design and land in tier 1.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Finding;
use crate::tier2::{in_paths, sites_in, Tier2};

/// Run the pass.
pub fn run(t2: &Tier2, cfg: &Config, out: &mut Vec<Finding>) {
    // Which fns fsync, directly or through a callee (fixpoint).
    let mut syncs = vec![false; t2.sym.fns.len()];
    for (i, def) in t2.sym.fns.iter().enumerate() {
        if let Some((lo, hi)) = def.body {
            let toks = &t2.lexed[def.file].toks;
            let mask = &t2.masks[def.file];
            syncs[i] = (lo..hi).any(|k| !mask[k] && is_sync_call(toks, k));
        }
    }
    loop {
        let mut changed = false;
        for i in 0..t2.sym.fns.len() {
            if syncs[i] {
                continue;
            }
            if t2.graph[i]
                .iter()
                .any(|s| s.resolved.iter().any(|&r| syncs[r]))
            {
                syncs[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (fidx, def) in t2.sym.fns.iter().enumerate() {
        let file = &t2.files[def.file];
        if !in_paths(&file.rel_path, &cfg.persist_paths) || t2.exempt(def.file, cfg) {
            continue;
        }
        let Some((lo, hi)) = def.body else { continue };
        let toks = &t2.lexed[def.file].toks;
        let mask = &t2.masks[def.file];
        for k in lo..hi {
            if mask[k] || !is_file_create(toks, k) {
                continue;
            }
            // The rename that publishes this create, if any. No rename
            // at all is tier 1's finding, not ours.
            let Some(rk) = (k + 1..hi).find(|&j| {
                !mask[j]
                    && toks[j].ident() == Some("rename")
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            }) else {
                continue;
            };
            let span = (k, rk);
            let direct = (span.0..span.1).any(|j| !mask[j] && is_sync_call(toks, j));
            let via_call =
                sites_in(&t2.graph[fidx], span).any(|s| s.resolved.iter().any(|&r| syncs[r]));
            if direct || via_call {
                continue;
            }
            let rt = &toks[rk];
            out.push(Finding {
                rule: "persistence-ordering",
                id: crate::rules::rule_id("persistence-ordering"),
                file: file.rel_path.clone(),
                line: rt.line,
                col: rt.col,
                message: format!(
                    "`rename` publishes the file created at line {} with no fsync in between — a crash after the rename can expose contents that never reached disk; call `sync_all()` before renaming (see `checkpoint::write_atomic`)",
                    toks[k].line
                ),
                snippet: t2.lexed[def.file]
                    .lines
                    .get(rt.line as usize - 1)
                    .cloned()
                    .unwrap_or_default(),
            });
        }
    }
}

/// `File::create(` at token `k`?
fn is_file_create(toks: &[Tok], k: usize) -> bool {
    toks[k].ident() == Some("create")
        && k >= 3
        && toks[k - 1].is_punct(':')
        && toks[k - 2].is_punct(':')
        && toks[k - 3].ident() == Some("File")
        && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
}

/// `.sync_all(` / `.sync_data(` at token `k`?
fn is_sync_call(toks: &[Tok], k: usize) -> bool {
    matches!(toks[k].ident(), Some("sync_all" | "sync_data"))
        && k >= 1
        && toks[k - 1].is_punct('.')
        && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
}
