//! Pass: `determinism-taint`.
//!
//! Tracks nondeterministic values — wall-clock observations
//! (`Instant::now`, `SystemTime::now`, `.elapsed()`), OS entropy
//! (`thread_rng`, `from_entropy`, `rand::random`), host-core counts
//! (`available_parallelism`, `num_cpus`), pointer-to-int casts, and
//! hash-container iteration order — through local bindings and across
//! calls into the *reproducibility sinks*: fns defined on the
//! `taint_sink_paths` (record constructors, checkpoint/WCD1 frame
//! encoders), the named `taint_sink_fns` (report printers), and struct
//! literals of record types defined on those paths. Any tainted
//! source→sink path is a finding, with the full call chain in the
//! message.
//!
//! Precision choices (kept deliberately, so the shipped tree expresses
//! its real invariants instead of accumulating allows):
//!
//! * Loop induction variables are *not* tainted by numeric bounds — a
//!   worker count sizing `for _ in 0..threads` changes scheduling, not
//!   merged values (the campaign engine's slots-in-plan-order merge is
//!   exactly this pattern). `for` variables *are* tainted when the
//!   iterated expression is hash-container iteration, where the order
//!   itself is the nondeterminism.
//! * `eprintln!`/stderr is not a sink: progress logging may tell the
//!   operator how long a run took; reports and datasets may not.
//!
//! The analysis is a per-fn summary fixpoint: each fn gets
//! `{returns-tainted, param→return, param→sink}` bits with provenance
//! chains, recomputed until stable, so taint crosses any number of
//! intermediate calls in either direction.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use crate::tier2::symbols::CallSite;
use crate::tier2::{
    in_paths, is_value_use, locals_in, mentions_hash, return_ranges, sites_in, Local, Tier2,
};

/// Integer types a pointer cast to which counts as address observation.
const INT_TYPES: [&str; 6] = ["usize", "u64", "u32", "isize", "i64", "u128"];

/// Iteration methods whose order a hash container does not define.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Per-fn dataflow summary.
#[derive(Clone, Default)]
struct Summary {
    /// The fn returns an intrinsically tainted value (chain text).
    ret_source: Option<String>,
    /// `param_to_ret[i]`: a tainted argument in position `i` taints the
    /// return value.
    param_to_ret: Vec<bool>,
    /// `param_to_sink[i]`: a tainted argument in position `i` reaches a
    /// sink inside (chain text describing the rest of the path).
    param_to_sink: Vec<Option<String>>,
}

impl Summary {
    fn shape(&self) -> (bool, Vec<bool>, Vec<bool>) {
        (
            self.ret_source.is_some(),
            self.param_to_ret.clone(),
            self.param_to_sink.iter().map(Option::is_some).collect(),
        )
    }
}

/// A source→sink hit found inside one fn.
struct Candidate {
    file: usize,
    line: u32,
    col: u32,
    chain: String,
}

/// Run the pass.
pub fn run(t2: &Tier2, cfg: &Config, out: &mut Vec<Finding>) {
    // Which fns are sinks, and which struct names are record types.
    let is_sink: Vec<bool> = t2
        .sym
        .fns
        .iter()
        .map(|f| {
            in_paths(&t2.files[f.file].rel_path, &cfg.taint_sink_paths)
                || cfg.taint_sink_fns.iter().any(|n| n == &f.name)
        })
        .collect();
    let record_structs: BTreeSet<&str> = t2
        .sym
        .structs
        .iter()
        .filter(|s| in_paths(&t2.files[s.file].rel_path, &cfg.taint_sink_paths))
        .map(|s| s.name.as_str())
        .collect();

    let mut summaries: Vec<Summary> = t2
        .sym
        .fns
        .iter()
        .map(|f| Summary {
            ret_source: None,
            param_to_ret: vec![false; f.params.len()],
            param_to_sink: vec![None; f.params.len()],
        })
        .collect();

    let mut candidates: Vec<Candidate> = Vec::new();
    for _round in 0..6 {
        let mut changed = false;
        candidates.clear();
        for fidx in 0..t2.sym.fns.len() {
            let (s, mut cands) = analyze_fn(t2, fidx, &summaries, &is_sink, &record_structs);
            if s.shape() != summaries[fidx].shape() {
                changed = true;
            }
            summaries[fidx] = s;
            candidates.append(&mut cands);
        }
        if !changed {
            break;
        }
    }

    // Emit, deduplicated by site, skipping exempt crates.
    let mut seen = BTreeSet::new();
    candidates.sort_by_key(|c| (c.file, c.line, c.col));
    for c in candidates {
        if t2.exempt(c.file, cfg) || !seen.insert((c.file, c.line, c.col)) {
            continue;
        }
        let file = &t2.files[c.file];
        let lexed = &t2.lexed[c.file];
        out.push(Finding {
            rule: "determinism-taint",
            id: crate::rules::rule_id("determinism-taint"),
            file: file.rel_path.clone(),
            line: c.line,
            col: c.col,
            message: format!(
                "nondeterministic value reaches a reproducibility sink: {}",
                c.chain
            ),
            snippet: lexed
                .lines
                .get(c.line as usize - 1)
                .cloned()
                .unwrap_or_default(),
        });
    }
}

/// Analyze one fn body against the current summaries.
fn analyze_fn(
    t2: &Tier2,
    fidx: usize,
    summaries: &[Summary],
    is_sink: &[bool],
    record_structs: &BTreeSet<&str>,
) -> (Summary, Vec<Candidate>) {
    let def = &t2.sym.fns[fidx];
    let mut summary = Summary {
        ret_source: None,
        param_to_ret: vec![false; def.params.len()],
        param_to_sink: vec![None; def.params.len()],
    };
    let Some(body) = def.body else {
        return (summary, Vec::new());
    };
    let b = BodyCtx {
        t2,
        fidx,
        toks: &t2.lexed[def.file].toks,
        mask: &t2.masks[def.file],
        rel_path: &t2.files[def.file].rel_path,
        locals: locals_in(&t2.lexed[def.file].toks, body.0, body.1),
        summaries,
        is_sink,
        record_structs,
    };

    // Main run: intrinsic sources on, no params tainted.
    let env = b.solve_locals(BTreeMap::new(), true);
    summary.ret_source = return_ranges(b.toks, body.0, body.1)
        .into_iter()
        .find_map(|r| b.eval(r, &env, true, 0));
    let mut cands = Vec::new();
    for (line, col, chain) in b.sink_hits(body, &env, true) {
        cands.push(Candidate {
            file: def.file,
            line,
            col,
            chain,
        });
    }

    // Per-parameter runs: sources off, one param tainted at a time.
    for (p, pname) in def.params.iter().enumerate() {
        if pname == "self" || pname == "_" {
            continue;
        }
        let mut env0 = BTreeMap::new();
        env0.insert(pname.clone(), format!("parameter `{pname}`"));
        let env = b.solve_locals(env0, false);
        summary.param_to_ret[p] = return_ranges(b.toks, body.0, body.1)
            .into_iter()
            .any(|r| b.eval(r, &env, false, 0).is_some());
        summary.param_to_sink[p] =
            b.sink_hits(body, &env, false)
                .into_iter()
                .next()
                .map(|(line, _, chain)| {
                    let name = qual_name(t2, fidx);
                    format!("{chain} (inside {name}, {}:{line})", b.rel_path)
                });
    }
    (summary, cands)
}

/// The `Owner::name` display form of a fn.
fn qual_name(t2: &Tier2, fidx: usize) -> String {
    let f = &t2.sym.fns[fidx];
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

struct BodyCtx<'a> {
    t2: &'a Tier2<'a>,
    fidx: usize,
    toks: &'a [Tok],
    mask: &'a [bool],
    rel_path: &'a str,
    locals: Vec<Local>,
    summaries: &'a [Summary],
    is_sink: &'a [bool],
    record_structs: &'a BTreeSet<&'a str>,
}

impl<'a> BodyCtx<'a> {
    /// Iterate local-binding taint to a (small) fixpoint.
    fn solve_locals(
        &self,
        mut env: BTreeMap<String, String>,
        with_sources: bool,
    ) -> BTreeMap<String, String> {
        for _ in 0..3 {
            let mut changed = false;
            for l in &self.locals {
                if env.contains_key(&l.name) && !l.for_loop {
                    // Already tainted (params stay tainted; locals are
                    // monotone).
                    continue;
                }
                let taint = if l.for_loop {
                    // Loop vars taint only through iteration-order
                    // sources, never numeric bounds.
                    with_sources
                        .then(|| l.rhs.iter().find_map(|&r| self.hash_iter_taint(r, &env)))
                        .flatten()
                } else {
                    l.rhs
                        .iter()
                        .find_map(|&r| self.eval(r, &env, with_sources, 0))
                };
                if let Some(chain) = taint {
                    if env.insert(l.name.clone(), chain).is_none() {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        env
    }

    /// Is this range hash-container iteration (order taint)?
    fn hash_iter_taint(
        &self,
        range: (usize, usize),
        env: &BTreeMap<String, String>,
    ) -> Option<String> {
        for k in range.0..range.1 {
            if self.mask[k] {
                continue;
            }
            if let Some(id) = self.toks[k].ident() {
                if self.is_hash_local(id) {
                    return Some(format!(
                        "iteration order of hash container `{id}` ({}:{})",
                        self.rel_path, self.toks[k].line
                    ));
                }
            }
        }
        // A call returning a hash container that is then iterated.
        for site in sites_in(&self.t2.graph[self.fidx], range) {
            for &ri in &site.resolved {
                let ret = &self.t2.sym.fns[ri].ret;
                if ret.contains("HashMap") || ret.contains("HashSet") {
                    return Some(format!(
                        "iteration order of hash container returned by {} ({}:{})",
                        site.callee, self.rel_path, self.toks[site.name_tok].line
                    ));
                }
            }
        }
        let _ = env;
        None
    }

    /// Is `name` a local with a hash-container type or initializer?
    fn is_hash_local(&self, name: &str) -> bool {
        self.locals.iter().any(|l| {
            l.name == name
                && (l.ty.is_some_and(|r| mentions_hash(self.toks, r))
                    || l.rhs.iter().any(|&r| mentions_hash(self.toks, r)))
        })
    }

    /// Evaluate the taint of an expression token range. Returns the
    /// provenance chain of the first taint found.
    fn eval(
        &self,
        range: (usize, usize),
        env: &BTreeMap<String, String>,
        with_sources: bool,
        depth: usize,
    ) -> Option<String> {
        if depth > 6 {
            return None;
        }
        if with_sources {
            if let Some(chain) = self.direct_source(range) {
                return Some(chain);
            }
        }
        // Tainted locals / params used as values.
        for k in range.0..range.1 {
            if self.mask[k] || self.toks[k].kind != TokKind::Ident {
                continue;
            }
            if let Some(chain) = env.get(&self.toks[k].text) {
                if is_value_use(self.toks, k) {
                    return Some(chain.clone());
                }
            }
        }
        // Calls returning taint (intrinsically, or from a tainted arg).
        for site in sites_in(&self.t2.graph[self.fidx], range) {
            if self.mask[site.name_tok] {
                continue;
            }
            let line = self.toks[site.name_tok].line;
            for &ri in &site.resolved {
                let callee = &self.t2.sym.fns[ri];
                if let Some(src) = &self.summaries[ri].ret_source {
                    if with_sources {
                        return Some(format!(
                            "{src} -> returned by {} (called at {}:{line})",
                            qual_name(self.t2, ri),
                            self.rel_path
                        ));
                    }
                }
                for (ai, &arg) in site.args.iter().enumerate() {
                    let pi = ai + arg_offset(site, &callee.params);
                    if !self.summaries[ri]
                        .param_to_ret
                        .get(pi)
                        .copied()
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    if let Some(chain) = self.eval(arg, env, with_sources, depth + 1) {
                        return Some(format!(
                            "{chain} -> through {} (called at {}:{line})",
                            qual_name(self.t2, ri),
                            self.rel_path
                        ));
                    }
                }
            }
        }
        None
    }

    /// Token patterns that *produce* a nondeterministic value.
    fn direct_source(&self, range: (usize, usize)) -> Option<String> {
        let t = self.toks;
        let mut saw_as_ptr = false;
        for k in range.0..range.1 {
            if self.mask[k] {
                continue;
            }
            let at = |txt: &str| t[k].ident() == Some(txt);
            let pred = || {
                (k >= 3 && t[k - 1].is_punct(':') && t[k - 2].is_punct(':'))
                    .then(|| t[k - 3].ident())
                    .flatten()
            };
            let called = t.get(k + 1).is_some_and(|x| x.is_punct('('));
            let src = |what: &str| Some(format!("{what} ({}:{})", self.rel_path, t[k].line));
            if at("now") && called && matches!(pred(), Some("Instant" | "SystemTime")) {
                return src(&format!(
                    "`{}::now()`",
                    pred().expect("pattern matched above")
                ));
            }
            if at("elapsed") && called && k >= 1 && t[k - 1].is_punct('.') {
                return src("`.elapsed()` wall-clock observation");
            }
            if at("available_parallelism") {
                return src("`std::thread::available_parallelism()` host-core read");
            }
            if at("num_cpus") {
                return src("`num_cpus` host-core read");
            }
            if (at("thread_rng") || at("from_entropy")) && called {
                return src(&format!("`{}()` OS entropy", t[k].text));
            }
            if at("random") && called && pred() == Some("rand") {
                return src("`rand::random()` OS entropy");
            }
            if (at("as_ptr") || at("as_mut_ptr")) && called {
                saw_as_ptr = true;
            }
            if saw_as_ptr
                && at("as")
                && t.get(k + 1)
                    .and_then(|x| x.ident())
                    .is_some_and(|id| INT_TYPES.contains(&id))
            {
                return src("pointer-to-int cast (address observation)");
            }
            // Iterating a hash-typed local.
            if t[k].kind == TokKind::Ident
                && self.is_hash_local(&t[k].text)
                && t.get(k + 1).is_some_and(|x| x.is_punct('.'))
                && t.get(k + 2)
                    .and_then(|x| x.ident())
                    .is_some_and(|m| ITER_METHODS.contains(&m))
                && t.get(k + 3).is_some_and(|x| x.is_punct('('))
            {
                return src(&format!(
                    "iteration order of hash container `{}`",
                    t[k].text
                ));
            }
        }
        None
    }

    /// Every place a tainted value meets a sink inside `body`:
    /// `(line, col, chain)` triples.
    fn sink_hits(
        &self,
        body: (usize, usize),
        env: &BTreeMap<String, String>,
        with_sources: bool,
    ) -> Vec<(u32, u32, String)> {
        let mut out = Vec::new();
        // Calls whose (transitively) sinking parameter gets a tainted arg.
        for site in sites_in(&self.t2.graph[self.fidx], body) {
            if self.mask[site.name_tok] {
                continue;
            }
            let tok = &self.toks[site.name_tok];
            for &ri in &site.resolved {
                let callee = &self.t2.sym.fns[ri];
                for (ai, &arg) in site.args.iter().enumerate() {
                    let Some(chain) = self.eval(arg, env, with_sources, 0) else {
                        continue;
                    };
                    if self.is_sink[ri] {
                        out.push((
                            tok.line,
                            tok.col,
                            format!(
                                "{chain} -> passed to sink {} (defined at {}:{})",
                                qual_name(self.t2, ri),
                                self.t2.files[callee.file].rel_path,
                                callee.line
                            ),
                        ));
                        continue;
                    }
                    let pi = ai + arg_offset(site, &callee.params);
                    if let Some(rest) = self.summaries[ri]
                        .param_to_sink
                        .get(pi)
                        .and_then(|o| o.as_ref())
                    {
                        out.push((
                            tok.line,
                            tok.col,
                            format!("{chain} -> into {} -> {rest}", qual_name(self.t2, ri)),
                        ));
                    }
                }
            }
        }
        // Record-struct literals with tainted field values.
        let mut k = body.0;
        while k + 1 < body.1 {
            if !self.mask[k]
                && self.toks[k].kind == TokKind::Ident
                && self.record_structs.contains(self.toks[k].text.as_str())
                && self.toks[k + 1].is_punct('{')
                && !(k >= 1
                    && matches!(self.toks[k - 1].ident(), Some("struct" | "enum" | "union")))
            {
                let mut depth = 0i32;
                let mut j = k + 1;
                while j < body.1 {
                    if self.toks[j].is_punct('{') {
                        depth += 1;
                    } else if self.toks[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                if let Some(chain) = self.eval((k + 2, j), env, with_sources, 0) {
                    out.push((
                        self.toks[k].line,
                        self.toks[k].col,
                        format!(
                            "{chain} -> stored in record `{}` literal",
                            self.toks[k].text
                        ),
                    ));
                }
                k = j;
                continue;
            }
            k += 1;
        }
        out
    }
}

/// Argument-position → parameter-position offset: method-call syntax
/// skips the `self` receiver.
fn arg_offset(site: &CallSite, params: &[String]) -> usize {
    usize::from(site.is_method && params.first().is_some_and(|p| p == "self"))
}
