//! Tier 2: cross-file dataflow passes.
//!
//! Tier 1 (`rules.rs`) is token-pattern matching inside one file. Tier 2
//! parses every file into item ASTs ([`parse`]), builds a workspace
//! symbol table and approximate call graph ([`symbols`]), and runs four
//! dataflow passes on top:
//!
//! * [`taint`] — `determinism-taint`: nondeterministic values
//!   (wall-clock reads, hash-iteration order, host-core counts,
//!   pointer addresses) tracked interprocedurally into dataset/
//!   checkpoint/report sinks.
//! * [`streamflow`] — `rng-stream-flow`: RNG stream-label *values*
//!   resolved through locals, `format!` indirection, parameters, and
//!   callee return literals, then held to the `area/rest` scheme,
//!   workspace uniqueness, and namespace confinement.
//! * [`persist`] — `persistence-ordering`: on persistence paths, a
//!   created file must be fsynced (directly or via a callee) before the
//!   rename that publishes it.
//! * [`floatfold`] — `unordered-float-reduction`: non-commutative `f64`
//!   folds fed from unordered (hash-container / channel) iteration.
//!
//! Passes emit *raw* findings — `// lint: allow` suppression and the
//! strict-allows audit are applied by the driver in `lib.rs`, uniformly
//! with tier 1.

pub mod floatfold;
pub mod parse;
pub mod persist;
pub mod streamflow;
pub mod symbols;
pub mod taint;

use crate::config::Config;
use crate::lexer::{LexedFile, Tok, TokKind};
use crate::report::Finding;
use crate::rules::LabelRegistry;
use crate::workspace::SourceFile;
use parse::FileAst;
use symbols::{CallGraph, Symbols};

/// Everything the passes share: parsed files, symbols, call graph.
pub struct Tier2<'a> {
    /// Workspace files, parallel to `lexed` / `masks` / `asts`.
    pub files: &'a [SourceFile],
    /// Lexed token streams.
    pub lexed: &'a [LexedFile],
    /// Per-file test masks.
    pub masks: &'a [Vec<bool>],
    /// Per-file item trees.
    pub asts: Vec<FileAst>,
    /// Workspace symbol table.
    pub sym: Symbols,
    /// Call sites per fn in [`Symbols::fns`] order.
    pub graph: CallGraph,
}

impl<'a> Tier2<'a> {
    /// Parse every file and build the symbol table + call graph.
    pub fn build(
        files: &'a [SourceFile],
        lexed: &'a [LexedFile],
        masks: &'a [Vec<bool>],
    ) -> Tier2<'a> {
        let asts: Vec<FileAst> = lexed.iter().map(|l| parse::parse(&l.toks)).collect();
        let sym = Symbols::collect(&asts, masks);
        let graph = symbols::call_graph(&sym, lexed, masks);
        Tier2 {
            files,
            lexed,
            masks,
            asts,
            sym,
            graph,
        }
    }

    /// Run all four passes, appending raw findings.
    pub fn run(&self, cfg: &Config, tier1_labels: &LabelRegistry, out: &mut Vec<Finding>) {
        taint::run(self, cfg, out);
        streamflow::run(self, cfg, tier1_labels, out);
        persist::run(self, cfg, out);
        floatfold::run(self, cfg, out);
    }

    /// Is this fn's file exempt from tier-2 findings?
    pub(crate) fn exempt(&self, file: usize, cfg: &Config) -> bool {
        cfg.tier2_exempt_crates
            .contains(&self.files[file].crate_name)
    }
}

/// True if `rel_path` lives under any of the `/`-separated prefixes.
pub(crate) fn in_paths(rel_path: &str, paths: &[String]) -> bool {
    paths.iter().any(|p| rel_path.starts_with(p.as_str()))
}

/// One local binding inside a fn body: `let` (with optional reassignments
/// folded in) or a `for`-loop pattern variable.
#[derive(Debug, Clone)]
pub struct Local {
    /// Binding name.
    pub name: String,
    /// Type-annotation token range, when written.
    pub ty: Option<(usize, usize)>,
    /// Right-hand-side token ranges: the `let` initializer plus any
    /// later `name = …` / `name op= …` reassignments (for `for` loops,
    /// the iterated expression).
    pub rhs: Vec<(usize, usize)>,
    /// Bound by a `for` pattern (taints only through iteration-order
    /// sources, never through numeric bounds).
    pub for_loop: bool,
}

/// Collect the local bindings of a body token range, in source order.
/// Flow-insensitive: a name rebound twice gets the union of its RHS
/// ranges under one entry.
pub(crate) fn locals_in(toks: &[Tok], lo: usize, hi: usize) -> Vec<Local> {
    fn push(
        out: &mut Vec<Local>,
        name: &str,
        ty: Option<(usize, usize)>,
        rhs: Option<(usize, usize)>,
        fl: bool,
    ) {
        if name == "_" || name.is_empty() {
            return;
        }
        if let Some(existing) = out.iter_mut().find(|l| l.name == name) {
            existing.rhs.extend(rhs);
            return;
        }
        out.push(Local {
            name: name.to_string(),
            ty,
            rhs: rhs.into_iter().collect(),
            for_loop: fl,
        });
    }
    let mut out: Vec<Local> = Vec::new();
    let mut k = lo;
    while k < hi {
        match toks[k].ident() {
            Some("let") => {
                // Pattern idents up to `:` / `=` / `;` at pattern depth 0.
                let mut names = Vec::new();
                let mut j = k + 1;
                let mut depth = 0i32;
                while j < hi {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && (t.is_punct(':') || t.is_punct('=') || t.is_punct(';'))
                    {
                        break;
                    } else if let Some(id) = t.ident() {
                        if id != "mut" && id != "ref" && id != "box" {
                            names.push(id.to_string());
                        }
                    }
                    j += 1;
                }
                // Optional type annotation.
                let mut ty = None;
                if j < hi && toks[j].is_punct(':') {
                    let ty_start = j + 1;
                    let mut depth = 0i32;
                    j += 1;
                    while j < hi {
                        let t = &toks[j];
                        if t.is_punct('(') || t.is_punct('[') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            depth -= 1;
                        } else if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
                            break;
                        }
                        j += 1;
                    }
                    ty = Some((ty_start, j));
                }
                // Initializer: up to `;` at depth 0, or a `{` at depth 0
                // (an `if let` / `while let` block opener).
                let mut rhs = None;
                if j < hi
                    && toks[j].is_punct('=')
                    && !toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                {
                    let rhs_start = j + 1;
                    let mut depth = 0i32;
                    j += 1;
                    while j < hi {
                        let t = &toks[j];
                        if t.is_punct('(') || t.is_punct('[') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            depth -= 1;
                        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
                            break;
                        }
                        j += 1;
                    }
                    if rhs_start < j {
                        rhs = Some((rhs_start, j));
                    }
                }
                for n in names {
                    push(&mut out, &n, ty, rhs, false);
                }
                k = j.max(k + 1);
            }
            Some("for") => {
                // `for PAT in EXPR {` — bind pattern idents to EXPR.
                let mut names = Vec::new();
                let mut j = k + 1;
                while j < hi && toks[j].ident() != Some("in") {
                    if let Some(id) = toks[j].ident() {
                        if id != "mut" && id != "ref" {
                            names.push(id.to_string());
                        }
                    }
                    // A `for` with no `in` before the block is not a loop
                    // (e.g. `impl Trait for T` never appears in bodies,
                    // but stay bounded anyway).
                    if toks[j].is_punct('{') || toks[j].is_punct(';') {
                        names.clear();
                        break;
                    }
                    j += 1;
                }
                if !names.is_empty() && j < hi {
                    let expr_start = j + 1;
                    let mut depth = 0i32;
                    j += 1;
                    while j < hi {
                        let t = &toks[j];
                        if t.is_punct('(') || t.is_punct('[') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            depth -= 1;
                        } else if depth == 0 && t.is_punct('{') {
                            break;
                        }
                        j += 1;
                    }
                    if expr_start < j {
                        for n in names {
                            push(&mut out, &n, None, Some((expr_start, j)), true);
                        }
                    }
                }
                k = j.max(k + 1);
            }
            Some(name)
                if toks.get(k + 1).is_some_and(|t| t.is_punct('='))
                    && !toks.get(k + 2).is_some_and(|t| t.is_punct('='))
                    && (k == lo
                        || toks[k - 1].is_punct(';')
                        || toks[k - 1].is_punct('{')
                        || toks[k - 1].is_punct('}'))
                    && out.iter().any(|l| l.name == name) =>
            {
                // Reassignment of a known local at statement position.
                let rhs_start = k + 2;
                let mut depth = 0i32;
                let mut j = rhs_start;
                while j < hi {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
                        break;
                    }
                    j += 1;
                }
                if rhs_start < j {
                    push(&mut out, name, None, Some((rhs_start, j)), false);
                }
                k = j.max(k + 1);
            }
            _ => k += 1,
        }
    }
    out
}

/// The token ranges whose values a body can return: every
/// `return <expr>;` plus the tail expression (tokens after the last `;`
/// at block depth 0; the whole body when there is none).
pub(crate) fn return_ranges(toks: &[Tok], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut last_semi = None;
    let mut k = lo;
    while k < hi {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            last_semi = Some(k);
        } else if t.ident() == Some("return") {
            // `return expr ;` / `return expr }` at any depth.
            let start = k + 1;
            let mut d = 0i32;
            let mut j = start;
            while j < hi {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                } else if t.is_punct(';') && d == 0 {
                    break;
                }
                j += 1;
            }
            if start < j {
                out.push((start, j));
            }
            k = j;
            continue;
        }
        k += 1;
    }
    let tail_start = last_semi.map_or(lo, |s| s + 1);
    if tail_start < hi {
        out.push((tail_start, hi));
    }
    out
}

/// Do any of this fn's call sites fall inside `range`? Yields them.
pub(crate) fn sites_in(
    sites: &[symbols::CallSite],
    range: (usize, usize),
) -> impl Iterator<Item = &symbols::CallSite> {
    sites
        .iter()
        .filter(move |s| s.name_tok >= range.0 && s.name_tok < range.1)
}

/// True when a type-annotation or initializer range mentions a hash
/// container.
pub(crate) fn mentions_hash(toks: &[Tok], range: (usize, usize)) -> bool {
    toks[range.0..range.1]
        .iter()
        .any(|t| matches!(t.ident(), Some("HashMap" | "HashSet")))
}

/// True when a range mentions an mpsc channel endpoint.
pub(crate) fn mentions_channel(toks: &[Tok], range: (usize, usize)) -> bool {
    toks[range.0..range.1]
        .iter()
        .any(|t| matches!(t.ident(), Some("Receiver" | "channel" | "sync_channel")))
}

/// Is the ident at `k` a *value use* (not a call name, not a path
/// segment, not a field name after `.`, not a struct-field label)?
pub(crate) fn is_value_use(toks: &[Tok], k: usize) -> bool {
    if toks[k].kind != TokKind::Ident {
        return false;
    }
    if toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    if k >= 1 && (toks[k - 1].is_punct('.') || toks[k - 1].is_punct(':')) {
        return false;
    }
    // `name :` is a struct-field label or type ascription, except `name ::`.
    if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
    {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn locals_capture_let_for_and_reassignment() {
        let f = lex(
            "fn f() { let mut x = seed(); x = other(); let y: u64 = 3; for (k, v) in map.iter() { use_it(k, v); } }",
        );
        let loc = locals_in(&f.toks, 0, f.toks.len());
        let x = loc.iter().find(|l| l.name == "x").expect("x bound");
        assert_eq!(x.rhs.len(), 2);
        assert!(!x.for_loop);
        let y = loc.iter().find(|l| l.name == "y").expect("y bound");
        assert!(y.ty.is_some());
        let k = loc.iter().find(|l| l.name == "k").expect("k bound");
        assert!(k.for_loop);
        assert_eq!(k.rhs.len(), 1);
    }

    #[test]
    fn if_let_initializer_stops_at_block() {
        let f = lex("fn f() { if let Some(x) = rx.recv() { go(x); } }");
        let loc = locals_in(&f.toks, 0, f.toks.len());
        let x = loc.iter().find(|l| l.name == "x").expect("x bound");
        let (lo, hi) = x.rhs[0];
        let text: Vec<&str> = f.toks[lo..hi].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(text, vec!["rx", ".", "recv", "(", ")"]);
    }

    #[test]
    fn return_ranges_cover_tail_and_returns() {
        let f = lex("{ if done { return early; } let a = 1; a + b }");
        let ranges = return_ranges(&f.toks, 1, f.toks.len() - 1);
        assert_eq!(ranges.len(), 2);
        let texts: Vec<String> = ranges
            .iter()
            .map(|&(lo, hi)| {
                f.toks[lo..hi]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert_eq!(texts, vec!["early".to_string(), "a + b".to_string()]);
    }

    #[test]
    fn whole_body_is_tail_when_no_semicolons() {
        let f = lex("{ cfg.threads.unwrap_or_else(|| host()).clamp(1, jobs) }");
        let ranges = return_ranges(&f.toks, 1, f.toks.len() - 1);
        assert_eq!(ranges, vec![(1, f.toks.len() - 1)]);
    }
}
