//! Pass: `rng-stream-flow`.
//!
//! Tier 1's `rng-stream-labels` rule checks `split("…")` literals (and
//! `format!` skeletons) textually at the call site. This pass upgrades
//! the check to *value flow*: the label argument is resolved through
//! local bindings, `format!` placeholder substitution, fn parameters
//! (back-propagated from every call site), and callee return literals —
//! so `rng.split(op.label())` is judged by the strings `label()` can
//! actually return, and a label constant built three calls away still
//! has to obey the contract:
//!
//! * **Scheme** — every resolvable value must match `area/rest`
//!   (lowercase area, then `/`).
//! * **Uniqueness** — a fully-resolved constant label must not collide
//!   with any other split site, including tier-1 literal sites.
//! * **Namespace confinement** — `campaign/faults/*` labels belong to
//!   the disruption subsystem; a split on that namespace outside
//!   `disrupt_paths` means fault streams are leaking into simulation
//!   code (the reverse direction of tier-1 rule 7).
//!
//! Sites whose argument is a bare string literal are tier 1's job and
//! are skipped here; sites that resolve to nothing (truly dynamic
//! labels) are skipped too — partial resolution keeps `{}` markers and
//! is still checked where the constant part suffices.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::LabelRegistry;
use crate::tier2::{in_paths, locals_in, return_ranges, Tier2};

/// Resolution caps: recursion depth and value-set size.
const MAX_DEPTH: usize = 4;
const MAX_VALUES: usize = 12;

/// Run the pass.
pub fn run(t2: &Tier2, cfg: &Config, tier1: &LabelRegistry, out: &mut Vec<Finding>) {
    let r = Resolver {
        t2,
        callers: build_callers(t2),
    };
    // Constant labels seen at tier-2 sites, for cross-site uniqueness.
    let mut constants: BTreeMap<String, (usize, u32, u32)> = BTreeMap::new();
    for fidx in 0..t2.sym.fns.len() {
        let def = &t2.sym.fns[fidx];
        let file = &t2.files[def.file];
        if cfg.label_exempt_crates.contains(&file.crate_name) || t2.exempt(def.file, cfg) {
            continue;
        }
        for site in &t2.graph[fidx] {
            if !(site.callee == "split" && site.is_method) || t2.masks[def.file][site.name_tok] {
                continue;
            }
            let Some(&arg) = site.args.first() else {
                continue;
            };
            // A bare literal is tier 1's site.
            let trimmed = r.trim(def.file, arg);
            if trimmed.1 - trimmed.0 == 1 && t2.lexed[def.file].toks[trimmed.0].kind == TokKind::Str
            {
                continue;
            }
            let values = r.resolve(fidx, arg, 0);
            if values.is_empty() {
                continue;
            }
            let tok = &t2.lexed[def.file].toks[site.name_tok];
            let mut emit = |message: String| {
                out.push(Finding {
                    rule: "rng-stream-flow",
                    id: crate::rules::rule_id("rng-stream-flow"),
                    file: file.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message,
                    snippet: t2.lexed[def.file]
                        .lines
                        .get(tok.line as usize - 1)
                        .cloned()
                        .unwrap_or_default(),
                });
            };
            let bad: Vec<&String> = values.iter().filter(|v| violates_scheme(v)).collect();
            if !bad.is_empty() {
                let list = bad
                    .iter()
                    .map(|v| format!("\"{v}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                emit(format!(
                    "RNG stream label resolves (through value flow) to {list} — labels must follow the `area/rest` scheme (lowercase area prefix, then `/`)"
                ));
            }
            if !in_paths(&file.rel_path, &cfg.disrupt_paths) {
                if let Some(v) = values.iter().find(|v| v.starts_with("campaign/faults/")) {
                    emit(format!(
                        "RNG stream label resolves to \"{v}\": the `campaign/faults/` namespace is reserved for the disruption subsystem ({}) — fault streams must not leak into simulation code",
                        cfg.disrupt_paths.join(", ")
                    ));
                }
            }
            for v in values.iter().filter(|v| !v.contains('{')) {
                if let Some(first) = tier1.labels().get(v).and_then(|s| s.first()) {
                    emit(format!(
                        "RNG stream label resolves to \"{v}\", which collides with the literal label at {}:{}:{} — reusing a label risks correlated streams",
                        first.file, first.line, first.col
                    ));
                } else if let Some(&(f, l, c)) = constants.get(v) {
                    if (f, l, c) != (def.file, tok.line, tok.col) {
                        emit(format!(
                            "RNG stream label resolves to \"{v}\", which collides with the resolved label at {}:{l}:{c} — reusing a label risks correlated streams",
                            t2.files[f].rel_path
                        ));
                    }
                } else {
                    constants.insert(v.clone(), (def.file, tok.line, tok.col));
                }
            }
        }
    }
}

/// Does a resolved value (possibly with `{}` placeholders for parts we
/// could not resolve) provably violate the `area/rest` scheme?
fn violates_scheme(v: &str) -> bool {
    match v.split_once('/') {
        None => !v.contains('{'),
        Some((area, rest)) => {
            if area.contains('{') {
                return false;
            }
            area.is_empty()
                || rest.is_empty()
                || !area
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        }
    }
}

/// `callers[callee_fidx]` → every `(caller_fidx, site_index)` resolving
/// to it.
fn build_callers(t2: &Tier2) -> Vec<Vec<(usize, usize)>> {
    let mut callers = vec![Vec::new(); t2.sym.fns.len()];
    for (caller, sites) in t2.graph.iter().enumerate() {
        for (si, site) in sites.iter().enumerate() {
            for &callee in &site.resolved {
                callers[callee].push((caller, si));
            }
        }
    }
    callers
}

struct Resolver<'a> {
    t2: &'a Tier2<'a>,
    callers: Vec<Vec<(usize, usize)>>,
}

impl<'a> Resolver<'a> {
    /// Strip `&`/`mut` prefixes and no-op `.as_str()`/`.to_string()`/
    /// `.clone()` suffixes from an expression range.
    fn trim(&self, file: usize, mut range: (usize, usize)) -> (usize, usize) {
        let toks = &self.t2.lexed[file].toks;
        loop {
            if range.0 < range.1
                && (toks[range.0].is_punct('&') || toks[range.0].ident() == Some("mut"))
            {
                range.0 += 1;
                continue;
            }
            if range.1 - range.0 >= 4
                && toks[range.1 - 1].is_punct(')')
                && toks[range.1 - 2].is_punct('(')
                && matches!(
                    toks[range.1 - 3].ident(),
                    Some("as_str" | "to_string" | "clone" | "as_ref")
                )
                && toks[range.1 - 4].is_punct('.')
            {
                range.1 -= 4;
                continue;
            }
            return range;
        }
    }

    /// The string values an expression range can take. Unresolvable
    /// `format!` arguments keep their `{}` placeholder; a fully
    /// unresolvable expression yields an empty set.
    fn resolve(&self, fidx: usize, range: (usize, usize), depth: usize) -> Vec<String> {
        if depth > MAX_DEPTH {
            return Vec::new();
        }
        let def = &self.t2.sym.fns[fidx];
        let file = def.file;
        let toks = &self.t2.lexed[file].toks;
        let (lo, hi) = self.trim(file, range);
        if lo >= hi {
            return Vec::new();
        }
        // String literal.
        if hi - lo == 1 && toks[lo].kind == TokKind::Str {
            return vec![toks[lo].text.clone()];
        }
        // `format!("skeleton", args…)`.
        if toks[lo].ident() == Some("format")
            && toks.get(lo + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(lo + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(lo + 3).is_some_and(|t| t.kind == TokKind::Str)
        {
            let skeleton = toks[lo + 3].text.clone();
            let args = split_top(toks, lo + 4, hi - 1);
            let mut values = vec![String::new()];
            let mut rest = skeleton.as_str();
            let mut argi = 0usize;
            while let Some(pos) = rest.find("{}") {
                let prefix = &rest[..pos];
                let sub = args
                    .get(argi)
                    .map(|&a| self.resolve(fidx, a, depth + 1))
                    .unwrap_or_default();
                let subs: Vec<String> = if sub.is_empty() {
                    vec!["{}".to_string()]
                } else {
                    sub
                };
                let mut next = Vec::new();
                for v in &values {
                    for s in &subs {
                        if next.len() < MAX_VALUES {
                            next.push(format!("{v}{prefix}{s}"));
                        }
                    }
                }
                values = next;
                rest = &rest[pos + 2..];
                argi += 1;
            }
            for v in &mut values {
                v.push_str(rest);
            }
            return values;
        }
        // A single identifier: local binding or parameter.
        if hi - lo == 1 && toks[lo].kind == TokKind::Ident {
            let name = &toks[lo].text;
            if let Some(body) = def.body {
                let locals = locals_in(toks, body.0, body.1);
                if let Some(l) = locals.iter().find(|l| &l.name == name) {
                    let mut out = Vec::new();
                    for &r in &l.rhs {
                        for v in self.resolve(fidx, r, depth + 1) {
                            if !out.contains(&v) && out.len() < MAX_VALUES {
                                out.push(v);
                            }
                        }
                    }
                    return out;
                }
            }
            if let Some(p) = def.params.iter().position(|p| p == name) {
                return self.resolve_param(fidx, p, depth + 1);
            }
            return Vec::new();
        }
        // A call whose parens close the range: collect the string
        // literals its callees can return.
        for site in &self.t2.graph[fidx] {
            if site.name_tok < lo || site.name_tok >= hi {
                continue;
            }
            // Accept the site if its matching `)` is the final token of
            // the range (`op.label()`, `pick(op)` — a call *is* the
            // whole expression).
            if !toks[hi - 1].is_punct(')') {
                break;
            }
            let mut depth_p = 0i32;
            let mut matches_end = false;
            for (k, t) in toks.iter().enumerate().take(hi).skip(site.name_tok + 1) {
                if t.is_punct('(') {
                    depth_p += 1;
                } else if t.is_punct(')') {
                    depth_p -= 1;
                    if depth_p == 0 {
                        matches_end = k == hi - 1;
                        break;
                    }
                }
            }
            if !matches_end {
                continue;
            }
            let mut out = Vec::new();
            for &ri in &site.resolved {
                let callee = &self.t2.sym.fns[ri];
                let Some(cbody) = callee.body else { continue };
                let ctoks = &self.t2.lexed[callee.file].toks;
                for (rlo, rhi) in return_ranges(ctoks, cbody.0, cbody.1) {
                    for t in &ctoks[rlo..rhi] {
                        if t.kind == TokKind::Str
                            && !out.contains(&t.text)
                            && out.len() < MAX_VALUES
                        {
                            out.push(t.text.clone());
                        }
                    }
                }
            }
            return out;
        }
        Vec::new()
    }

    /// The values a parameter can take, unioned over every call site
    /// that resolves to this fn.
    fn resolve_param(&self, fidx: usize, p: usize, depth: usize) -> Vec<String> {
        if depth > MAX_DEPTH {
            return Vec::new();
        }
        let def = &self.t2.sym.fns[fidx];
        let mut out = Vec::new();
        for &(caller, si) in &self.callers[fidx] {
            let site = &self.t2.graph[caller][si];
            let offset =
                usize::from(site.is_method && def.params.first().is_some_and(|x| x == "self"));
            let Some(&arg) = p.checked_sub(offset).and_then(|ai| site.args.get(ai)) else {
                continue;
            };
            for v in self.resolve(caller, arg, depth + 1) {
                if !out.contains(&v) && out.len() < MAX_VALUES {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Split `[lo, hi)` at top-level commas.
fn split_top(toks: &[crate::lexer::Tok], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = lo;
    for (k, t) in toks.iter().enumerate().take(hi).skip(lo) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            if start < k {
                out.push((start, k));
            }
            start = k + 1;
        }
    }
    if start < hi {
        out.push((start, hi));
    }
    out
}
