//! A minimal, self-contained Rust lexer.
//!
//! The build environment is registry-free, so this crate cannot use `syn`.
//! Instead we lex just enough of Rust to drive token-pattern rules:
//! comments and strings are stripped (string *values* are kept as tokens,
//! since the RNG-label rule needs them), identifiers, numbers, lifetimes
//! and single-character punctuation come out as a flat token stream with
//! 1-based line/column positions.
//!
//! Two side channels ride along with the token stream:
//!
//! - `// lint: allow(rule, reason)` directives found in comments, keyed by
//!   line, so rules can be suppressed with an in-code justification;
//! - whether the file carries an inner doc header (`//!` / `/*!`), which
//!   the crate-hygiene rule checks on crate roots.

use std::collections::BTreeMap;

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (Rust keywords are not distinguished).
    Ident,
    /// String literal; `text` holds the (raw, unescaped) contents.
    Str,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
    /// Character literal.
    Char,
}

/// One lexed token with its source position (1-based line and column; the
/// column counts characters, not bytes) and its byte span in the source.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Category.
    pub kind: TokKind,
    /// Token text (contents only, for string literals).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Byte offset of the token's first byte in the source.
    pub lo: usize,
    /// Byte offset one past the token's last byte.
    pub hi: usize,
}

impl Tok {
    /// The token text if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        (self.kind == TokKind::Ident).then_some(self.text.as_str())
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `// lint: allow(rule, reason)` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name being allowed.
    pub rule: String,
    /// Justification text (must be non-empty for the directive to count).
    pub reason: String,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Allow directives keyed by the line the comment sits on.
    pub allows: BTreeMap<u32, Vec<Allow>>,
    /// True if the file has an inner doc comment (`//!` or `/*!`).
    pub has_inner_doc: bool,
    /// Source lines, for diagnostics snippets.
    pub lines: Vec<String>,
}

/// Lex one source file.
pub fn lex(src: &str) -> LexedFile {
    let cs: Vec<char> = src.chars().collect();
    let mut out = LexedFile {
        lines: src.lines().map(str::to_string).collect(),
        ..LexedFile::default()
    };
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut bpos = 0usize;

    macro_rules! bump {
        () => {{
            if cs[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            bpos += cs[i].len_utf8();
            i += 1;
        }};
    }

    while i < cs.len() {
        let c = cs[i];
        let (tline, tcol) = (line, col);
        let tlo = bpos;

        // Line comment.
        if c == '/' && cs.get(i + 1) == Some(&'/') {
            let start = i;
            while i < cs.len() && cs[i] != '\n' {
                bump!();
            }
            let text: String = cs[start..i].iter().collect();
            scan_comment(&text, tline, &mut out);
            continue;
        }
        // Block comment (nested).
        if c == '/' && cs.get(i + 1) == Some(&'*') {
            let start = i;
            bump!();
            bump!();
            let mut depth = 1usize;
            while i < cs.len() && depth > 0 {
                if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!();
                    bump!();
                } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            let text: String = cs[start..i].iter().collect();
            scan_comment(&text, tline, &mut out);
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Raw strings and raw identifiers: r"..", r#".."#, r#ident.
        if (c == 'r' || c == 'b') && is_raw_or_byte_string(&cs, i) {
            // Optional b prefix, optional r, hashes, then the quote.
            let mut j = i;
            if cs[j] == 'b' {
                j += 1;
            }
            let mut raw = false;
            if j < cs.len() && cs[j] == 'r' {
                raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while raw && j < cs.len() && cs[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if cs.get(j) == Some(&'\'') {
                // Byte char literal b'x'.
                while i <= j {
                    bump!();
                }
                if i < cs.len() && cs[i] == '\\' {
                    bump!();
                    if i < cs.len() {
                        bump!();
                    }
                } else if i < cs.len() {
                    bump!();
                }
                if i < cs.len() && cs[i] == '\'' {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                    lo: tlo,
                    hi: bpos,
                });
                continue;
            }
            // Advance past the prefix and opening quote.
            while i <= j {
                bump!();
            }
            let vstart = i;
            if raw {
                // Read until `"` followed by `hashes` hash marks.
                'raw: while i < cs.len() {
                    if cs[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if cs.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            let text: String = cs[vstart..i].iter().collect();
                            bump!();
                            for _ in 0..hashes {
                                bump!();
                            }
                            out.toks.push(Tok {
                                kind: TokKind::Str,
                                text,
                                line: tline,
                                col: tcol,
                                lo: tlo,
                                hi: bpos,
                            });
                            break 'raw;
                        }
                    }
                    bump!();
                }
            } else {
                let text = read_quoted(&cs, &mut i, &mut line, &mut col, &mut bpos);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: tline,
                    col: tcol,
                    lo: tlo,
                    hi: bpos,
                });
            }
            continue;
        }
        // Raw identifier r#ident.
        if c == 'r'
            && cs.get(i + 1) == Some(&'#')
            && cs.get(i + 2).is_some_and(|c| is_ident_start(*c))
        {
            bump!();
            bump!();
            let start = i;
            while i < cs.len() && is_ident_continue(cs[i]) {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: cs[start..i].iter().collect(),
                line: tline,
                col: tcol,
                lo: tlo,
                hi: bpos,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            bump!();
            let text = read_quoted(&cs, &mut i, &mut line, &mut col, &mut bpos);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: tline,
                col: tcol,
                lo: tlo,
                hi: bpos,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = cs.get(i + 1).copied();
            let after = cs.get(i + 2).copied();
            if next == Some('\\') {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                bump!(); // '
                bump!(); // backslash
                while i < cs.len() && cs[i] != '\'' {
                    bump!();
                }
                if i < cs.len() {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                    lo: tlo,
                    hi: bpos,
                });
            } else if next.is_some_and(is_ident_start) && after != Some('\'') {
                // Lifetime.
                bump!();
                let start = i;
                while i < cs.len() && is_ident_continue(cs[i]) {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: cs[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                    lo: tlo,
                    hi: bpos,
                });
            } else {
                // Plain char literal 'x'.
                bump!();
                if i < cs.len() {
                    bump!();
                }
                if i < cs.len() && cs[i] == '\'' {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                    lo: tlo,
                    hi: bpos,
                });
            }
            continue;
        }
        // Identifier.
        if is_ident_start(c) {
            let start = i;
            while i < cs.len() && is_ident_continue(cs[i]) {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: cs[start..i].iter().collect(),
                line: tline,
                col: tcol,
                lo: tlo,
                hi: bpos,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                bump!();
            }
            // Fractional part — but not the `..` of a range.
            if i < cs.len() && cs[i] == '.' && cs.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                bump!();
                while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                    bump!();
                }
            }
            // Signed exponent: `1e-3`.
            if i < cs.len()
                && (cs[i] == '+' || cs[i] == '-')
                && cs[i - 1].eq_ignore_ascii_case(&'e')
                && cs.get(i + 1).is_some_and(|c| c.is_ascii_digit())
            {
                bump!();
                while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: cs[start..i].iter().collect(),
                line: tline,
                col: tcol,
                lo: tlo,
                hi: bpos,
            });
            continue;
        }
        // Everything else: single punctuation character.
        bump!();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
            lo: tlo,
            hi: bpos,
        });
    }
    out
}

/// Read a double-quoted string body; the cursor starts just after the
/// opening quote and is left just after the closing quote.
fn read_quoted(
    cs: &[char],
    i: &mut usize,
    line: &mut u32,
    col: &mut u32,
    bpos: &mut usize,
) -> String {
    let mut text = String::new();
    macro_rules! bump {
        () => {{
            if cs[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *bpos += cs[*i].len_utf8();
            *i += 1;
        }};
    }
    while *i < cs.len() && cs[*i] != '"' {
        if cs[*i] == '\\' {
            bump!();
            if *i < cs.len() {
                text.push(cs[*i]);
                bump!();
            }
        } else {
            text.push(cs[*i]);
            bump!();
        }
    }
    if *i < cs.len() {
        bump!(); // closing quote
    }
    text
}

/// Detect `r"`, `r#"`, `b"`, `br"`, `br#"`, `b'` starting at `i`.
fn is_raw_or_byte_string(cs: &[char], i: usize) -> bool {
    let mut j = i;
    if cs[j] == 'b' {
        j += 1;
        if cs.get(j) == Some(&'\'') {
            return true;
        }
    }
    if cs.get(j) == Some(&'r') {
        let mut k = j + 1;
        while cs.get(k) == Some(&'#') {
            k += 1;
        }
        return cs.get(k) == Some(&'"');
    }
    cs.get(j) == Some(&'"') && j > i
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Record doc headers and `lint: allow(...)` directives from one comment.
fn scan_comment(text: &str, line: u32, out: &mut LexedFile) {
    if text.starts_with("//!") || text.starts_with("/*!") {
        out.has_inner_doc = true;
    }
    // Strip comment sigils, then look for the directive anywhere in the
    // comment so both standalone and trailing comments work.
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start_matches('!')
        .trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim();
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|e| &r[..e]))
    else {
        return;
    };
    let (rule, reason) = match args.split_once(',') {
        Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
        None => (args.trim().to_string(), String::new()),
    };
    out.allows
        .entry(line)
        .or_default()
        .push(Allow { rule, reason });
}

/// Mark tokens that belong to `#[cfg(test)]`-gated items (attribute,
/// following attributes, and the item body through its matching brace or
/// terminating semicolon). Rules skip masked tokens: test code is exempt.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (end, is_test) = scan_attr(toks, i + 1);
            if is_test {
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                let mut j = end + 1;
                // Further attributes on the same item.
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let (aend, _) = scan_attr(toks, j + 1);
                    for m in mask.iter_mut().take(aend + 1).skip(j) {
                        *m = true;
                    }
                    j = aend + 1;
                }
                // The item itself: through the matching `}` of its first
                // top-level `{`, or through a terminating `;`.
                let mut depth = 0i32;
                while j < toks.len() {
                    mask[j] = true;
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if t.is_punct(';') && depth == 0 {
                        break;
                    } else if t.is_punct('{') {
                        let mut braces = 1i32;
                        j += 1;
                        while j < toks.len() && braces > 0 {
                            mask[j] = true;
                            if toks[j].is_punct('{') {
                                braces += 1;
                            } else if toks[j].is_punct('}') {
                                braces -= 1;
                            }
                            j += 1;
                        }
                        j -= 1;
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scan an attribute starting at its `[` token; return the index of the
/// closing `]` and whether the attribute is a `cfg(...)` containing `test`.
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (j, has_cfg && has_test);
            }
        } else if t.ident() == Some("cfg") {
            has_cfg = true;
        } else if t.ident() == Some("test") {
            has_test = true;
        }
        j += 1;
    }
    (toks.len() - 1, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_stripped() {
        let toks = lex("let x = \"HashMap in a string\"; // HashMap in a comment").toks;
        assert!(toks.iter().all(|t| t.ident() != Some("HashMap")));
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "HashMap in a string");
    }

    #[test]
    fn raw_strings() {
        let toks = lex(r###"let x = r#"a "quoted" label"#;"###).toks;
        let s: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s[0].text, "a \"quoted\" label");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").toks;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bee").toks;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text, "bee");
    }

    #[test]
    fn allow_directives_parsed() {
        let f = lex("x(); // lint: allow(unwrap-in-lib, len() checked above)\n");
        let a = &f.allows[&1][0];
        assert_eq!(a.rule, "unwrap-in-lib");
        assert_eq!(a.reason, "len() checked above");
    }

    #[test]
    fn doc_header_detected() {
        assert!(lex("//! Crate docs.\nfn f() {}").has_inner_doc);
        assert!(!lex("/// Item docs.\nfn f() {}").has_inner_doc);
    }

    #[test]
    fn cfg_test_mod_masked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let f = lex(src);
        let mask = test_mask(&f.toks);
        let unwrap_pos = f
            .toks
            .iter()
            .position(|t| t.ident() == Some("unwrap"))
            .expect("token present");
        assert!(mask[unwrap_pos]);
        let tail = f
            .toks
            .iter()
            .position(|t| t.ident() == Some("tail"))
            .expect("token present");
        assert!(!mask[tail]);
        let lib = f
            .toks
            .iter()
            .position(|t| t.ident() == Some("lib"))
            .expect("token present");
        assert!(!mask[lib]);
    }

    #[test]
    fn non_test_attrs_not_masked() {
        let src = "#[derive(Debug)]\nstruct S { x: u8 }";
        let f = lex(src);
        let mask = test_mask(&f.toks);
        assert!(mask.iter().all(|m| !m));
    }

    #[test]
    fn byte_spans_reconstruct_source() {
        let src = "fn gré() -> &'static str {\n    \"héllo\" // ünïcode comment\n}\n";
        let f = lex(src);
        let mut prev_hi = 0usize;
        for t in &f.toks {
            assert!(
                t.lo >= prev_hi,
                "token spans overlap at {}:{}",
                t.line,
                t.col
            );
            assert!(t.hi <= src.len());
            let text = &src[t.lo..t.hi];
            match t.kind {
                TokKind::Ident | TokKind::Num => assert_eq!(text, t.text),
                TokKind::Str => assert!(text.starts_with('"') && text.ends_with('"')),
                TokKind::Lifetime => assert_eq!(text, format!("'{}", t.text)),
                _ => {}
            }
            prev_hi = t.hi;
        }
    }

    #[test]
    fn numbers_and_ranges() {
        let v = idents("for i in 0..10 { let x = 1.5e-3; }");
        assert_eq!(v, vec!["for", "i", "in", "let", "x"]);
        let toks = lex("1.5e-3 0..10").toks;
        assert_eq!(toks[0].text, "1.5e-3");
        assert_eq!(toks[1].text, "0");
    }
}
