//! The rule catalogue.
//!
//! Every rule is a token-pattern pass over one lexed file, except the RNG
//! stream-label rule, which also aggregates a workspace-wide registry so
//! it can enforce label uniqueness across crates. Each rule can be
//! silenced at a site with `// lint: allow(rule-name, reason)` on the
//! offending line or the line above — the reason is mandatory.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::lexer::{LexedFile, Tok, TokKind};
use crate::report::Finding;
use crate::workspace::SourceFile;

/// Catalogue metadata for one rule: the kebab-case name used in
/// diagnostics and `// lint: allow(…)` directives, the snake_case id
/// shared by `--json` output and SARIF `ruleId` (both pinned by golden
/// tests), and a one-line description.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Kebab-case rule name (allow directives, text output).
    pub name: &'static str,
    /// Stable snake_case id (JSON `id` field, SARIF `ruleId`).
    pub id: &'static str,
    /// One-line description (SARIF rule metadata).
    pub about: &'static str,
}

/// The rule catalogue, in order: tier-1 token rules (0–10), tier-2
/// dataflow passes (11–14), and the strict-allows audit (15).
pub const RULES: [RuleMeta; 16] = [
    RuleMeta {
        name: "nondeterminism",
        id: "nondeterminism",
        about: "wall-clock, OS-entropy, and environment reads are forbidden in simulator crates",
    },
    RuleMeta {
        name: "hash-iteration",
        id: "hash_iteration",
        about: "HashMap/HashSet iteration order can leak into datasets produced by these crates",
    },
    RuleMeta {
        name: "rng-stream-labels",
        id: "rng_stream_labels",
        about: "split() label literals must follow area/rest and be unique workspace-wide",
    },
    RuleMeta {
        name: "unwrap-in-lib",
        id: "unwrap_in_lib",
        about: "bare unwrap()/panic! in library code must become expect()/errors or be justified",
    },
    RuleMeta {
        name: "lossy-cast",
        id: "lossy_cast",
        about: "as-casts to integer types on record/analysis paths truncate silently",
    },
    RuleMeta {
        name: "crate-hygiene",
        id: "crate_hygiene",
        about: "crate roots carry #![forbid(unsafe_code)] and a //! doc header",
    },
    RuleMeta {
        name: "disrupt-stream-namespace",
        id: "disrupt_stream_namespace",
        about: "disruption-subsystem RNG labels stay inside the campaign/faults/ namespace",
    },
    RuleMeta {
        name: "atomic-persistence",
        id: "atomic_persistence",
        about: "persistence paths use temp-file + atomic rename, never in-place writes",
    },
    RuleMeta {
        name: "columnar-kernel",
        id: "columnar_kernel",
        about: "batched analysis paths gather from column slices, not per-row struct walks",
    },
    RuleMeta {
        name: "bounded-ingest",
        id: "bounded_ingest",
        about: "campaign-merge paths keep shard-record residency inside the reorder window",
    },
    RuleMeta {
        name: "bounded-retry",
        id: "bounded_retry",
        about:
            "retry/poll loops on service and soak paths carry a stop flag, deadline, or attempt cap",
    },
    RuleMeta {
        name: "determinism-taint",
        id: "determinism_taint",
        about: "tier 2: nondeterministic values must not flow into record/checkpoint/report sinks",
    },
    RuleMeta {
        name: "rng-stream-flow",
        id: "rng_stream_flow",
        about: "tier 2: RNG labels resolved through value flow obey scheme, uniqueness, namespace",
    },
    RuleMeta {
        name: "persistence-ordering",
        id: "persistence_ordering",
        about: "tier 2: created files are fsynced before the rename that publishes them",
    },
    RuleMeta {
        name: "unordered-float-reduction",
        id: "unordered_float_reduction",
        about: "tier 2: f64 reductions must not consume unordered (hash/channel) iteration",
    },
    RuleMeta {
        name: "stale-allow",
        id: "stale_allow",
        about: "strict-allows audit: allow directives that no longer suppress any finding",
    },
];

/// The stable snake_case id for a rule name. Panics on an unknown name —
/// rules and passes only ever emit names from [`RULES`].
pub fn rule_id(name: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.id)
        .expect("every emitted rule name is in the catalogue")
}

/// Is `name` a known rule name?
pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Integer cast targets the lossy-cast rule watches.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Methods that make the rounding of a float→int cast explicit.
const ROUNDING_METHODS: [&str; 4] = ["round", "floor", "ceil", "trunc"];

/// One `split("…")` call site collected for the label registry.
#[derive(Debug, Clone)]
pub struct LabelSite {
    /// The label literal (format skeleton for `format!` labels).
    pub label: String,
    /// Workspace-relative file.
    pub file: String,
    /// Position.
    pub line: u32,
    /// Position.
    pub col: u32,
    /// Offending source line.
    pub snippet: String,
}

/// Workspace-wide registry of RNG stream labels, keyed by literal.
#[derive(Debug, Default)]
pub struct LabelRegistry {
    sites: BTreeMap<String, Vec<LabelSite>>,
}

impl LabelRegistry {
    /// The collected sites, keyed by label literal (tier 2 consults this
    /// for cross-tier uniqueness of resolved labels).
    pub fn labels(&self) -> &BTreeMap<String, Vec<LabelSite>> {
        &self.sites
    }
}

/// True if a finding of `rule` at `line` is suppressed by an allow
/// directive (on the same line or the line above) with a non-empty
/// reason. Rules emit *raw* findings; the driver applies this filter
/// uniformly afterwards (which is what makes the `--strict-allows`
/// audit possible — it diffs the raw findings against the directives).
pub(crate) fn allowed(lexed: &LexedFile, rule: &str, line: u32) -> bool {
    [line.saturating_sub(1), line].iter().any(|l| {
        lexed.allows.get(l).is_some_and(|v| {
            v.iter()
                .any(|a| a.rule == rule && !a.reason.trim().is_empty())
        })
    })
}

fn snippet(lexed: &LexedFile, line: u32) -> String {
    lexed
        .lines
        .get(line as usize - 1)
        .cloned()
        .unwrap_or_default()
}

fn finding(
    rule: &'static str,
    file: &SourceFile,
    lexed: &LexedFile,
    tok: &Tok,
    message: String,
) -> Finding {
    Finding {
        rule,
        id: rule_id(rule),
        file: file.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: snippet(lexed, tok.line),
    }
}

/// Is `toks[k]` followed by `::seg`?
fn path_seg(toks: &[Tok], k: usize, seg: &str) -> bool {
    toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 3).is_some_and(|t| t.ident() == Some(seg))
}

/// Is `toks[k]` preceded by `seg::`?
fn path_pred(toks: &[Tok], k: usize, seg: &str) -> bool {
    k >= 3
        && toks[k - 1].is_punct(':')
        && toks[k - 2].is_punct(':')
        && toks[k - 3].ident() == Some(seg)
}

/// Rule 1 — nondeterminism: wall-clock time, OS entropy, and environment
/// reads are forbidden in simulator/analysis crates (binaries exempt).
pub fn nondeterminism(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if file.is_bin || !cfg.nondet_crates.contains(&file.crate_name) {
        return;
    }
    const RULE: &str = RULES[0].name;
    for (k, t) in lexed.toks.iter().enumerate() {
        if mask[k] {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        let msg = match id {
            "Instant" | "SystemTime" if path_seg(&lexed.toks, k, "now") => format!(
                "`{id}::now()` reads the wall clock — simulation time must come from `SimTime` so runs are reproducible"
            ),
            "thread_rng" => "`thread_rng()` is OS-seeded — all randomness must flow through `SimRng::seed(..)`/`split(..)`".to_string(),
            "from_entropy" => "`from_entropy()` seeds from the OS — derive generators from the campaign seed instead".to_string(),
            "random" if path_pred(&lexed.toks, k, "rand") => {
                "`rand::random()` is OS-seeded — draw from a `SimRng` stream instead".to_string()
            }
            "var" | "var_os" | "vars" if path_pred(&lexed.toks, k, "env") => format!(
                "`env::{id}` makes output depend on the process environment — thread configuration through typed config structs"
            ),
            _ => continue,
        };
        out.push(finding(RULE, file, lexed, t, msg));
    }
}

/// Rule 2 — hash-iteration: `HashMap`/`HashSet` in dataset-producing
/// crates; their iteration order is nondeterministic and can leak into
/// emitted tables.
pub fn hash_iteration(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !cfg.dataset_crates.contains(&file.crate_name) {
        return;
    }
    const RULE: &str = RULES[1].name;
    for (k, t) in lexed.toks.iter().enumerate() {
        if mask[k] {
            continue;
        }
        if let Some(id @ ("HashMap" | "HashSet")) = t.ident() {
            let alt = if id == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(finding(
                RULE,
                file,
                lexed,
                t,
                format!(
                    "`{id}` in dataset-producing crate `{}` — iteration order is nondeterministic; use `{alt}` or sort before emitting",
                    file.crate_name
                ),
            ));
        }
    }
}

/// Rule 3 (collection half) — gather every `split("…")` label literal.
/// Labels built with `format!("…", ..)` contribute their format skeleton;
/// fully dynamic labels cannot be checked lexically and are skipped.
pub fn collect_labels(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    reg: &mut LabelRegistry,
) {
    if cfg.label_exempt_crates.contains(&file.crate_name) {
        return;
    }
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        if toks[k].ident() != Some("split")
            || k == 0
            || !toks[k - 1].is_punct('.')
            || !toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let mut j = k + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('&')) {
            j += 1;
        }
        let lit = match toks.get(j) {
            Some(t) if t.kind == TokKind::Str => Some(t),
            Some(t)
                if t.ident() == Some("format")
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('(')) =>
            {
                toks.get(j + 3).filter(|t| t.kind == TokKind::Str)
            }
            _ => None,
        };
        let Some(lit) = lit else { continue };
        reg.sites
            .entry(lit.text.clone())
            .or_default()
            .push(LabelSite {
                label: lit.text.clone(),
                file: file.rel_path.clone(),
                line: lit.line,
                col: lit.col,
                snippet: snippet(lexed, lit.line),
            });
    }
}

/// Does a label follow the `area/{…}` scheme: a static lowercase
/// `[a-z0-9_-]+` area prefix, a `/`, and a non-empty remainder?
fn label_well_formed(label: &str) -> bool {
    match label.split_once('/') {
        None => false,
        Some((area, rest)) => {
            !area.is_empty()
                && !rest.is_empty()
                && area
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        }
    }
}

/// Rule 3 (verdict half) — every collected label must be well-formed and
/// unique across the workspace; two sites reusing one literal silently
/// correlate their streams when handed the same parent generator.
pub fn label_findings(reg: &LabelRegistry, out: &mut Vec<Finding>) {
    const RULE: &str = RULES[2].name;
    for (label, sites) in &reg.sites {
        for (idx, site) in sites.iter().enumerate() {
            if !label_well_formed(label) {
                out.push(Finding {
                    rule: RULE,
                    id: rule_id(RULE),
                    file: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "RNG stream label \"{label}\" does not follow the `area/{{…}}` scheme (lowercase area prefix, then `/`)"
                    ),
                    snippet: site.snippet.clone(),
                });
            }
            if idx > 0 {
                let first = &sites[0];
                out.push(Finding {
                    rule: RULE,
                    id: rule_id(RULE),
                    file: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "duplicate RNG stream label \"{label}\" (first used at {}:{}:{}) — reusing a label risks correlated streams",
                        first.file, first.line, first.col
                    ),
                    snippet: site.snippet.clone(),
                });
            }
        }
    }
}

/// Rule 4 — unwrap-in-lib: bare `.unwrap()` / `panic!` in library code
/// must either become `expect("why this holds")` / a proper error, or
/// carry a justification comment.
pub fn unwrap_in_lib(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if file.is_bin || cfg.unwrap_exempt_crates.contains(&file.crate_name) {
        return;
    }
    const RULE: &str = RULES[3].name;
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        let Some(id) = toks[k].ident() else { continue };
        if id == "unwrap"
            && k > 0
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(')'))
        {
            out.push(finding(
                RULE,
                file,
                lexed,
                &toks[k],
                "bare `.unwrap()` in library code — use `expect(\"why this holds\")`, return an error, or justify with `// lint: allow(unwrap-in-lib, reason)`".to_string(),
            ));
        }
        if id == "panic" && toks.get(k + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(finding(
                RULE,
                file,
                lexed,
                &toks[k],
                "`panic!` in library code — return an error, or justify with `// lint: allow(unwrap-in-lib, reason)`".to_string(),
            ));
        }
    }
}

/// Rule 5 — lossy-cast: in record/analysis paths, `as`-casts to integer
/// types silently truncate; make the rounding explicit (`.round() as`)
/// or justify the cast.
pub fn lossy_cast(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !cfg
        .lossy_paths
        .iter()
        .any(|p| file.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    const RULE: &str = RULES[4].name;
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        if toks[k].ident() != Some("as") {
            continue;
        }
        let Some(ty) = toks.get(k + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !INT_TYPES.contains(&ty) {
            continue;
        }
        if k == 0 {
            continue;
        }
        let prev = &toks[k - 1];
        // Integer literals cast to an integer type are not flagged.
        if prev.kind == TokKind::Num && !prev.text.contains('.') {
            continue;
        }
        // `x.round() as u64` — rounding already explicit.
        if prev.is_punct(')') && rounded_call(toks, k - 1) {
            continue;
        }
        out.push(finding(
            RULE,
            file,
            lexed,
            &toks[k],
            format!(
                "`as {ty}` in a record/analysis path truncates silently — use `.round()`/`.floor()`/`.ceil()` before the cast, or justify with `// lint: allow(lossy-cast, reason)`"
            ),
        ));
    }
}

/// Scan back from a `)` at `close`: is the matching call one of the
/// explicit rounding methods?
fn rounded_call(toks: &[Tok], close: usize) -> bool {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        let t = &toks[j];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return j > 0
                    && toks[j - 1]
                        .ident()
                        .is_some_and(|id| ROUNDING_METHODS.contains(&id));
            }
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
}

/// Rule 6 — crate-hygiene: every crate root carries
/// `#![forbid(unsafe_code)]` and a `//!` doc header.
pub fn crate_hygiene(
    file: &SourceFile,
    lexed: &LexedFile,
    _mask: &[bool],
    _cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !file.is_crate_root {
        return;
    }
    const RULE: &str = RULES[5].name;
    let toks = &lexed.toks;
    let has_forbid = (0..toks.len()).any(|k| {
        toks[k].ident() == Some("forbid")
            && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            && toks
                .get(k + 2)
                .is_some_and(|t| t.ident() == Some("unsafe_code"))
    });
    let top = Tok {
        kind: TokKind::Punct,
        text: String::new(),
        line: 1,
        col: 1,
        lo: 0,
        hi: 0,
    };
    if !has_forbid {
        out.push(finding(
            RULE,
            file,
            lexed,
            &top,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    if !lexed.has_inner_doc {
        out.push(finding(
            RULE,
            file,
            lexed,
            &top,
            "crate root is missing a `//!` doc header".to_string(),
        ));
    }
}

/// Rule 7 — disrupt-stream-namespace: inside the disruption subsystem
/// (`disrupt_paths`), every `split("…")` label must live under the
/// dedicated `campaign/faults/` namespace. A fault schedule drawn from
/// any other stream would entangle fault generation with the simulation
/// streams, so enabling faults could perturb the fault-free dataset and
/// break the off-by-default bit-identity guarantee.
pub fn disrupt_stream_namespace(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !cfg
        .disrupt_paths
        .iter()
        .any(|p| file.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    const RULE: &str = RULES[6].name;
    const NAMESPACE: &str = "campaign/faults/";
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        if toks[k].ident() != Some("split")
            || k == 0
            || !toks[k - 1].is_punct('.')
            || !toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let mut j = k + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('&')) {
            j += 1;
        }
        let lit = match toks.get(j) {
            Some(t) if t.kind == TokKind::Str => Some(t),
            Some(t)
                if t.ident() == Some("format")
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('(')) =>
            {
                toks.get(j + 3).filter(|t| t.kind == TokKind::Str)
            }
            _ => None,
        };
        let Some(lit) = lit else { continue };
        if lit.text.starts_with(NAMESPACE) {
            continue;
        }
        out.push(finding(
            RULE,
            file,
            lexed,
            lit,
            format!(
                "RNG stream label \"{}\" in the disrupt module is outside the `{NAMESPACE}` namespace — fault schedules must never draw from simulation streams",
                lit.text
            ),
        ));
    }
}

/// Rule 8 — atomic-persistence: on persistence paths (`persist_paths`:
/// the checkpoint journal and the binaries' output writers), files must
/// land via the temp-file + atomic-rename idiom. `fs::write(..)` replaces
/// a file in place, and `File::create(..)` truncates it immediately — a
/// crash mid-write leaves a torn file at the very path a resumed run will
/// trust. `File::create` is accepted when the same function later calls
/// `rename` (the write-to-temp-then-rename idiom); `fs::write` is always
/// a finding.
pub fn atomic_persistence(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !cfg
        .persist_paths
        .iter()
        .any(|p| file.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    const RULE: &str = RULES[7].name;
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        if !toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        match toks[k].ident() {
            Some("write") if path_pred(toks, k, "fs") => {
                out.push(finding(
                    RULE,
                    file,
                    lexed,
                    &toks[k],
                    "`fs::write` on a persistence path replaces the file in place — a crash mid-write leaves a torn file; write a temp file and `rename` it (see `checkpoint::write_atomic`)".to_string(),
                ));
            }
            Some("create") if path_pred(toks, k, "File") && !renamed_later(toks, k) => {
                out.push(finding(
                    RULE,
                    file,
                    lexed,
                    &toks[k],
                    "`File::create` on a persistence path with no following `rename` truncates the destination before the new bytes are safe — write a temp file and `rename` it (see `checkpoint::write_atomic`)".to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Does a `rename` call appear after `toks[k]`, before the next `fn`
/// item? An approximation of "same function as the `File::create`" that
/// is exact for the write-temp-then-rename idiom this rule exists to
/// enforce.
fn renamed_later(toks: &[Tok], k: usize) -> bool {
    toks[k + 1..].iter().find_map(|t| match t.ident() {
        Some("fn") => Some(false),
        Some("rename") => Some(true),
        _ => None,
    }) == Some(true)
}

/// Rule 9 — columnar-kernel: in the batched analysis paths
/// (`columnar_paths`), the per-row projection `.iter().map(|s| s.field)`
/// walks an array of structs one row at a time, dragging every field of
/// every record through cache to read one. Kernels there scan the
/// contiguous column slices instead (the `*_cols` kernels and
/// `Kpi::gather`), where the same projection is a sequential read of one
/// `Vec`. Index gathers like `.iter().map(|&i| …)` bind by pattern, not
/// a bare identifier, and are not matched.
pub fn columnar_kernel(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !cfg
        .columnar_paths
        .iter()
        .any(|p| file.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    const RULE: &str = RULES[8].name;
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        // `.iter().map(|s| s.field)` — row-at-a-time field projection.
        if toks[k].ident() != Some("iter")
            || k == 0
            || !toks[k - 1].is_punct('.')
            || !toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            || !toks.get(k + 2).is_some_and(|t| t.is_punct(')'))
            || !toks.get(k + 3).is_some_and(|t| t.is_punct('.'))
            || toks.get(k + 4).and_then(|t| t.ident()) != Some("map")
            || !toks.get(k + 5).is_some_and(|t| t.is_punct('('))
            || !toks.get(k + 6).is_some_and(|t| t.is_punct('|'))
        {
            continue;
        }
        let Some(param) = toks.get(k + 7).and_then(|t| t.ident()) else {
            continue;
        };
        if !toks.get(k + 8).is_some_and(|t| t.is_punct('|'))
            || toks.get(k + 9).and_then(|t| t.ident()) != Some(param)
            || !toks.get(k + 10).is_some_and(|t| t.is_punct('.'))
        {
            continue;
        }
        let Some(field) = toks.get(k + 11).and_then(|t| t.ident()) else {
            continue;
        };
        if !toks.get(k + 12).is_some_and(|t| t.is_punct(')')) {
            continue;
        }
        out.push(finding(
            RULE,
            file,
            lexed,
            &toks[k],
            format!(
                "`.iter().map(|{param}| {param}.{field})` walks rows struct-by-struct in a batched analysis path — gather from the contiguous `{field}` column slice (see the `*_cols` kernels), or justify with `// lint: allow(columnar-kernel, reason)`"
            ),
        ));
    }
}

/// Identifiers in a call's argument tokens that mark shard-records
/// flow: the record bundle types and the functions that produce them.
const SHARD_ARG_MARKERS: [&str; 6] = [
    "ShardOut",
    "ShardRecords",
    "into_records",
    "from_records",
    "run_shard",
    "read_frame",
];

/// Rule 10 — bounded-ingest: on the campaign-merge paths
/// (`ingest_paths`), growing a collection of shard records with
/// `.push(..)` / `.insert(..)` and no residency bound defeats the
/// streaming merge — the engine guarantees at most `merge_window`
/// completed shards resident, and one unbounded accumulation of
/// `ShardRecords` silently restores the all-shards-in-memory behavior
/// the reorder window exists to prevent. A call is flagged when the
/// receiver identifier mentions shards or the argument tokens carry a
/// shard-records marker ([`SHARD_ARG_MARKERS`]); the bounded park
/// inside the reorder window itself carries a reasoned allow.
pub fn bounded_ingest(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !cfg
        .ingest_paths
        .iter()
        .any(|p| file.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    const RULE: &str = RULES[9].name;
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        let Some(method @ ("push" | "insert")) = toks[k].ident() else {
            continue;
        };
        if k == 0 || !toks[k - 1].is_punct('.') || !toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let shard_receiver = k >= 2
            && toks[k - 2]
                .ident()
                .is_some_and(|id| id.to_ascii_lowercase().contains("shard"));
        let shard_argument = {
            let mut depth = 0i32;
            let mut j = k + 1;
            let mut hit = false;
            while let Some(t) = toks.get(j) {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.ident().is_some_and(|id| SHARD_ARG_MARKERS.contains(&id)) {
                    hit = true;
                }
                j += 1;
            }
            hit
        };
        if !(shard_receiver || shard_argument) {
            continue;
        }
        out.push(finding(
            RULE,
            file,
            lexed,
            &toks[k],
            format!(
                "`.{method}(..)` accumulates shard records on a campaign-merge path with no residency bound — the streaming merge parks at most `merge_window` shards and spills the rest through the journal; bound this collection, or justify with `// lint: allow(bounded-ingest, reason)`"
            ),
        ));
    }
}

/// Identifier fragments that mark a retry/poll loop as bounded: a stop
/// flag consulted, a deadline or timeout compared, elapsed time read,
/// or an attempt/iteration budget counted. Matching is by lowercase
/// substring so `stopping()`, `past_deadline()`, `CHILD_TIMEOUT`, and
/// `attempts_left` all count.
const RETRY_BOUND_MARKERS: [&str; 9] = [
    "stop", "deadline", "elapsed", "timeout", "attempt", "remain", "budget", "tries", "retries",
];

/// Rule 11 — bounded-retry: on the always-on service and soak-harness
/// paths (`retry_paths`), a `loop`/`while` body that sleeps is a
/// retry or poll loop, and it must visibly bound itself — consult a
/// stop flag, compare a deadline/timeout, read elapsed time, or count
/// an attempt budget ([`RETRY_BOUND_MARKERS`], checked across the loop
/// head and body). An unbounded sleep loop spins forever against a
/// peer that never recovers, which on the serve path means a worker
/// thread that survives shutdown and on the stress path a soak that
/// wedges instead of reporting. `for` loops are exempt: their iterator
/// is the bound.
pub fn bounded_retry(
    file: &SourceFile,
    lexed: &LexedFile,
    mask: &[bool],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if !cfg
        .retry_paths
        .iter()
        .any(|p| file.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    const RULE: &str = RULES[10].name;
    let toks = &lexed.toks;
    for k in 0..toks.len() {
        if mask[k] {
            continue;
        }
        let Some(kw @ ("loop" | "while")) = toks[k].ident() else {
            continue;
        };
        // `.loop`/`::loop` etc. can't occur; but skip `while` arms of
        // macro fragments like `$( … )while` defensively: require the
        // keyword position to start a statement-ish context (previous
        // token is not `.` or `::`-colon).
        if k > 0 && (toks[k - 1].is_punct('.') || toks[k - 1].is_punct(':')) {
            continue;
        }
        // Find the body opener: for `loop` the next token; for `while`
        // the first `{` outside parens/brackets (struct literals are
        // not legal in a `while` condition without parens).
        let mut open = None;
        let mut depth = 0i32;
        let mut j = k + 1;
        while let Some(t) = toks.get(j) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        // Walk the balanced body; the `while` condition tokens
        // (k+1..open) participate in the bound scan — `while
        // !stop.load(..)` is the canonical bound.
        let mut end = open;
        let mut brace = 0i32;
        while let Some(t) = toks.get(end) {
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            end += 1;
        }
        let body = &toks[k + 1..end.min(toks.len())];
        let sleeps = body.iter().any(|t| {
            t.ident()
                .is_some_and(|id| id.to_ascii_lowercase().contains("sleep"))
        });
        if !sleeps {
            continue;
        }
        let bounded = body.iter().any(|t| {
            t.ident().is_some_and(|id| {
                let lower = id.to_ascii_lowercase();
                RETRY_BOUND_MARKERS.iter().any(|m| lower.contains(m))
            })
        });
        if bounded {
            continue;
        }
        out.push(finding(
            RULE,
            file,
            lexed,
            &toks[k],
            format!(
                "`{kw}` loop sleeps with no visible bound on a service/soak path — consult a stop flag, compare a deadline or timeout, or count an attempt budget, or justify with `// lint: allow(bounded-retry, reason)`"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_scheme() {
        assert!(label_well_formed("geo/speed"));
        assert!(label_well_formed("campaign/{}/{}"));
        assert!(label_well_formed("probe/rtt/{id}"));
        assert!(!label_well_formed("trace"));
        assert!(!label_well_formed("city{i}"));
        assert!(!label_well_formed("/x"));
        assert!(!label_well_formed("area/"));
        assert!(!label_well_formed("Area/x"));
    }

    #[test]
    fn rounding_scan() {
        let lexed = crate::lexer::lex("let x = (a.round() as u64, a.min(b) as u64);");
        let toks = &lexed.toks;
        let closes: Vec<usize> = (0..toks.len()).filter(|k| toks[*k].is_punct(')')).collect();
        assert!(rounded_call(toks, closes[0]));
        assert!(!rounded_call(toks, closes[1]));
    }
}
