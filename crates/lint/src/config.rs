//! Per-crate lint configuration.
//!
//! Crates are identified by their directory name under `crates/` (the
//! workspace root package is `"wheels"`). The default configuration
//! encodes the workspace's reproducibility contract; a JSON file with the
//! same shape can be passed to the CLI via `--config` to override it.

use serde::{Deserialize, Serialize};

/// Which crates each rule applies to, and what the walker skips.
///
/// A `--config` JSON file must spell out every field (the vendored serde
/// stand-in has no `#[serde(default)]`); start from
/// `serde_json::to_string(&Config::default())`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// Directory names never descended into (anywhere in the tree).
    pub skip_dirs: Vec<String>,
    /// Crates where wall-clock time, OS entropy, and environment reads
    /// are forbidden (the simulator and analysis stack). Binaries under
    /// `src/bin/` are exempt everywhere — they are entry points, not
    /// simulation code.
    pub nondet_crates: Vec<String>,
    /// Crates whose outputs become datasets or figures: `HashMap` /
    /// `HashSet` are flagged because their iteration order can leak into
    /// emitted tables.
    pub dataset_crates: Vec<String>,
    /// Crates exempt from the RNG stream-label rule (e.g. this tool,
    /// which has no RNG but does string-match on `split`).
    pub label_exempt_crates: Vec<String>,
    /// Crates exempt from the unwrap-in-lib rule.
    pub unwrap_exempt_crates: Vec<String>,
    /// Path prefixes (relative to the workspace root, `/`-separated)
    /// where unannotated `as` casts to integer types are flagged.
    pub lossy_paths: Vec<String>,
    /// Path prefixes where every RNG stream label must live in the
    /// `campaign/faults/` namespace (the disruption subsystem). Fault
    /// schedules drawing from any other stream would entangle the fault
    /// model with the simulation streams and break the off-by-default
    /// bit-identity guarantee.
    pub disrupt_paths: Vec<String>,
    /// Path prefixes that persist state a later run will trust (the
    /// checkpoint journal, the binaries' output writers): in-place
    /// `fs::write` / non-renamed `File::create` are flagged there — a
    /// crash mid-write must never leave a torn file behind.
    pub persist_paths: Vec<String>,
    /// Path prefixes holding the batched analysis kernels: per-row
    /// projections (`.iter().map(|s| s.field)`) are flagged there —
    /// kernels must scan the contiguous column slices, not walk an
    /// array of structs one row at a time.
    pub columnar_paths: Vec<String>,
    /// Path prefixes on the campaign-merge/ingest paths: unbounded
    /// `.push(..)` / `.insert(..)` accumulation of shard records is
    /// flagged there — the streaming merge guarantees at most
    /// `merge_window` completed shards resident, and one unbounded
    /// collection of `ShardRecords` silently restores the
    /// all-shards-in-memory behavior the reorder window exists to
    /// prevent.
    pub ingest_paths: Vec<String>,
    /// Crates excluded from every tier-2 dataflow pass (this tool
    /// itself: its fixtures and string tables would otherwise trip the
    /// very patterns it searches for; the serving layer and the stress
    /// harness, which are wall-clock-aware by design — uptime, latency
    /// histograms, soak timings — and whose answers are pinned
    /// byte-identical to the offline replay by their own integration
    /// tests rather than by taint analysis).
    pub tier2_exempt_crates: Vec<String>,
    /// Path prefixes on the always-on service and soak-harness paths:
    /// `loop`/`while` bodies that sleep (retry/poll loops) must carry a
    /// visible bound — a stop flag, deadline, timeout, or attempt
    /// budget — or they can spin forever against a peer that never
    /// recovers.
    pub retry_paths: Vec<String>,
    /// Path prefixes whose record/encoder structs and fns count as
    /// determinism-taint *sinks*: values persisted or published from
    /// here must never derive from wall-clock, entropy, host topology,
    /// or hash-iteration order.
    pub taint_sink_paths: Vec<String>,
    /// Additional fn names treated as determinism-taint sinks wherever
    /// they are defined (e.g. the report printers).
    pub taint_sink_fns: Vec<String>,
    /// Path prefixes where non-commutative f64 reductions over unordered
    /// (hash/channel) iteration are flagged — the analysis kernels and
    /// the campaign merge, whose outputs are bit-identity-pinned.
    pub float_fold_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        fn v(items: &[&str]) -> Vec<String> {
            items.iter().map(|s| s.to_string()).collect()
        }
        Config {
            skip_dirs: v(&["vendor", "target"]),
            nondet_crates: v(&[
                "sim-core",
                "geo",
                "radio",
                "ran",
                "transport",
                "ue",
                "apps",
                "core",
                "experiments",
                "wheels",
            ]),
            dataset_crates: v(&["core", "experiments"]),
            label_exempt_crates: v(&["lint"]),
            unwrap_exempt_crates: vec![],
            lossy_paths: v(&["crates/core/src", "crates/experiments/src"]),
            disrupt_paths: v(&["crates/core/src/disrupt"]),
            persist_paths: v(&["crates/core/src/checkpoint", "crates/experiments/src/bin"]),
            columnar_paths: v(&["crates/core/src/analysis"]),
            ingest_paths: v(&[
                "crates/core/src/campaign.rs",
                "crates/core/src/checkpoint.rs",
            ]),
            tier2_exempt_crates: v(&["lint", "serve", "stress"]),
            retry_paths: v(&["crates/serve/src", "crates/stress/src"]),
            taint_sink_paths: v(&[
                "crates/core/src/records.rs",
                "crates/core/src/checkpoint.rs",
                "crates/core/src/column",
            ]),
            taint_sink_fns: v(&["render_report"]),
            float_fold_paths: v(&["crates/core/src/analysis", "crates/core/src/campaign.rs"]),
        }
    }
}

impl Config {
    /// True if a directory with this name must not be descended into.
    pub fn skips_dir(&self, name: &str) -> bool {
        self.skip_dirs.iter().any(|d| d == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_skips_vendor_and_target() {
        let c = Config::default();
        assert!(c.skips_dir("vendor"));
        assert!(c.skips_dir("target"));
        assert!(!c.skips_dir("src"));
    }

    #[test]
    fn json_roundtrip() {
        let c = Config::default();
        let s = serde_json::to_string(&c).expect("serialize");
        let back: Config = serde_json::from_str(&s).expect("deserialize");
        assert_eq!(back.dataset_crates, c.dataset_crates);
    }

    #[test]
    fn json_keeps_skip_dirs() {
        let s = serde_json::to_string(&Config::default()).expect("serialize");
        let back: Config = serde_json::from_str(&s).expect("deserialize");
        assert!(back.skips_dir("vendor"));
        assert!(back.skips_dir("target"));
    }
}
