//! Diagnostics: findings, reports, and their text / JSON renderings.

use serde::Serialize;

/// The `--json` payload schema version. Version 1 was the unversioned
/// layout (no `schema_version`, no per-finding `id`); version 2 added
/// both. Bump this whenever a field is added, removed, or renamed — the
/// golden-file test in `tests/fixtures_test.rs` pins the layout.
pub const SCHEMA_VERSION: u32 = 2;

/// One rule violation at a source position.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Rule name (kebab-case, used in text output and allow directives).
    pub rule: &'static str,
    /// Stable snake_case rule id, shared between `--json` and the SARIF
    /// `ruleId` field.
    pub id: &'static str,
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line.
    pub snippet: String,
}

/// The result of a lint run.
#[derive(Debug, Serialize)]
pub struct Report {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of source files checked.
    pub files_checked: usize,
}

impl Report {
    /// True if the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one `file:line:col` header plus the
    /// offending line per finding, then a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    {}\n",
                f.file,
                f.line,
                f.col,
                f.rule,
                f.message,
                f.snippet.trim_end()
            ));
        }
        if self.is_clean() {
            out.push_str(&format!(
                "wheels-lint: {} files checked, clean\n",
                self.files_checked
            ));
        } else {
            out.push_str(&format!(
                "wheels-lint: {} finding(s) in {} files checked\n",
                self.findings.len(),
                self.files_checked
            ));
        }
        out
    }

    /// Machine-readable rendering.
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_position_and_snippet() {
        let r = Report {
            schema_version: SCHEMA_VERSION,
            findings: vec![Finding {
                rule: "unwrap-in-lib",
                id: "unwrap_in_lib",
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 9,
                message: "bare unwrap".into(),
                snippet: "    x.unwrap();".into(),
            }],
            files_checked: 1,
        };
        let t = r.render_text();
        assert!(t.contains("crates/x/src/lib.rs:3:9: [unwrap-in-lib]"));
        assert!(t.contains("x.unwrap();"));
        assert!(t.contains("1 finding(s)"));
    }

    #[test]
    fn json_rendering_is_valid() {
        let r = Report {
            schema_version: SCHEMA_VERSION,
            findings: vec![],
            files_checked: 2,
        };
        let json = r.render_json();
        assert!(json.contains("\"schema_version\":2"));
        assert!(json.contains("\"files_checked\":2"));
        assert!(json.contains("\"findings\":[]"));
    }
}
