//! SARIF 2.1.0 rendering of a lint report.
//!
//! SARIF (Static Analysis Results Interchange Format) is the
//! OASIS-standard JSON envelope consumed by code-scanning UIs. This
//! module renders a [`Report`] as a single-run SARIF log: one
//! `tool.driver` carrying the full rule catalogue, one `result` per
//! finding. Result `ruleId`s are the stable snake_case ids from
//! [`crate::rules::RULES`] — the same strings the `--json` payload pins
//! under `schema_version` 2 — so dashboards can correlate the two
//! outputs.
//!
//! The JSON is assembled by hand: the vendored `serde_json` stand-in
//! serializes flat derive structs but has no dynamic `Value` tree, and
//! SARIF's nesting (`locations[].physicalLocation.region`) is deep
//! enough that dedicated structs per level would outweigh the format.
//! Escaping is centralized in [`esc`].

use crate::report::Report;
use crate::rules::RULES;

/// The SARIF version emitted, pinned by tests.
pub const SARIF_VERSION: &str = "2.1.0";

/// The `$schema` URI emitted, pinned by tests.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a report as a SARIF 2.1.0 log.
pub fn render_sarif(report: &Report) -> String {
    let mut rules = String::new();
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!(
            "{{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            esc(r.id),
            esc(r.name),
            esc(r.about)
        ));
    }
    let mut results = String::new();
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            concat!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",",
                "\"message\":{{\"text\":\"{}\"}},",
                "\"locations\":[{{\"physicalLocation\":{{",
                "\"artifactLocation\":{{\"uri\":\"{}\"}},",
                "\"region\":{{\"startLine\":{},\"startColumn\":{},",
                "\"snippet\":{{\"text\":\"{}\"}}}}}}}}]}}"
            ),
            esc(f.id),
            esc(&f.message),
            esc(&f.file),
            f.line,
            f.col,
            esc(f.snippet.trim_end())
        ));
    }
    format!(
        concat!(
            "{{\"$schema\":\"{}\",\"version\":\"{}\",\"runs\":[{{",
            "\"tool\":{{\"driver\":{{\"name\":\"wheels-lint\",\"rules\":[{}]}}}},",
            "\"results\":[{}]}}]}}"
        ),
        SARIF_SCHEMA, SARIF_VERSION, rules, results
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, Report, SCHEMA_VERSION};

    fn sample() -> Report {
        Report {
            schema_version: SCHEMA_VERSION,
            findings: vec![Finding {
                rule: "determinism-taint",
                id: "determinism_taint",
                file: "crates/core/src/campaign.rs".into(),
                line: 7,
                col: 13,
                message: "clock value \"t0\" flows into a record".into(),
                snippet: "    let t0 = Instant::now();".into(),
            }],
            files_checked: 3,
        }
    }

    #[test]
    fn sarif_has_required_envelope() {
        let s = render_sarif(&sample());
        assert!(s.contains(&format!("\"$schema\":\"{SARIF_SCHEMA}\"")));
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"wheels-lint\""));
    }

    #[test]
    fn sarif_result_carries_snake_case_rule_id_and_region() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"ruleId\":\"determinism_taint\""));
        assert!(s.contains("\"uri\":\"crates/core/src/campaign.rs\""));
        assert!(s.contains("\"startLine\":7"));
        assert!(s.contains("\"startColumn\":13"));
    }

    #[test]
    fn sarif_lists_whole_rule_catalogue() {
        let s = render_sarif(&sample());
        for r in RULES.iter() {
            assert!(s.contains(&format!("\"id\":\"{}\"", r.id)), "{}", r.id);
        }
    }

    #[test]
    fn sarif_escapes_quotes_and_newlines() {
        let mut r = sample();
        r.findings[0].message = "label \"a/b\"\nsecond line".into();
        let s = render_sarif(&r);
        assert!(s.contains("label \\\"a/b\\\"\\nsecond line"));
        assert!(!s.contains('\n'));
    }
}
