//! Multipath TCP bonding across operators.
//!
//! The paper's recommendation #2 (§5.4, §8): aggregate links from multiple
//! operators over MPTCP. This module models that client: one CUBIC subflow
//! per operator, each running its own congestion control over its own
//! radio link and bottleneck buffer, with the aggregate goodput being the
//! sum of subflow deliveries.
//!
//! The interesting gap this model exposes (and the experiments measure) is
//! **bonding efficiency**: a real multipath transport pays slow-start and
//! recovery on every subflow independently, so it delivers less than the
//! ideal `sum(link rates)` — but it still rescues the outage tail, because
//! the subflows' dead zones rarely overlap.

use serde::{Deserialize, Serialize};
use wheels_sim_core::units::DataRate;

use crate::tcp::{CubicFlow, FlowTick};

/// One tick of the bonded connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MptcpTick {
    /// Total bytes delivered across subflows.
    pub delivered_bytes: f64,
    /// Per-subflow ticks (same order as construction).
    pub subflows: Vec<FlowTick>,
}

/// A bonded connection over N subflows.
///
/// ```
/// use wheels_transport::mptcp::MptcpFlow;
/// use wheels_sim_core::units::DataRate;
///
/// let mut bond = MptcpFlow::new(2);
/// let links = [DataRate::from_mbps(20.0), DataRate::from_mbps(30.0)];
/// let tick = bond.advance(10.0, &links, &[60.0, 60.0]);
/// assert_eq!(tick.subflows.len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MptcpFlow {
    subflows: Vec<CubicFlow>,
}

impl MptcpFlow {
    /// Create a bond with `n` subflows.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a bond needs at least one subflow");
        MptcpFlow {
            subflows: (0..n).map(|_| CubicFlow::new()).collect(),
        }
    }

    /// Number of subflows.
    pub fn width(&self) -> usize {
        self.subflows.len()
    }

    /// Advance all subflows by `dt_ms`. `links` and `base_rtts_ms` give
    /// each subflow's current bottleneck rate and path RTT; their lengths
    /// must equal the bond width.
    pub fn advance(&mut self, dt_ms: f64, links: &[DataRate], base_rtts_ms: &[f64]) -> MptcpTick {
        assert_eq!(links.len(), self.subflows.len(), "one link per subflow");
        assert_eq!(base_rtts_ms.len(), self.subflows.len());
        let subflows: Vec<FlowTick> = self
            .subflows
            .iter_mut()
            .zip(links.iter().zip(base_rtts_ms))
            .map(|(f, (l, r))| f.advance(dt_ms, *l, *r))
            .collect();
        MptcpTick {
            delivered_bytes: subflows.iter().map(|t| t.delivered_bytes).sum(),
            subflows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_bond(rates: &[[f64; 3]], rtts: [f64; 3], tick_ms: f64, ticks_per_step: usize) -> f64 {
        let mut bond = MptcpFlow::new(3);
        let mut bytes = 0.0;
        for step in rates {
            let links: Vec<DataRate> = step.iter().map(|m| DataRate::from_mbps(*m)).collect();
            for _ in 0..ticks_per_step {
                bytes += bond.advance(tick_ms, &links, &rtts).delivered_bytes;
            }
        }
        bytes
    }

    #[test]
    fn bond_outperforms_best_single_on_steady_links() {
        let steps: Vec<[f64; 3]> = vec![[30.0, 20.0, 10.0]; 80];
        let bonded = run_bond(&steps, [60.0, 60.0, 60.0], 10.0, 50);
        // Best single subflow alone:
        let mut single = CubicFlow::new();
        let mut single_bytes = 0.0;
        for _ in 0..80 * 50 {
            single_bytes += single
                .advance(10.0, DataRate::from_mbps(30.0), 60.0)
                .delivered_bytes;
        }
        assert!(
            bonded > single_bytes * 1.5,
            "bonded {bonded} vs single {single_bytes}"
        );
    }

    #[test]
    fn bond_survives_disjoint_outages() {
        // Each subflow dies in a different third of the run; the bond
        // always has at least two live legs.
        let mut steps = Vec::new();
        for i in 0..90 {
            let mut s = [25.0, 25.0, 25.0];
            s[i / 30] = 0.0;
            steps.push(s);
        }
        let bonded = run_bond(&steps, [60.0, 60.0, 60.0], 10.0, 50);
        let run_s = 90.0 * 50.0 * 0.01;
        let mbps = bonded * 8.0 / 1e6 / run_s;
        // Two live 25 Mbps legs most of the time → well above any single.
        assert!(mbps > 25.0, "bonded goodput {mbps}");
    }

    #[test]
    fn bonding_efficiency_below_ideal_sum() {
        let steps: Vec<[f64; 3]> = vec![[20.0, 20.0, 20.0]; 60];
        let bonded = run_bond(&steps, [60.0, 60.0, 60.0], 10.0, 50);
        let run_s = 60.0 * 50.0 * 0.01;
        let mbps = bonded * 8.0 / 1e6 / run_s;
        assert!(mbps < 60.0 + 1e-6, "cannot beat the ideal sum: {mbps}");
        assert!(mbps > 35.0, "bonding efficiency too low: {mbps}");
    }

    #[test]
    fn width_and_validation() {
        let mut bond = MptcpFlow::new(2);
        assert_eq!(bond.width(), 2);
        let t = bond.advance(
            10.0,
            &[DataRate::from_mbps(10.0), DataRate::ZERO],
            &[50.0, 50.0],
        );
        assert_eq!(t.subflows.len(), 2);
        assert_eq!(t.subflows[1].delivered_bytes, 0.0);
    }

    #[test]
    #[should_panic(expected = "one link per subflow")]
    fn mismatched_links_panics() {
        let mut bond = MptcpFlow::new(2);
        bond.advance(10.0, &[DataRate::ZERO], &[50.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "at least one subflow")]
    fn empty_bond_rejected() {
        let _ = MptcpFlow::new(0);
    }
}
