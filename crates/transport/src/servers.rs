//! The measurement server fleet.
//!
//! §3: two EC2 cloud locations — California for tests run in the Pacific
//! and Mountain timezones, Ohio for Central and Eastern — plus five
//! Wavelength edge servers *inside Verizon's network* in Los Angeles, Las
//! Vegas, Denver, Chicago, and Boston. Only Verizon traffic can reach the
//! edge servers, and only while driving within one of those metros.
//!
//! One-way delay = fiber propagation over the great-circle distance times a
//! routing-inflation factor, plus a fixed processing/core component. The
//! edge path skips the Internet leg entirely (it terminates at the mobile
//! core), which is what gives Fig. 4's edge-vs-cloud RTT gap.

use serde::{Deserialize, Serialize};
use wheels_geo::route::{LatLon, Route};
use wheels_ran::operator::Operator;
use wheels_sim_core::time::Timezone;
use wheels_sim_core::units::Distance;

/// Cloud (remote EC2) or edge (Wavelength) termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerKind {
    /// Remote AWS EC2 (California or Ohio).
    Cloud,
    /// Verizon Wavelength edge (inside the operator network).
    Edge,
}

impl ServerKind {
    /// Label used in figures ("cloud"/"edge").
    pub fn label(self) -> &'static str {
        match self {
            ServerKind::Cloud => "cloud",
            ServerKind::Edge => "edge",
        }
    }
}

/// A resolved network path from the UE's current location to the serving
/// test server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetPath {
    /// Cloud or edge.
    pub kind: ServerKind,
    /// One-way delay beyond the RAN, in milliseconds.
    pub core_owd_ms: f64,
}

/// EC2 us-west (N. California region proxy).
const CLOUD_CA: LatLon = LatLon {
    lat: 37.35,
    lon: -121.95,
};
/// EC2 us-east-2 (Ohio).
const CLOUD_OH: LatLon = LatLon {
    lat: 40.10,
    lon: -83.15,
};

/// Fiber propagation: ~5 µs/km one way.
const FIBER_MS_PER_KM: f64 = 0.005;
/// Routing inflation over great-circle distance.
const ROUTE_INFLATION: f64 = 1.9;
/// Fixed mobile-core + peering component of the cloud path (one way).
const CORE_FIXED_MS: f64 = 6.0;
/// One-way delay of the Wavelength edge path (terminates in the mobile
/// core of the metro).
const EDGE_OWD_MS: f64 = 1.8;
/// How far from an edge-city center the Wavelength server is still used.
const EDGE_METRO_RADIUS_KM: f64 = 35.0;

/// The deployed server fleet.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerFleet;

impl ServerFleet {
    /// The fleet of §3.
    pub fn standard() -> Self {
        ServerFleet
    }

    /// Which cloud location serves a test run from timezone `tz`.
    pub fn cloud_location(tz: Timezone) -> LatLon {
        match tz {
            Timezone::Pacific | Timezone::Mountain => CLOUD_CA,
            Timezone::Central | Timezone::Eastern => CLOUD_OH,
        }
    }

    /// Resolve the path for `operator` at route position `odo`.
    ///
    /// Verizon gets the Wavelength edge inside the five edge metros; every
    /// other combination goes to the timezone's cloud server.
    pub fn path(&self, operator: Operator, route: &Route, odo: Distance) -> NetPath {
        if operator.has_edge_servers() && Self::in_edge_metro(route, odo) {
            return NetPath {
                kind: ServerKind::Edge,
                core_owd_ms: EDGE_OWD_MS,
            };
        }
        let pos = route.position_at(odo);
        let tz = route.timezone_at(odo);
        let cloud = Self::cloud_location(tz);
        let dist_km = pos.haversine(cloud).as_km();
        NetPath {
            kind: ServerKind::Cloud,
            core_owd_ms: CORE_FIXED_MS + dist_km * FIBER_MS_PER_KM * ROUTE_INFLATION,
        }
    }

    /// Force the cloud path regardless of edge availability (used by the
    /// edge-vs-cloud comparisons and ablations).
    pub fn cloud_path(&self, route: &Route, odo: Distance) -> NetPath {
        let pos = route.position_at(odo);
        let tz = route.timezone_at(odo);
        let cloud = Self::cloud_location(tz);
        let dist_km = pos.haversine(cloud).as_km();
        NetPath {
            kind: ServerKind::Cloud,
            core_owd_ms: CORE_FIXED_MS + dist_km * FIBER_MS_PER_KM * ROUTE_INFLATION,
        }
    }

    /// Whether `odo` lies within an edge metro.
    pub fn in_edge_metro(route: &Route, odo: Distance) -> bool {
        route.waypoints().iter().enumerate().any(|(i, w)| {
            w.edge_city
                && (route.waypoint_odometer(i).as_km() - odo.as_km()).abs() <= EDGE_METRO_RADIUS_KM
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verizon_gets_edge_in_la() {
        let route = Route::standard();
        let fleet = ServerFleet::standard();
        let p = fleet.path(Operator::Verizon, &route, Distance::from_km(2.0));
        assert_eq!(p.kind, ServerKind::Edge);
        assert!(p.core_owd_ms < 3.0);
    }

    #[test]
    fn other_operators_never_get_edge() {
        let route = Route::standard();
        let fleet = ServerFleet::standard();
        for op in [Operator::TMobile, Operator::Att] {
            for km in (0..5700).step_by(50) {
                let p = fleet.path(op, &route, Distance::from_km(km as f64));
                assert_eq!(p.kind, ServerKind::Cloud, "{op:?} at {km} km");
            }
        }
    }

    #[test]
    fn verizon_cloud_outside_edge_metros() {
        let route = Route::standard();
        let fleet = ServerFleet::standard();
        // Mid-Wyoming is far from any edge city.
        let p = fleet.path(Operator::Verizon, &route, Distance::from_km(1400.0));
        assert_eq!(p.kind, ServerKind::Cloud);
    }

    #[test]
    fn edge_owd_much_lower_than_cloud() {
        let route = Route::standard();
        let fleet = ServerFleet::standard();
        let edge = fleet.path(Operator::Verizon, &route, Distance::from_km(2.0));
        let cloud = fleet.cloud_path(&route, Distance::from_km(2.0));
        assert!(edge.core_owd_ms * 3.0 < cloud.core_owd_ms);
    }

    #[test]
    fn cloud_owd_grows_with_distance_from_server() {
        let route = Route::standard();
        let fleet = ServerFleet::standard();
        // LA is near the CA cloud; mid-Utah (still Mountain → CA cloud) is
        // farther.
        let near = fleet.cloud_path(&route, Distance::from_km(10.0));
        let far = fleet.cloud_path(&route, Distance::from_km(1100.0));
        assert!(far.core_owd_ms > near.core_owd_ms + 2.0);
    }

    #[test]
    fn cloud_switches_to_ohio_in_central() {
        let route = Route::standard();
        // Find a Central-timezone position.
        let mut central_odo = None;
        for km in (0..5700).step_by(10) {
            if route.timezone_at(Distance::from_km(km as f64)) == Timezone::Central {
                central_odo = Some(Distance::from_km(km as f64));
                break;
            }
        }
        let odo = central_odo.expect("route crosses Central");
        let cloud = ServerFleet::cloud_location(route.timezone_at(odo));
        assert!((cloud.lon - CLOUD_OH.lon).abs() < 1e-9);
    }

    #[test]
    fn all_five_edge_metros_reachable() {
        let route = Route::standard();
        let fleet = ServerFleet::standard();
        let mut edge_hits = 0;
        for (i, w) in route.waypoints().iter().enumerate() {
            if w.edge_city {
                let p = fleet.path(Operator::Verizon, &route, route.waypoint_odometer(i));
                assert_eq!(p.kind, ServerKind::Edge, "{}", w.name);
                edge_hits += 1;
            }
        }
        assert_eq!(edge_hits, 5);
    }

    #[test]
    fn cloud_owd_realistic_range() {
        let route = Route::standard();
        let fleet = ServerFleet::standard();
        for km in (0..5700).step_by(100) {
            let p = fleet.cloud_path(&route, Distance::from_km(km as f64));
            assert!(
                (6.0..45.0).contains(&p.core_owd_ms),
                "owd {} at {km} km",
                p.core_owd_ms
            );
        }
    }
}
