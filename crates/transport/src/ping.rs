//! The ICMP ping instrument.
//!
//! Two users in the paper: the RTT tests (20 s at one ping per 200 ms to
//! the edge/cloud server, §5) and the handover-logger phones (38-byte pings
//! at 200 ms around the clock to keep the radio out of sleep, §3).
//!
//! A ping's RTT is RAN latency (both directions, technology-dependent) +
//! the core/Internet one-way delays + a small jitter; a ping sent during a
//! handover interruption or coverage hole is lost.

use serde::{Deserialize, Serialize};
use wheels_ran::session::RanSnapshot;
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::time::{SimDuration, SimTime};

use crate::servers::NetPath;

/// Interval between pings.
pub const PING_INTERVAL: SimDuration = SimDuration(200);

/// One ping result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PingResult {
    /// Send time.
    pub t: SimTime,
    /// RTT in ms, or `None` if the ping was lost/timed out.
    pub rtt_ms: Option<f64>,
}

/// Stateful ping session.
#[derive(Debug, Clone)]
pub struct PingSession {
    rng: SimRng,
    next_send: SimTime,
}

impl PingSession {
    /// New session; the first ping goes out at `start`.
    pub fn new(start: SimTime, rng: SimRng) -> Self {
        PingSession {
            rng,
            next_send: start,
        }
    }

    /// When the next ping is due.
    pub fn next_due(&self) -> SimTime {
        self.next_send
    }

    /// Fire the ping due at `next_due()` against the current link state.
    ///
    /// `snapshot` is `None` when the operator has no coverage (ping lost).
    /// `queue_delay_ms` lets a concurrent backlogged transfer's bufferbloat
    /// leak into ping RTTs (zero for the paper's isolated RTT tests).
    pub fn fire(
        &mut self,
        snapshot: Option<&RanSnapshot>,
        path: &NetPath,
        queue_delay_ms: f64,
    ) -> PingResult {
        let t = self.next_send;
        self.next_send += PING_INTERVAL;

        let Some(s) = snapshot else {
            return PingResult { t, rtt_ms: None };
        };
        if s.in_handover {
            return PingResult { t, rtt_ms: None };
        }
        // Random ICMP loss on very poor links (deep fades / cell edge).
        let loss_p = if s.sinr.0 < -5.0 {
            0.25
        } else if s.sinr.0 < 0.0 {
            0.05
        } else {
            0.004
        };
        if self.rng.chance(loss_p) {
            return PingResult { t, rtt_ms: None };
        }

        let ran_rtt = 2.0 * s.tech.ran_latency_ms();
        // Scheduling jitter: lognormal-ish tail from uplink grant waits.
        let mut jitter = self.rng.lognormal_median(3.0, 0.8).min(250.0);
        // Rare long stalls: RLC/HARQ retransmission storms and cell
        // congestion bursts push driving RTT maxima into the seconds
        // (Fig. 3b).
        if self.rng.chance(0.02) {
            jitter += self.rng.exponential(350.0).min(2800.0);
        }
        if s.sinr.0 < 2.0 {
            jitter += self.rng.lognormal_median(40.0, 1.0).min(1500.0);
        }
        let rtt = ran_rtt + 2.0 * path.core_owd_ms + jitter + queue_delay_ms;
        PingResult {
            t,
            rtt_ms: Some(rtt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servers::{NetPath, ServerKind};
    use wheels_radio::tech::Technology;
    use wheels_ran::cells::CellId;
    use wheels_ran::operator::Operator;
    use wheels_sim_core::units::{DataRate, Db, Dbm};

    fn snap(tech: Technology, in_handover: bool, sinr: f64) -> RanSnapshot {
        RanSnapshot {
            t: SimTime::EPOCH,
            operator: Operator::Verizon,
            cell: CellId(1),
            tech,
            rsrp: Dbm(-95.0),
            sinr: Db(sinr),
            blocked: false,
            in_handover,
            carriers: 2,
            primary_mcs: 15,
            primary_bler: 0.08,
            dl_rate: DataRate::from_mbps(100.0),
            ul_rate: DataRate::from_mbps(20.0),
            share: 0.5,
        }
    }

    fn cloud_path() -> NetPath {
        NetPath {
            kind: ServerKind::Cloud,
            core_owd_ms: 20.0,
        }
    }

    fn edge_path() -> NetPath {
        NetPath {
            kind: ServerKind::Edge,
            core_owd_ms: 1.8,
        }
    }

    #[test]
    fn pings_fire_every_200ms() {
        let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(1));
        let s = snap(Technology::LteA, false, 15.0);
        let r1 = p.fire(Some(&s), &cloud_path(), 0.0);
        let r2 = p.fire(Some(&s), &cloud_path(), 0.0);
        assert_eq!(r1.t, SimTime(0));
        assert_eq!(r2.t, SimTime(200));
        assert_eq!(p.next_due(), SimTime(400));
    }

    #[test]
    fn rtt_reflects_technology_ordering() {
        let mut rtts = Vec::new();
        for tech in [Technology::Nr5gMmWave, Technology::Nr5gMid, Technology::Lte] {
            let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(7));
            let s = snap(tech, false, 20.0);
            let vals: Vec<f64> = (0..500)
                .filter_map(|_| p.fire(Some(&s), &cloud_path(), 0.0).rtt_ms)
                .collect();
            rtts.push(vals.iter().sum::<f64>() / vals.len() as f64);
        }
        assert!(rtts[0] < rtts[1], "mmWave {} vs mid {}", rtts[0], rtts[1]);
        assert!(rtts[1] < rtts[2], "mid {} vs LTE {}", rtts[1], rtts[2]);
    }

    #[test]
    fn edge_rtt_beats_cloud() {
        let s = snap(Technology::Nr5gMmWave, false, 25.0);
        let collect = |path: NetPath, seed| {
            let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(seed));
            let vals: Vec<f64> = (0..800)
                .filter_map(|_| p.fire(Some(&s), &path, 0.0).rtt_ms)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let edge = collect(edge_path(), 2);
        let cloud = collect(cloud_path(), 2);
        assert!(edge + 20.0 < cloud + 1.0, "edge {edge} cloud {cloud}");
        // Fig. 4: edge mmWave RTT median ~18 ms, below 40 ms.
        assert!(edge < 40.0, "edge median-ish {edge}");
    }

    #[test]
    fn handover_loses_ping() {
        let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(3));
        let s = snap(Technology::LteA, true, 15.0);
        let r = p.fire(Some(&s), &cloud_path(), 0.0);
        assert_eq!(r.rtt_ms, None);
    }

    #[test]
    fn no_coverage_loses_ping() {
        let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(4));
        let r = p.fire(None, &cloud_path(), 0.0);
        assert_eq!(r.rtt_ms, None);
    }

    #[test]
    fn poor_sinr_loses_more_pings() {
        let count_losses = |sinr: f64, seed| {
            let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(seed));
            let s = snap(Technology::Lte, false, sinr);
            (0..2000)
                .filter(|_| p.fire(Some(&s), &cloud_path(), 0.0).rtt_ms.is_none())
                .count()
        };
        let good = count_losses(20.0, 5);
        let bad = count_losses(-8.0, 5);
        assert!(bad > good * 10, "good {good} bad {bad}");
    }

    #[test]
    fn queue_delay_inflates_rtt() {
        let s = snap(Technology::LteA, false, 18.0);
        let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(6));
        let quiet = p.fire(Some(&s), &cloud_path(), 0.0).rtt_ms.unwrap();
        let mut p2 = PingSession::new(SimTime::EPOCH, SimRng::seed(6));
        let loaded = p2.fire(Some(&s), &cloud_path(), 900.0).rtt_ms.unwrap();
        assert!((loaded - quiet - 900.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_values_in_paper_driving_range() {
        // Driving RTT medians are 60–80 ms over cloud paths (Fig. 9).
        let s = snap(Technology::LteA, false, 12.0);
        let mut p = PingSession::new(SimTime::EPOCH, SimRng::seed(8));
        let mut vals: Vec<f64> = (0..2000)
            .filter_map(|_| p.fire(Some(&s), &cloud_path(), 0.0).rtt_ms)
            .collect();
        vals.sort_by(f64::total_cmp);
        let med = vals[vals.len() / 2];
        assert!((45.0..95.0).contains(&med), "median {med}");
    }
}
