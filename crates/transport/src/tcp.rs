//! Fluid-flow TCP CUBIC over a time-varying bottleneck.
//!
//! The paper measured throughput with nuttcp: a single CUBIC connection,
//! 30–35 s backlogged, sampled every 500 ms. This module reproduces that
//! measurement instrument: the radio link is the bottleneck, its rate
//! changes every poll, and a droptail buffer sits in front of it.
//!
//! The model is deliberately fluid (rates and byte-counts, not packets) —
//! the analysis consumes 500 ms throughput samples, so sub-RTT packet
//! dynamics are irrelevant, but three TCP behaviours matter and are kept:
//!
//! 1. **CUBIC window evolution** (RFC 8312): cubic growth around `W_max`
//!    with β = 0.7 multiplicative decrease on loss, plus classic slow
//!    start. After a rate drop it takes CUBIC real time to refill the pipe,
//!    which is where much of the driving throughput loss comes from.
//! 2. **Bufferbloat**: the droptail buffer is sized generously (as carrier
//!    buffers are); at low link rates the queueing delay reaches seconds —
//!    Fig. 3b's 2–3 s driving RTT tail.
//! 3. **Stalls and RTOs**: a handover interruption (link rate 0) stalls
//!    delivery; if it outlasts the retransmission timeout the window
//!    collapses to one segment and slow start restarts.

use serde::{Deserialize, Serialize};
use wheels_sim_core::units::DataRate;

/// Maximum segment size (bytes).
pub const MSS: f64 = 1448.0;
/// CUBIC scaling constant (RFC 8312).
const CUBIC_C: f64 = 0.4;
/// CUBIC multiplicative-decrease factor.
const CUBIC_BETA: f64 = 0.7;
/// Minimum bottleneck buffer (bytes) — carrier buffers do not shrink below
/// this even on slow links; this constant is the bufferbloat source.
const MIN_BUFFER_BYTES: f64 = 750_000.0;
/// Buffer size in bandwidth-delay products (when larger than the floor).
const BUFFER_BDP_MULT: f64 = 4.0;
/// Retransmission timeout floor (ms).
const RTO_MIN_MS: f64 = 1000.0;
/// Initial congestion window (segments).
const INIT_CWND_SEGS: f64 = 10.0;

/// Output of one simulation tick of the flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowTick {
    /// Bytes delivered to the application during the tick.
    pub delivered_bytes: f64,
    /// Smoothed RTT including queueing delay (ms).
    pub rtt_ms: f64,
    /// Whether a congestion (loss) event fired during the tick.
    pub lost: bool,
    /// Whether an RTO fired during the tick.
    pub rto: bool,
}

/// A single backlogged CUBIC flow.
///
/// ```
/// use wheels_transport::tcp::CubicFlow;
/// use wheels_sim_core::units::DataRate;
///
/// let mut flow = CubicFlow::new();
/// let link = DataRate::from_mbps(50.0);
/// let mut bytes = 0.0;
/// for _ in 0..3000 {
///     bytes += flow.advance(10.0, link, 60.0).delivered_bytes;
/// }
/// let goodput_mbps = bytes * 8.0 / 1e6 / 30.0;
/// assert!(goodput_mbps > 40.0); // saturates a steady 50 Mbps link
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CubicFlow {
    /// Congestion window (bytes).
    cwnd: f64,
    /// Slow-start threshold (bytes).
    ssthresh: f64,
    /// Window before the last decrease (bytes).
    w_max: f64,
    /// Milliseconds since the last congestion event.
    epoch_ms: f64,
    /// Bottleneck queue occupancy (bytes).
    queue: f64,
    /// Milliseconds the link has been fully stalled.
    stall_ms: f64,
    /// Last computed RTT (ms).
    srtt_ms: f64,
    /// Bottleneck buffer sizing: BDP multiple.
    buffer_bdp_mult: f64,
    /// Bottleneck buffer floor (bytes) — the bufferbloat source.
    min_buffer_bytes: f64,
}

impl Default for CubicFlow {
    fn default() -> Self {
        Self::new()
    }
}

impl CubicFlow {
    /// Fresh flow in slow start over a default (carrier-sized) buffer.
    pub fn new() -> Self {
        Self::with_buffer(BUFFER_BDP_MULT, MIN_BUFFER_BYTES)
    }

    /// Fresh flow over a custom bottleneck buffer (ablations: a 1×BDP
    /// buffer with no floor kills the bufferbloat RTT tail).
    pub fn with_buffer(bdp_mult: f64, min_bytes: f64) -> Self {
        CubicFlow {
            cwnd: INIT_CWND_SEGS * MSS,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_ms: 0.0,
            queue: 0.0,
            stall_ms: 0.0,
            srtt_ms: 0.0,
            buffer_bdp_mult: bdp_mult.max(0.1),
            min_buffer_bytes: min_bytes.max(3.0 * MSS),
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    /// Whether the flow is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// CUBIC window target `epoch_ms` after the last loss (RFC 8312 §4.1).
    fn cubic_target(&self) -> f64 {
        let wmax_segs = self.w_max / MSS;
        let k = (wmax_segs * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let t = self.epoch_ms / 1000.0;
        let target_segs = CUBIC_C * (t - k).powi(3) + wmax_segs;
        target_segs * MSS
    }

    fn on_loss(&mut self) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0 * MSS);
        self.ssthresh = self.cwnd;
        self.epoch_ms = 0.0;
    }

    fn on_rto(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS);
        self.w_max = self.cwnd;
        self.cwnd = MSS;
        self.epoch_ms = 0.0;
        self.queue = 0.0; // queued data is retransmitted, buffer flushed
    }

    /// Advance the flow by `dt_ms` with the bottleneck at `link_rate` and
    /// a path base RTT (propagation, no queueing) of `base_rtt_ms`.
    pub fn advance(&mut self, dt_ms: f64, link_rate: DataRate, base_rtt_ms: f64) -> FlowTick {
        assert!(dt_ms > 0.0, "tick must be positive");
        let link_bps = link_rate.as_bps();

        // Full stall (handover / dead zone).
        if link_bps <= 1.0 {
            self.stall_ms += dt_ms;
            let rto = self.stall_ms >= RTO_MIN_MS.max(2.0 * self.srtt_ms.max(base_rtt_ms));
            if rto {
                self.on_rto();
                self.stall_ms = 0.0;
            }
            self.srtt_ms = base_rtt_ms + 0.0;
            return FlowTick {
                delivered_bytes: 0.0,
                rtt_ms: self.srtt_ms,
                lost: false,
                rto,
            };
        }
        self.stall_ms = 0.0;

        let queue_delay_ms = self.queue / link_bps * 8.0 * 1000.0;
        let rtt_ms = base_rtt_ms + queue_delay_ms;
        self.srtt_ms = rtt_ms;

        // Window growth over the tick.
        self.epoch_ms += dt_ms;
        let rtts_in_tick = dt_ms / rtt_ms.max(1.0);
        if self.in_slow_start() {
            // Doubling per RTT, capped at ssthresh.
            self.cwnd = (self.cwnd * 2f64.powf(rtts_in_tick)).min(self.ssthresh.max(self.cwnd));
        } else {
            let target = self.cubic_target();
            if target > self.cwnd {
                // Approach the cubic target but never more than 1.5x/RTT
                // (TCP-friendly cap on aggressive regrowth).
                let max_growth = self.cwnd * 1.5f64.powf(rtts_in_tick);
                self.cwnd = target.min(max_growth);
            } else {
                // In the concave plateau the window holds.
            }
        }
        self.cwnd = self.cwnd.max(MSS);

        // Fluid queue update: the flow offers cwnd/RTT; the link drains at
        // link_rate.
        let offered_bps = self.cwnd * 8.0 / (rtt_ms / 1000.0);
        let link_bytes = link_bps / 8.0 * (dt_ms / 1000.0);
        let offered_bytes = offered_bps / 8.0 * (dt_ms / 1000.0);

        let bdp_bytes = link_bps / 8.0 * (base_rtt_ms / 1000.0);
        let buffer = (bdp_bytes * self.buffer_bdp_mult).max(self.min_buffer_bytes);

        let mut lost = false;
        let drained: f64;
        if offered_bytes >= link_bytes {
            drained = link_bytes;
            self.queue += offered_bytes - link_bytes;
            if self.queue >= buffer {
                self.queue = buffer * 0.85; // droptail spills, sender backs off
                self.on_loss();
                lost = true;
            }
        } else {
            let deficit = link_bytes - offered_bytes;
            let from_queue = deficit.min(self.queue);
            self.queue -= from_queue;
            drained = offered_bytes + from_queue;
        }

        FlowTick {
            delivered_bytes: drained,
            rtt_ms,
            lost,
            rto: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a flow over a constant link, returning per-tick results.
    fn run_constant(mbps: f64, base_rtt: f64, ms: u64, tick: u64) -> (CubicFlow, Vec<FlowTick>) {
        let mut f = CubicFlow::new();
        let link = DataRate::from_mbps(mbps);
        let ticks = (0..ms / tick)
            .map(|_| f.advance(tick as f64, link, base_rtt))
            .collect();
        (f, ticks)
    }

    fn goodput_mbps(ticks: &[FlowTick], tick_ms: u64) -> f64 {
        let bytes: f64 = ticks.iter().map(|t| t.delivered_bytes).sum();
        bytes * 8.0 / 1e6 / (ticks.len() as f64 * tick_ms as f64 / 1000.0)
    }

    #[test]
    fn saturates_steady_link() {
        let (_, ticks) = run_constant(50.0, 60.0, 30_000, 10);
        // Skip the first 5 s of slow start.
        let steady = &ticks[500..];
        let g = goodput_mbps(steady, 10);
        assert!(g > 45.0 && g <= 50.5, "goodput {g}");
    }

    #[test]
    fn saturates_slow_link_and_bloats_rtt() {
        let (_, ticks) = run_constant(2.0, 60.0, 40_000, 10);
        let steady = &ticks[2000..];
        let g = goodput_mbps(steady, 10);
        assert!(g > 1.7 && g <= 2.05, "goodput {g}");
        // Bufferbloat: with a 750 KB floor at 2 Mbps, queue delay reaches
        // seconds before droptail bites.
        let max_rtt = ticks.iter().map(|t| t.rtt_ms).fold(0.0, f64::max);
        assert!(max_rtt > 1000.0, "max rtt {max_rtt}");
    }

    #[test]
    fn slow_start_then_congestion_avoidance() {
        let (f, ticks) = run_constant(100.0, 50.0, 20_000, 10);
        assert!(!f.in_slow_start(), "should have exited slow start");
        assert!(ticks.iter().any(|t| t.lost), "droptail loss expected");
    }

    #[test]
    fn loss_reduces_window_by_beta() {
        let mut f = CubicFlow::new();
        // Force a known window, then a loss.
        f.cwnd = 100.0 * MSS;
        f.ssthresh = 10.0 * MSS; // out of slow start
        let before = f.cwnd_bytes();
        f.on_loss();
        assert!((f.cwnd_bytes() - before * CUBIC_BETA).abs() < 1e-6);
    }

    #[test]
    fn cubic_regrows_toward_wmax() {
        let mut f = CubicFlow::new();
        f.cwnd = 100.0 * MSS;
        f.ssthresh = 10.0 * MSS;
        f.on_loss();
        let after_loss = f.cwnd_bytes();
        // Generous link so the link itself is not limiting regrowth.
        let link = DataRate::from_mbps(500.0);
        for _ in 0..1500 {
            f.advance(10.0, link, 50.0);
        }
        assert!(
            f.cwnd_bytes() > after_loss * 1.2,
            "window did not regrow: {} vs {}",
            f.cwnd_bytes(),
            after_loss
        );
    }

    #[test]
    fn stall_triggers_rto_and_slow_start() {
        let mut f = CubicFlow::new();
        let link = DataRate::from_mbps(50.0);
        for _ in 0..1000 {
            f.advance(10.0, link, 60.0);
        }
        let before = f.cwnd_bytes();
        assert!(before > 10.0 * MSS);
        // 1.5 s outage.
        let mut rto_seen = false;
        for _ in 0..150 {
            let t = f.advance(10.0, DataRate::ZERO, 60.0);
            assert_eq!(t.delivered_bytes, 0.0);
            rto_seen |= t.rto;
        }
        assert!(rto_seen, "RTO should fire during a 1.5 s outage");
        assert!(f.cwnd_bytes() <= MSS + 1e-9);
        assert!(f.in_slow_start());
    }

    #[test]
    fn short_stall_no_rto() {
        let mut f = CubicFlow::new();
        let link = DataRate::from_mbps(50.0);
        for _ in 0..500 {
            f.advance(10.0, link, 60.0);
        }
        let before = f.cwnd_bytes();
        // 60 ms interruption — the paper's median handover.
        for _ in 0..6 {
            let t = f.advance(10.0, DataRate::ZERO, 60.0);
            assert!(!t.rto);
        }
        assert_eq!(f.cwnd_bytes(), before, "window survives a short stall");
    }

    #[test]
    fn adapts_downward_when_link_halves() {
        let mut f = CubicFlow::new();
        for _ in 0..2000 {
            f.advance(10.0, DataRate::from_mbps(80.0), 60.0);
        }
        // Halve the link; goodput must settle near the new rate.
        let ticks: Vec<FlowTick> = (0..3000)
            .map(|_| f.advance(10.0, DataRate::from_mbps(40.0), 60.0))
            .collect();
        let g = goodput_mbps(&ticks[1000..], 10);
        assert!(g > 35.0 && g <= 40.5, "goodput {g}");
    }

    #[test]
    fn rtt_includes_queue_delay_under_load() {
        let (_, ticks) = run_constant(10.0, 60.0, 20_000, 10);
        let late = &ticks[1500..];
        let mean_rtt = late.iter().map(|t| t.rtt_ms).sum::<f64>() / late.len() as f64;
        assert!(mean_rtt > 100.0, "mean rtt {mean_rtt} — no bufferbloat?");
    }

    #[test]
    fn deterministic() {
        let (_, a) = run_constant(25.0, 70.0, 5000, 10);
        let (_, b) = run_constant(25.0, 70.0, 5000, 10);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_panics() {
        let mut f = CubicFlow::new();
        f.advance(0.0, DataRate::from_mbps(10.0), 50.0);
    }

    #[test]
    fn goodput_never_exceeds_link() {
        let (_, ticks) = run_constant(5.0, 60.0, 20_000, 10);
        for t in &ticks {
            // Per tick, delivery is capped by the link (plus queue drain,
            // also link-capped).
            assert!(t.delivered_bytes <= 5e6 / 8.0 * 0.01 + 1e-6);
        }
    }
}
