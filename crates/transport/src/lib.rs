//! # wheels-transport
//!
//! End-to-end transport over the simulated radio link:
//!
//! - [`servers`] — the measurement server fleet of §3: AWS EC2 cloud
//!   instances in California and Ohio, plus the five Verizon Wavelength
//!   edge servers (LA, Las Vegas, Denver, Chicago, Boston), with
//!   propagation-based one-way delays.
//! - [`tcp`] — a fluid-flow single-connection TCP CUBIC model (the paper's
//!   nuttcp configuration) over a time-varying bottleneck with a droptail
//!   buffer. Bufferbloat on low-rate links is what inflates driving RTTs
//!   into the seconds (Fig. 3b); handover interruptions stall delivery and
//!   can force an RTO.
//! - [`ping`] — the ICMP measurement (200 ms interval, 38-byte payload)
//!   used both by the RTT tests and the handover-logger phones.
//! - [`mptcp`] — a multipath bond of CUBIC subflows across operators,
//!   implementing the paper's multi-connectivity recommendation (§5.4/§8)
//!   for the `ext-multipath` experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mptcp;
pub mod ping;
pub mod servers;
pub mod tcp;

pub use mptcp::MptcpFlow;
pub use ping::PingSession;
pub use servers::{NetPath, ServerFleet, ServerKind};
pub use tcp::{CubicFlow, FlowTick};
