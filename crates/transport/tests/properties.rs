//! Property-based tests for the fluid TCP CUBIC model.

use proptest::prelude::*;
use wheels_sim_core::units::DataRate;
use wheels_transport::tcp::CubicFlow;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delivery_never_exceeds_link_capacity(
        mbps in 0.1f64..1000.0,
        rtt in 5.0f64..300.0,
        ticks in 10usize..500,
    ) {
        let mut f = CubicFlow::new();
        let link = DataRate::from_mbps(mbps);
        let cap_per_tick = link.as_bps() / 8.0 * 0.01;
        for _ in 0..ticks {
            let t = f.advance(10.0, link, rtt);
            prop_assert!(t.delivered_bytes >= 0.0);
            prop_assert!(t.delivered_bytes <= cap_per_tick + 1e-6,
                "delivered {} vs cap {}", t.delivered_bytes, cap_per_tick);
        }
    }

    #[test]
    fn rtt_never_below_base(
        mbps in 0.1f64..1000.0,
        base in 5.0f64..300.0,
        ticks in 10usize..500,
    ) {
        let mut f = CubicFlow::new();
        let link = DataRate::from_mbps(mbps);
        for _ in 0..ticks {
            let t = f.advance(10.0, link, base);
            prop_assert!(t.rtt_ms >= base - 1e-9);
        }
    }

    #[test]
    fn window_stays_positive(
        rates in prop::collection::vec(0.0f64..500.0, 20..200),
        rtt in 10.0f64..200.0,
    ) {
        // Arbitrary rate trajectory including outages.
        let mut f = CubicFlow::new();
        for r in rates {
            f.advance(10.0, DataRate::from_mbps(r), rtt);
            prop_assert!(f.cwnd_bytes() >= 1448.0 - 1e-9);
        }
    }

    #[test]
    fn deterministic_under_same_inputs(
        rates in prop::collection::vec(0.0f64..200.0, 20..100),
        rtt in 10.0f64..200.0,
    ) {
        let run = || {
            let mut f = CubicFlow::new();
            rates
                .iter()
                .map(|r| f.advance(10.0, DataRate::from_mbps(*r), rtt))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn steady_link_utilization_above_half(
        mbps in 1.0f64..300.0,
        rtt in 10.0f64..150.0,
    ) {
        // After warmup, a single CUBIC flow should use well over half of a
        // steady link (no random loss in the model).
        let mut f = CubicFlow::new();
        let link = DataRate::from_mbps(mbps);
        for _ in 0..3000 {
            f.advance(10.0, link, rtt);
        }
        let mut bytes = 0.0;
        for _ in 0..2000 {
            bytes += f.advance(10.0, link, rtt).delivered_bytes;
        }
        let goodput = bytes * 8.0 / 20.0 / 1e6; // Mbps over 20 s
        prop_assert!(goodput > mbps * 0.5, "goodput {goodput} of {mbps}");
    }

    #[test]
    fn buffer_floor_bounds_queue_delay(
        mbps in 0.5f64..50.0,
        mult in 0.5f64..8.0,
        min_kb in 10.0f64..2000.0,
    ) {
        let mut f = CubicFlow::with_buffer(mult, min_kb * 1000.0);
        let link = DataRate::from_mbps(mbps);
        let mut max_rtt = 0.0f64;
        for _ in 0..4000 {
            max_rtt = max_rtt.max(f.advance(10.0, link, 50.0).rtt_ms);
        }
        // Queue delay is bounded by buffer/link (+1 tick of slack).
        let bdp = link.as_bps() / 8.0 * 0.05;
        let buffer = (bdp * mult).max(min_kb * 1000.0).max(3.0 * 1448.0);
        let bound = 50.0 + buffer * 8.0 / link.as_bps() * 1000.0 + 15.0;
        prop_assert!(max_rtt <= bound, "max rtt {max_rtt} bound {bound}");
    }
}
