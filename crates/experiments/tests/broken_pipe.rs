//! `repro ... | head` behavior: a consumer closing stdout early is
//! normal Unix usage, so the binaries must exit 0 quietly instead of
//! panicking on the write.
//!
//! The test holds the read end of the child's stdout pipe and drops it
//! immediately after spawn. Both binaries spend seconds simulating the
//! quick campaign before their first stdout write, so by the time they
//! write, the pipe's read end is long gone and the write deterministically
//! fails with `EPIPE` — which, pre-fix, panicked (`exit 101`).

use std::process::{Command, Stdio};

fn exit_with_closed_stdout(bin: &str, args: &[&str]) -> std::process::ExitStatus {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn binary");
    drop(child.stdout.take());
    child.wait().expect("wait for binary")
}

#[test]
fn repro_exits_zero_when_stdout_closes_early() {
    let status = exit_with_closed_stdout(env!("CARGO_BIN_EXE_repro"), &["--quick", "table1"]);
    assert!(status.success(), "expected exit 0, got {status:?}");
}

#[test]
fn dataset_json_export_exits_zero_when_stdout_closes_early() {
    let status = exit_with_closed_stdout(env!("CARGO_BIN_EXE_dataset"), &["--quick"]);
    assert!(status.success(), "expected exit 0, got {status:?}");
}

#[test]
fn dataset_bin_export_exits_zero_when_stdout_closes_early() {
    let status = exit_with_closed_stdout(
        env!("CARGO_BIN_EXE_dataset"),
        &["--quick", "--format", "bin"],
    );
    assert!(status.success(), "expected exit 0, got {status:?}");
}
