//! Table 3: our driving medians against Ookla's Q3-2022 published report.

use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::Cdf;

use crate::fig9;
use crate::fmt;
use crate::targets::ookla;
use crate::world::World;

/// Our per-test medians (the comparable quantity).
pub fn our_medians(world: &World, op: Operator) -> (Option<f64>, Option<f64>, Option<f64>) {
    let dl = Cdf::from_samples(fig9::test_means(world, op, Direction::Downlink)).median();
    let ul = Cdf::from_samples(fig9::test_means(world, op, Direction::Uplink)).median();
    let rtt = Cdf::from_samples(fig9::rtt_means(world, op)).median();
    (dl, ul, rtt)
}

/// Render the table.
pub fn run(world: &World) -> String {
    let mut rows = Vec::new();
    for (i, op) in Operator::ALL.iter().enumerate() {
        let (dl, ul, rtt) = our_medians(world, *op);
        rows.push(vec![
            op.label().to_string(),
            fmt::num(dl),
            format!("{:.2}", ookla::DL_MBPS[i]),
            fmt::num(ul),
            format!("{:.2}", ookla::UL_MBPS[i]),
            fmt::num(rtt),
            format!("{:.0}", ookla::RTT_MS[i]),
        ]);
    }
    format!(
        "Table 3 — driving medians vs Ookla Speedtest Q3-2022 (static crowd data)\n{}",
        fmt::table(
            &[
                "operator",
                "DL ours",
                "DL Ookla",
                "UL ours",
                "UL Ookla",
                "RTT ours",
                "RTT Ookla"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_dl_medians_below_ookla() {
        // The paper's point: driving DL is far below the (mostly static)
        // crowd-sourced medians.
        let w = World::quick();
        let mut below = 0;
        for (i, op) in Operator::ALL.iter().enumerate() {
            let (dl, _, _) = our_medians(w, *op);
            if let Some(dl) = dl {
                if dl < ookla::DL_MBPS[i] * 1.5 {
                    below += 1;
                }
            }
        }
        assert!(below >= 2, "driving DL should undercut Ookla: {below}/3");
    }

    #[test]
    fn renders_three_operators() {
        let out = run(World::quick());
        for op in Operator::ALL {
            assert!(out.contains(op.label()));
        }
        assert!(out.contains("116.14")); // T-Mobile Ookla DL constant
    }
}
