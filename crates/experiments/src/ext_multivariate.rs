//! Extension: the multivariate KPI analysis the paper defers to future
//! work (§5.5: *"an in-depth understanding of the impact of multiple KPIs
//! on performance requires a multivariate analysis, which is part of our
//! future work"*).
//!
//! We regress 500 ms throughput on all six Table 2 KPIs jointly (OLS) and
//! compare the joint R² against the best single-KPI R² (= r² of Table 2's
//! strongest column). The paper's conjecture — that the KPIs jointly
//! explain more than any one alone, yet still leave most of the variance
//! (load is invisible to the UE) — is testable here because the simulator
//! knows the ground truth: the scheduler share.

use wheels_core::analysis::correlation::Kpi;
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::{ols, OlsFit};

use crate::fmt;
use crate::world::World;

/// Joint and single-KPI fits for one operator/direction.
pub struct MultivariateRow {
    /// Operator.
    pub operator: Operator,
    /// Direction.
    pub direction: Direction,
    /// OLS over all six KPIs.
    pub joint: Option<OlsFit>,
    /// Best single-KPI R².
    pub best_single_r2: f64,
    /// OLS including the ground-truth scheduler share (oracle).
    pub with_share: Option<OlsFit>,
}

/// Run the regression for one operator/direction.
pub fn fit(world: &World, op: Operator, dir: Direction) -> MultivariateRow {
    let rows: Vec<_> = world
        .view()
        .tput_iter(Some(op), Some(dir), Some(true))
        .collect();
    let y: Vec<f64> = rows.iter().map(|s| s.mbps).collect();
    let xs: Vec<Vec<f64>> = rows
        .iter()
        .map(|s| Kpi::ALL.iter().map(|k| k.value(s)).collect())
        .collect();
    let joint = ols(&xs, &y);

    let mut best_single_r2: f64 = 0.0;
    for (j, _) in Kpi::ALL.iter().enumerate() {
        let single: Vec<Vec<f64>> = xs.iter().map(|r| vec![r[j]]).collect();
        if let Some(f) = ols(&single, &y) {
            best_single_r2 = best_single_r2.max(f.r_squared);
        }
    }

    // Augmented model: KPIs plus the serving technology class — the one
    // extra piece of context a drive test *can* observe. (The simulator's
    // true hidden variable, the scheduler share, is deliberately not
    // offered: its invisibility is the paper's explanation for the weak
    // correlations.)
    let xs_oracle: Vec<Vec<f64>> = rows
        .iter()
        .map(|s| {
            let mut v: Vec<f64> = Kpi::ALL.iter().map(|k| k.value(s)).collect();
            // Technology class as ordinal (the joint model may use it; a
            // drive test *can* observe this one).
            v.push(f64::from(u8::from(s.tech.is_high_speed())));
            v.push(f64::from(u8::from(s.tech.is_5g())));
            v
        })
        .collect();
    let with_share = ols(&xs_oracle, &y);

    MultivariateRow {
        operator: op,
        direction: dir,
        joint,
        best_single_r2,
        with_share,
    }
}

/// Render the extension table.
pub fn run(world: &World) -> String {
    let mut rows = Vec::new();
    for op in Operator::ALL {
        for dir in Direction::ALL {
            let r = fit(world, op, dir);
            rows.push(vec![
                format!("{} {}", op.label(), dir.label()),
                fmt::num(r.joint.as_ref().map(|f| f.r_squared)),
                fmt::num(Some(r.best_single_r2)),
                fmt::num(r.with_share.as_ref().map(|f| f.r_squared)),
                r.joint.map(|f| f.n.to_string()).unwrap_or_default(),
            ]);
        }
    }
    format!(
        "Extension — multivariate KPI analysis (the paper's §5.5 future work)\n\
         joint R² = OLS on RSRP+MCS+CA+BLER+speed+HO; +tech adds the serving\n\
         technology class (observable); even jointly the KPIs leave most of\n\
         the variance unexplained — cell load is invisible to the UE.\n{}",
        fmt::table(
            &["operator", "joint R2", "best single R2", "+tech R2", "n"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_beats_best_single() {
        let w = World::quick();
        for op in Operator::ALL {
            for dir in Direction::ALL {
                let r = fit(w, op, dir);
                if let Some(joint) = &r.joint {
                    assert!(
                        joint.r_squared >= r.best_single_r2 - 1e-9,
                        "{op:?} {dir:?}: joint {} single {}",
                        joint.r_squared,
                        r.best_single_r2
                    );
                }
            }
        }
    }

    #[test]
    fn even_joint_model_leaves_most_variance() {
        // The paper's implicit claim: KPIs alone cannot explain driving
        // throughput.
        let w = World::quick();
        for op in Operator::ALL {
            let r = fit(w, op, Direction::Downlink);
            if let Some(joint) = &r.joint {
                assert!(
                    joint.r_squared < 0.75,
                    "{op:?}: joint R² {} suspiciously high",
                    joint.r_squared
                );
            }
        }
    }

    #[test]
    fn tech_class_adds_information() {
        let w = World::quick();
        let mut improved = 0;
        let mut total = 0;
        for op in Operator::ALL {
            for dir in Direction::ALL {
                let r = fit(w, op, dir);
                if let (Some(j), Some(o)) = (&r.joint, &r.with_share) {
                    total += 1;
                    if o.r_squared >= j.r_squared - 1e-9 {
                        improved += 1;
                    }
                }
            }
        }
        assert!(improved * 2 >= total, "{improved}/{total}");
    }

    #[test]
    fn renders() {
        let out = run(World::quick());
        assert!(out.contains("joint R2"));
        assert!(out.contains("Verizon DL"));
    }
}
