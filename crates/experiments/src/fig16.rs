//! Fig. 16 (and 22): cloud gaming.

use wheels_apps::gaming::GamingStats;
use wheels_core::records::TestKind;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::pearson;
#[cfg(test)]
use wheels_sim_core::stats::Cdf;

use crate::fmt;
use crate::world::World;

/// All driving gaming runs for one operator.
pub fn runs(world: &World, op: Operator) -> Vec<&GamingStats> {
    world
        .dataset()
        .apps
        .iter()
        .filter(|a| a.operator == op && a.kind == TestKind::Gaming && a.driving)
        .filter_map(|a| a.gaming.as_ref())
        .collect()
}

/// Best-static baseline (bitrate, latency, drop %).
pub fn best_static() -> (f64, f64, f64) {
    use wheels_apps::link::{ConstantLink, LinkState};
    let mut link = ConstantLink(LinkState::best_static());
    let s =
        wheels_apps::gaming::GamingRun::execute(&mut link, wheels_sim_core::time::SimTime::EPOCH);
    (
        s.median_bitrate().unwrap_or(0.0),
        s.median_latency().unwrap_or(0.0),
        s.drop_rate_pct(),
    )
}

fn render_op(world: &World, op: Operator) -> String {
    let rs = runs(world, op);
    if rs.is_empty() {
        return "  (no runs)\n".into();
    }
    let bitrates: Vec<f64> = rs.iter().filter_map(|s| s.median_bitrate()).collect();
    let latencies: Vec<f64> = rs.iter().filter_map(|s| s.median_latency()).collect();
    let drops: Vec<f64> = rs.iter().map(|s| s.drop_rate_pct()).collect();
    let mut out = String::new();
    out.push_str(&format!("  bitrate Mbps : {}\n", fmt::cdf_line(bitrates)));
    out.push_str(&format!("  latency ms   : {}\n", fmt::cdf_line(latencies)));
    out.push_str(&format!(
        "  frame drop % : {}\n",
        fmt::cdf_line(drops.iter().copied())
    ));
    let (h, d): (Vec<f64>, Vec<f64>) = rs
        .iter()
        .map(|s| (s.high_speed_5g_fraction, s.drop_rate_pct()))
        .unzip();
    out.push_str(&format!(
        "  corr(hs5G%, drop%) = {}\n",
        fmt::num(pearson(&h, &d))
    ));
    let (hos, d2): (Vec<f64>, Vec<f64>) = rs
        .iter()
        .map(|s| (s.handovers as f64, s.drop_rate_pct()))
        .unzip();
    out.push_str(&format!(
        "  corr(#HO, drop%)   = {}\n",
        fmt::num(pearson(&hos, &d2))
    ));
    out
}

/// Render Fig. 16 (Verizon).
pub fn run(world: &World) -> String {
    let (b, l, d) = best_static();
    format!(
        "Fig. 16 — cloud gaming (Verizon)\n  best static: bitrate {b:.1} Mbps, latency {l:.1} ms, drops {d:.2}%\n{}",
        render_op(world, Operator::Verizon)
    )
}

/// Render Fig. 22 (all operators).
pub fn run_all_ops(world: &World) -> String {
    let mut out = String::from("Fig. 22 — cloud gaming across operators\n");
    for op in Operator::ALL {
        out.push_str(&format!("{}:\n{}", op.label(), render_op(world, op)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driving_bitrate_well_below_static() {
        // Fig. 16a: driving median ~17.5 Mbps vs static 98.5.
        let w = World::quick();
        let (stat_b, _, _) = best_static();
        assert!(stat_b > 80.0, "static bitrate {stat_b}");
        let rs = runs(w, Operator::Verizon);
        assert!(rs.len() >= 5);
        let med = Cdf::from_samples(rs.iter().filter_map(|s| s.median_bitrate()))
            .median()
            .unwrap();
        assert!(med < stat_b * 0.6, "driving {med} vs static {stat_b}");
    }

    #[test]
    fn drop_rate_typically_low() {
        // Fig. 16: drops protected by frame-rate adaptation (median ~1.6%).
        let w = World::quick();
        let mut drops = Vec::new();
        for op in Operator::ALL {
            drops.extend(runs(w, op).iter().map(|s| s.drop_rate_pct()));
        }
        let med = Cdf::from_samples(drops.iter().copied()).median().unwrap();
        assert!(med < 20.0, "median drop rate {med}");
    }

    #[test]
    fn latency_exceeds_best_static() {
        let w = World::quick();
        let (_, stat_l, _) = best_static();
        let rs = runs(w, Operator::Verizon);
        let med = Cdf::from_samples(rs.iter().filter_map(|s| s.median_latency()))
            .median()
            .unwrap();
        assert!(med > stat_l, "driving latency {med} vs static {stat_l}");
    }

    #[test]
    fn renders() {
        let w = World::quick();
        assert!(run(w).contains("best static"));
        assert!(run_all_ops(w).contains("T-Mobile"));
    }
}
