//! # wheels-experiments
//!
//! One module per table and figure of the paper's evaluation, each
//! regenerating its rows/series from a simulated campaign dataset. The
//! `repro` binary prints any (or all) of them; the `wheels-bench` crate
//! wraps them in Criterion benches; EXPERIMENTS.md records the
//! paper-vs-measured comparison.
//!
//! Experiments are registered in [`registry`]; each takes a shared
//! [`world::World`] (campaign + dataset, built once per scale) and returns
//! the rendered text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod fmt;
pub mod targets;
pub mod world;

pub mod ext_multipath;
pub mod ext_multivariate;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig15;
pub mod fig16;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod findings;
pub mod quality;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4_5;

use world::World;

/// One registered experiment: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(&World) -> String);

/// The experiment registry.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "table1",
            "Dataset statistics",
            table1::run as fn(&World) -> String,
        ),
        (
            "fig1",
            "Passive vs active coverage along the route",
            fig1::run,
        ),
        ("fig2", "Technology coverage breakdowns", fig2::run),
        ("fig3", "Static vs driving performance", fig3::run),
        (
            "fig4",
            "Per-technology performance; edge vs cloud",
            fig4::run,
        ),
        ("fig5", "Throughput by timezone", fig5::run),
        ("fig6", "Operator diversity", fig6::run),
        ("fig7", "Throughput vs speed", fig7_8::run_fig7),
        ("fig8", "RTT vs speed", fig7_8::run_fig8),
        ("fig9", "Per-test means and variability", fig9::run),
        (
            "fig10",
            "Performance vs high-speed-5G time share",
            fig10::run,
        ),
        ("table2", "Throughput-KPI correlations", table2::run),
        (
            "table3",
            "Comparison with the Ookla Q3-2022 report",
            table3::run,
        ),
        ("fig11", "Handover rates and durations", fig11::run),
        ("fig12", "Handover throughput impact", fig12::run),
        ("table4", "AR/CAV app configuration", table4_5::run_table4),
        ("table5", "Latency-accuracy model", table4_5::run_table5),
        ("fig13", "AR app performance (Verizon)", fig13_14::run_fig13),
        (
            "fig14",
            "CAV app performance (Verizon)",
            fig13_14::run_fig14,
        ),
        ("fig15", "360 video performance", fig15::run),
        ("fig16", "Cloud gaming performance", fig16::run),
        (
            "fig18",
            "AR/CAV across operators (Figs. 18-20)",
            fig13_14::run_fig18_20,
        ),
        ("fig21", "360 video across operators", fig15::run_all_ops),
        ("fig22", "Cloud gaming across operators", fig16::run_all_ops),
        (
            "findings",
            "Digest: the paper's key findings re-checked against this dataset",
            findings::run,
        ),
        (
            "ext-multipath",
            "Extension: multi-connectivity what-if (paper recommendation #2)",
            ext_multipath::run,
        ),
        (
            "ext-multivariate",
            "Extension: multivariate KPI analysis (paper's stated future work)",
            ext_multivariate::run,
        ),
        (
            "quality",
            "Data quality: disruption and salvage accounting",
            quality::run,
        ),
    ]
}

/// Run one experiment by id.
pub fn run_by_id(world: &World, id: &str) -> Option<String> {
    registry()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f(world))
}

/// Resolve ids against the registry, preserving input order. `Err` is
/// the first unknown id, so callers can reject bad invocations before
/// building a world.
pub fn resolve(ids: &[String]) -> Result<Vec<Experiment>, String> {
    let reg = registry();
    ids.iter()
        .map(|id| {
            reg.iter()
                .find(|(eid, _, _)| eid == id)
                .copied()
                .ok_or_else(|| id.clone())
        })
        .collect()
}

/// Run experiments on a worker pool (the campaign engine's pattern: an
/// atomic next-job counter over scoped threads, results parked in
/// per-slot mutexes). Returned texts are in `exps` order regardless of
/// thread count or completion order; `threads` of `None` means host
/// cores. Experiments only read the shared world, so parallelism cannot
/// change any output.
pub fn run_experiments(world: &World, exps: &[Experiment], threads: Option<usize>) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .clamp(1, exps.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<String>>> = exps.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, _, f)) = exps.get(i) else { break };
                let text = f(world);
                *slots[i].lock().expect("experiment slot mutex poisoned") = Some(text);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("experiment slot mutex poisoned")
                .expect("every claimed experiment stores its text")
        })
        .collect()
}

/// The exact byte stream `repro` writes to stdout for these experiments:
/// a 78-char separator line, then the experiment text, per experiment.
/// The determinism suite compares this across thread counts.
pub fn render_report(world: &World, exps: &[Experiment], threads: Option<usize>) -> String {
    let texts = run_experiments(world, exps, threads);
    let mut out = String::new();
    for text in texts {
        out.push_str(&"=".repeat(78));
        out.push('\n');
        out.push_str(&text);
        out.push('\n');
    }
    out
}
