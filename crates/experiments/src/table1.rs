//! Table 1: driving dataset statistics.
//!
//! The paper's "# of handovers" row comes from the three *passive*
//! handover-logger phones (ICMP-only, mostly on large LTE cells — few
//! handovers), not from the backlogged test phones (dense 5G layers —
//! many). We estimate the passive count by running the logger over a
//! subsample of the trip and scaling up.

use wheels_ran::operator::Operator;
use wheels_sim_core::rng::SimRng;
use wheels_ue::hologger::HandoverLogger;

use crate::fmt;
use crate::targets;
use crate::world::World;

/// Estimate the trip-total passive handovers for one operator by sampling
/// `chunk`-second windows every `stride` seconds.
pub fn passive_handover_estimate(world: &World, op: Operator) -> usize {
    let trace = &world.campaign.trace;
    let dep = world.campaign.deployment(op);
    let n = trace.samples().len();
    let chunk = 120;
    let stride = 2400;
    let mut events = 0usize;
    let mut sampled = 0usize;
    let mut start = 0;
    while start + chunk < n {
        let (_, ev) = HandoverLogger::run_with_events(
            dep,
            trace,
            start,
            start + chunk,
            SimRng::seed(7).split(&format!("t1/{}/{start}", op.label())),
        );
        events += ev.len();
        sampled += chunk;
        start += stride;
    }
    if sampled == 0 {
        return 0;
    }
    events * n / sampled
}

/// Regenerate Table 1 next to the paper's numbers.
pub fn run(world: &World) -> String {
    let ds = world.dataset();
    let trace = &world.campaign.trace;

    let cells = |op: Operator| {
        ds.unique_cells
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    let hos = |op: Operator| passive_handover_estimate(world, op);
    let runtime = |op: Operator| {
        ds.runtime_min
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, m)| *m)
            .unwrap_or(0.0)
    };

    let rows = vec![
        vec![
            "Total distance (km)".into(),
            format!("{:.0}", trace.total_distance().as_km()),
            format!("{:.0}", targets::table1::DISTANCE_KM),
        ],
        vec![
            "Unique cells (V/T/A)".into(),
            format!(
                "{}/{}/{}",
                cells(Operator::Verizon),
                cells(Operator::TMobile),
                cells(Operator::Att)
            ),
            format!(
                "{}/{}/{}",
                targets::table1::UNIQUE_CELLS[0],
                targets::table1::UNIQUE_CELLS[1],
                targets::table1::UNIQUE_CELLS[2]
            ),
        ],
        vec![
            "Handovers, passive loggers (V/T/A)".into(),
            format!(
                "{}/{}/{}",
                hos(Operator::Verizon),
                hos(Operator::TMobile),
                hos(Operator::Att)
            ),
            format!(
                "{}/{}/{}",
                targets::table1::HANDOVERS[0],
                targets::table1::HANDOVERS[1],
                targets::table1::HANDOVERS[2]
            ),
        ],
        vec![
            "Data received (GB)".into(),
            format!("{:.1}", ds.rx_bytes / 1e9),
            format!("{:.0}+", targets::table1::RX_GB),
        ],
        vec![
            "Data transmitted (GB)".into(),
            format!("{:.1}", ds.tx_bytes / 1e9),
            format!("{:.0}+", targets::table1::TX_GB),
        ],
        vec![
            "Log size (GB)".into(),
            format!("{:.1}", ds.log_bytes / 1e9),
            format!("{:.0}+", targets::table1::LOG_GB),
        ],
        vec![
            "Runtime (min, V/T/A)".into(),
            format!(
                "{:.0}/{:.0}/{:.0}",
                runtime(Operator::Verizon),
                runtime(Operator::TMobile),
                runtime(Operator::Att)
            ),
            format!(
                "{:.0}/{:.0}/{:.0}",
                targets::table1::RUNTIME_MIN[0],
                targets::table1::RUNTIME_MIN[1],
                targets::table1::RUNTIME_MIN[2]
            ),
        ],
    ];
    format!(
        "Table 1 — driving dataset statistics (scale: {:?})\n{}",
        world.scale,
        fmt::table(&["statistic", "measured", "paper"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_and_distance_matches() {
        let w = World::quick();
        let out = run(w);
        assert!(out.contains("Total distance"));
        assert!(out.contains("5711"), "distance row missing:\n{out}");
        assert!(out.contains("Handovers"));
    }

    #[test]
    fn trip_distance_within_one_percent_of_paper() {
        let w = World::quick();
        let km = w.campaign.trace.total_distance().as_km();
        assert!((km - targets::table1::DISTANCE_KM).abs() / targets::table1::DISTANCE_KM < 0.01);
    }
}
