//! Shared, fallible command-line parsing for the `repro` and `dataset`
//! binaries.
//!
//! Parsing returns `Result` instead of exiting, so bad/missing flag
//! values are unit-testable; the binaries map `Err` to an exit code.

use crate::world::Scale;

/// Dataset export format (`--format json|bin`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// The pinned JSON interchange format (default; byte-stable schema).
    #[default]
    Json,
    /// The WCD1 columnar binary format (fast cache/transport layer).
    Bin,
}

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Campaign scale (`--quick` / `--standard` / `--full`).
    pub scale: Scale,
    /// Campaign seed (`--seed N`, default 2022).
    pub seed: u64,
    /// Worker-pool cap (`--threads N`, default = host cores). Never
    /// changes any output, only wall time.
    pub threads: Option<usize>,
    /// Streaming-merge reorder window (`--merge-window N`, default =
    /// unbounded): at most N completed shards are held resident waiting
    /// for plan order; the rest spill to the checkpoint journal. Without
    /// `--checkpoint`/`--resume` the combination is still well-defined:
    /// the build spills through a temporary journal that is removed
    /// after the merge (falling back to in-memory backpressure if the
    /// temp journal cannot be created). Never changes any output, only
    /// peak memory.
    pub merge_window: Option<usize>,
    /// Enable the demo disruption mix (`--faults`): injected server
    /// outages, app crashes, logger gaps and clock-drift bursts, with
    /// retry/salvage accounting in the quality report.
    pub faults: bool,
    /// Checkpoint directory for a fresh crash-safe run
    /// (`--checkpoint DIR`): each completed campaign shard is journalled
    /// there, so a killed run can be resumed.
    pub checkpoint: Option<String>,
    /// Checkpoint directory to resume from (`--resume DIR`): replays the
    /// journalled shards, re-simulates only the missing ones, and keeps
    /// journalling to the same directory.
    pub resume: Option<String>,
    /// Dataset export format (`--format json|bin`, default json).
    pub format: Format,
    /// Dataset file to analyse instead of simulating (`--load FILE`):
    /// auto-detects WCD1 binary (loaded without a parse step) vs JSON.
    pub load: Option<String>,
    /// Positional arguments (experiment ids for `repro`, the output path
    /// for `dataset`).
    pub rest: Vec<String>,
}

/// Parse the flags shared by the binaries. `default_scale` differs per
/// binary (`repro` defaults to Standard, `dataset` to Quick).
///
/// Each flag may appear at most once: `--seed 1 --seed 2` is rejected
/// rather than resolved last-one-wins, because a silently-dropped value
/// in a long campaign invocation is exactly the kind of mistake that
/// costs a day of compute. The scale flags are exempt — `--quick`,
/// `--standard` and `--full` are three spellings of *one* setting, and
/// overriding a script's default scale by appending a flag is idiomatic.
pub fn parse_args(
    default_scale: Scale,
    argv: impl IntoIterator<Item = String>,
) -> Result<Args, String> {
    let mut args = Args {
        scale: default_scale,
        seed: 2022,
        threads: None,
        merge_window: None,
        faults: false,
        checkpoint: None,
        resume: None,
        format: Format::Json,
        load: None,
        rest: Vec::new(),
    };
    let mut seen: Vec<String> = Vec::new();
    let mut iter = argv.into_iter();
    while let Some(a) = iter.next() {
        // Duplicate detection applies to every flag except the scale
        // family (one logical setting, last one wins by design).
        if a.starts_with("--") && !matches!(a.as_str(), "--quick" | "--standard" | "--full") {
            if seen.contains(&a) {
                return Err(format!("duplicate flag {a}"));
            }
            seen.push(a.clone());
        }
        match a.as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--standard" => args.scale = Scale::Standard,
            "--full" => args.scale = Scale::Full,
            "--seed" => {
                let v = iter.next().ok_or("--seed needs an integer")?;
                args.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got {v:?}"))?;
            }
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a positive integer")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--threads needs a positive integer, got 0".to_string());
                }
                args.threads = Some(n);
            }
            "--merge-window" => {
                let v = iter
                    .next()
                    .ok_or("--merge-window needs a positive shard count")?;
                let n: usize = v.parse().map_err(|_| {
                    format!("--merge-window needs a positive shard count, got {v:?}")
                })?;
                if n == 0 {
                    return Err("--merge-window needs a positive shard count, got 0".to_string());
                }
                args.merge_window = Some(n);
            }
            "--faults" => args.faults = true,
            "--checkpoint" => {
                let v = iter.next().ok_or("--checkpoint needs a directory path")?;
                args.checkpoint = Some(v);
            }
            "--resume" => {
                let v = iter.next().ok_or("--resume needs a directory path")?;
                args.resume = Some(v);
            }
            "--format" => {
                let v = iter.next().ok_or("--format needs json or bin")?;
                args.format = match v.as_str() {
                    "json" => Format::Json,
                    "bin" => Format::Bin,
                    other => return Err(format!("--format needs json or bin, got {other:?}")),
                };
            }
            "--load" => {
                let v = iter.next().ok_or("--load needs a dataset file path")?;
                args.load = Some(v);
            }
            // Reject unknown flags instead of letting them fall through
            // to `rest`: a typo like `--thread 4` or `-q` would otherwise
            // silently become a positional arg (an experiment id / output
            // path) and the user's intent would be dropped. A bare `-`
            // stays positional by convention.
            other if other.starts_with('-') && other.len() > 1 => {
                return Err(format!("unknown flag {other}"));
            }
            other => args.rest.push(other.to_string()),
        }
    }
    if args.checkpoint.is_some() && args.resume.is_some() {
        return Err(
            "--checkpoint and --resume are mutually exclusive: --checkpoint starts a fresh \
             journal, --resume continues one"
                .to_string(),
        );
    }
    if args.load.is_some() && (args.checkpoint.is_some() || args.resume.is_some() || args.faults) {
        return Err(
            "--load analyses an existing dataset file; it cannot be combined with the \
             simulation flags --checkpoint/--resume/--faults"
                .to_string(),
        );
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(Scale::Standard, args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Standard);
        assert_eq!(a.seed, 2022);
        assert_eq!(a.threads, None);
        assert_eq!(a.checkpoint, None);
        assert_eq!(a.resume, None);
        assert!(a.rest.is_empty());
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&["--quick", "--seed", "7", "--threads", "4", "fig3", "fig9"]).unwrap();
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.rest, vec!["fig3".to_string(), "fig9".to_string()]);
    }

    #[test]
    fn last_scale_flag_wins() {
        let a = parse(&["--quick", "--full"]).unwrap();
        assert_eq!(a.scale, Scale::Full);
    }

    #[test]
    fn missing_seed_value_errors() {
        let e = parse(&["--seed"]).unwrap_err();
        assert!(e.contains("--seed needs an integer"), "{e}");
    }

    #[test]
    fn bad_seed_value_errors() {
        let e = parse(&["--seed", "twelve"]).unwrap_err();
        assert!(e.contains("--seed needs an integer"), "{e}");
        assert!(e.contains("twelve"), "{e}");
        // A negative seed is also rejected (u64).
        assert!(parse(&["--seed", "-1"]).is_err());
    }

    #[test]
    fn bad_threads_values_error() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        let e = parse(&["--threads", "0"]).unwrap_err();
        assert!(e.contains("positive"), "{e}");
    }

    #[test]
    fn merge_window_flag() {
        assert_eq!(parse(&[]).unwrap().merge_window, None);
        let a = parse(&["--merge-window", "8"]).unwrap();
        assert_eq!(a.merge_window, Some(8));
        assert!(parse(&["--merge-window"]).is_err());
        assert!(parse(&["--merge-window", "four"]).is_err());
        let e = parse(&["--merge-window", "0"]).unwrap_err();
        assert!(e.contains("positive"), "{e}");
        assert_eq!(
            parse(&["--merge-window", "2", "--merge-window", "2"]).unwrap_err(),
            "duplicate flag --merge-window"
        );
        // A pure runtime knob, like --threads: fine alongside --load.
        let a = parse(&["--load", "ds.wcd", "--merge-window", "4"]).unwrap();
        assert_eq!(a.merge_window, Some(4));
    }

    #[test]
    fn unknown_flag_errors() {
        let e = parse(&["--frobnicate"]).unwrap_err();
        assert_eq!(e, "unknown flag --frobnicate");
    }

    #[test]
    fn unknown_single_dash_flag_errors() {
        // Regression: these used to be swallowed into `rest` as if they
        // were experiment ids / output paths.
        let e = parse(&["-q"]).unwrap_err();
        assert_eq!(e, "unknown flag -q");
        assert!(parse(&["-j4"]).is_err());
        // A bare `-` is still a positional argument.
        let a = parse(&["-"]).unwrap();
        assert_eq!(a.rest, vec!["-".to_string()]);
    }

    #[test]
    fn faults_flag() {
        assert!(!parse(&[]).unwrap().faults);
        assert!(parse(&["--faults"]).unwrap().faults);
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        // Regression: `--seed 1 --seed 2` used to resolve last-one-wins,
        // silently dropping the first value.
        let e = parse(&["--seed", "1", "--seed", "2"]).unwrap_err();
        assert_eq!(e, "duplicate flag --seed");
        let e = parse(&["--threads", "2", "--threads", "2"]).unwrap_err();
        assert_eq!(e, "duplicate flag --threads");
        let e = parse(&["--faults", "--faults"]).unwrap_err();
        assert_eq!(e, "duplicate flag --faults");
        // The scale family stays last-one-wins (one logical setting) —
        // including an exact repeat.
        assert_eq!(parse(&["--quick", "--quick"]).unwrap().scale, Scale::Quick);
    }

    #[test]
    fn format_flag() {
        assert_eq!(parse(&[]).unwrap().format, Format::Json);
        assert_eq!(parse(&["--format", "json"]).unwrap().format, Format::Json);
        assert_eq!(parse(&["--format", "bin"]).unwrap().format, Format::Bin);
        let e = parse(&["--format", "csv"]).unwrap_err();
        assert!(e.contains("json or bin"), "{e}");
        assert!(e.contains("csv"), "{e}");
        assert!(parse(&["--format"]).is_err());
        assert_eq!(
            parse(&["--format", "bin", "--format", "json"]).unwrap_err(),
            "duplicate flag --format"
        );
    }

    #[test]
    fn load_flag() {
        let a = parse(&["--load", "ds.wcd", "fig3"]).unwrap();
        assert_eq!(a.load.as_deref(), Some("ds.wcd"));
        assert_eq!(a.rest, vec!["fig3".to_string()]);
        assert!(parse(&["--load"]).is_err());
        // --load replaces simulation; combining with sim-side flags is
        // a contradiction, not a preference.
        for bad in [
            ["--load", "d", "--faults", ""].as_slice(),
            ["--load", "d", "--checkpoint", "c"].as_slice(),
            ["--load", "d", "--resume", "c"].as_slice(),
        ] {
            let argv: Vec<&str> = bad.iter().copied().filter(|s| !s.is_empty()).collect();
            let e = parse(&argv).unwrap_err();
            assert!(e.contains("--load"), "{e}");
        }
    }

    #[test]
    fn checkpoint_and_resume_flags() {
        let a = parse(&["--checkpoint", "ckpt"]).unwrap();
        assert_eq!(a.checkpoint.as_deref(), Some("ckpt"));
        assert_eq!(a.resume, None);
        let a = parse(&["--resume", "ckpt"]).unwrap();
        assert_eq!(a.resume.as_deref(), Some("ckpt"));
        assert!(parse(&["--checkpoint"]).is_err());
        assert!(parse(&["--resume"]).is_err());
        let e = parse(&["--checkpoint", "a", "--resume", "a"]).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
    }
}
