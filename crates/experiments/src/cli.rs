//! Shared, fallible command-line parsing for the `repro` and `dataset`
//! binaries.
//!
//! Parsing returns `Result` instead of exiting, so bad/missing flag
//! values are unit-testable; the binaries map `Err` to an exit code.

use crate::world::Scale;

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Campaign scale (`--quick` / `--standard` / `--full`).
    pub scale: Scale,
    /// Campaign seed (`--seed N`, default 2022).
    pub seed: u64,
    /// Worker-pool cap (`--threads N`, default = host cores). Never
    /// changes any output, only wall time.
    pub threads: Option<usize>,
    /// Enable the demo disruption mix (`--faults`): injected server
    /// outages, app crashes, logger gaps and clock-drift bursts, with
    /// retry/salvage accounting in the quality report.
    pub faults: bool,
    /// Positional arguments (experiment ids for `repro`, the output path
    /// for `dataset`).
    pub rest: Vec<String>,
}

/// Parse the flags shared by the binaries. `default_scale` differs per
/// binary (`repro` defaults to Standard, `dataset` to Quick).
pub fn parse_args(
    default_scale: Scale,
    argv: impl IntoIterator<Item = String>,
) -> Result<Args, String> {
    let mut args = Args {
        scale: default_scale,
        seed: 2022,
        threads: None,
        faults: false,
        rest: Vec::new(),
    };
    let mut iter = argv.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--standard" => args.scale = Scale::Standard,
            "--full" => args.scale = Scale::Full,
            "--seed" => {
                let v = iter.next().ok_or("--seed needs an integer")?;
                args.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got {v:?}"))?;
            }
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a positive integer")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--threads needs a positive integer, got 0".to_string());
                }
                args.threads = Some(n);
            }
            "--faults" => args.faults = true,
            // Reject unknown flags instead of letting them fall through
            // to `rest`: a typo like `--thread 4` or `-q` would otherwise
            // silently become a positional arg (an experiment id / output
            // path) and the user's intent would be dropped. A bare `-`
            // stays positional by convention.
            other if other.starts_with('-') && other.len() > 1 => {
                return Err(format!("unknown flag {other}"));
            }
            other => args.rest.push(other.to_string()),
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(Scale::Standard, args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Standard);
        assert_eq!(a.seed, 2022);
        assert_eq!(a.threads, None);
        assert!(a.rest.is_empty());
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&["--quick", "--seed", "7", "--threads", "4", "fig3", "fig9"]).unwrap();
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.rest, vec!["fig3".to_string(), "fig9".to_string()]);
    }

    #[test]
    fn last_scale_flag_wins() {
        let a = parse(&["--quick", "--full"]).unwrap();
        assert_eq!(a.scale, Scale::Full);
    }

    #[test]
    fn missing_seed_value_errors() {
        let e = parse(&["--seed"]).unwrap_err();
        assert!(e.contains("--seed needs an integer"), "{e}");
    }

    #[test]
    fn bad_seed_value_errors() {
        let e = parse(&["--seed", "twelve"]).unwrap_err();
        assert!(e.contains("--seed needs an integer"), "{e}");
        assert!(e.contains("twelve"), "{e}");
        // A negative seed is also rejected (u64).
        assert!(parse(&["--seed", "-1"]).is_err());
    }

    #[test]
    fn bad_threads_values_error() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        let e = parse(&["--threads", "0"]).unwrap_err();
        assert!(e.contains("positive"), "{e}");
    }

    #[test]
    fn unknown_flag_errors() {
        let e = parse(&["--frobnicate"]).unwrap_err();
        assert_eq!(e, "unknown flag --frobnicate");
    }

    #[test]
    fn unknown_single_dash_flag_errors() {
        // Regression: these used to be swallowed into `rest` as if they
        // were experiment ids / output paths.
        let e = parse(&["-q"]).unwrap_err();
        assert_eq!(e, "unknown flag -q");
        assert!(parse(&["-j4"]).is_err());
        // A bare `-` is still a positional argument.
        let a = parse(&["-"]).unwrap();
        assert_eq!(a.rest, vec!["-".to_string()]);
    }

    #[test]
    fn faults_flag() {
        assert!(!parse(&[]).unwrap().faults);
        assert!(parse(&["--faults"]).unwrap().faults);
    }
}
