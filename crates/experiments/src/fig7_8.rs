//! Figs. 7–8: throughput and RTT against vehicle speed, broken down by
//! technology and the three speed bins.

use wheels_radio::tech::{Direction, Technology};
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::Cdf;
use wheels_sim_core::units::SpeedBin;

use crate::fmt;
use crate::world::World;

/// `(speed bin, tech) → throughput samples` for one operator/direction.
pub fn tput_by_bin_tech(
    world: &World,
    op: Operator,
    dir: Direction,
    bin: SpeedBin,
    tech: Technology,
) -> Vec<f64> {
    world
        .view()
        .tput_bin_tech(op, dir, true, bin, tech)
        .map(|s| s.mbps)
        .collect()
}

/// RTT samples per (bin, tech).
pub fn rtt_by_bin_tech(world: &World, op: Operator, bin: SpeedBin, tech: Technology) -> Vec<f64> {
    world
        .view()
        .rtt_bin_tech(op, true, bin, tech)
        .filter_map(|s| s.rtt_ms)
        .collect()
}

fn render(world: &World, title: &str, rtt: bool) -> String {
    let mut out = format!("{title}\n\n");
    for op in Operator::ALL {
        out.push_str(&format!("{}:\n", op.label()));
        let mut rows = Vec::new();
        for bin in SpeedBin::ALL {
            for tech in Technology::ALL {
                let vals = if rtt {
                    rtt_by_bin_tech(world, op, bin, tech)
                } else {
                    let mut v = tput_by_bin_tech(world, op, Direction::Downlink, bin, tech);
                    v.extend(tput_by_bin_tech(world, op, Direction::Uplink, bin, tech));
                    v
                };
                if vals.is_empty() {
                    continue;
                }
                let c = Cdf::from_samples(vals.iter().copied());
                rows.push(vec![
                    bin.label().to_string(),
                    tech.label().to_string(),
                    vals.len().to_string(),
                    fmt::num(c.median()),
                    fmt::num(c.quantile(0.9)),
                    fmt::num(c.max()),
                ]);
            }
        }
        out.push_str(&fmt::table(
            &["speed bin", "tech", "n", "p50", "p90", "max"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Render Fig. 7 (throughput vs speed).
pub fn run_fig7(world: &World) -> String {
    render(
        world,
        "Fig. 7 — technology-wise throughput by speed bin (driving, Mbps)",
        false,
    )
}

/// Render Fig. 8 (RTT vs speed).
pub fn run_fig8(world: &World) -> String {
    render(
        world,
        "Fig. 8 — technology-wise RTT by speed bin (driving, ms)",
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmwave_tput_only_at_low_speed() {
        // Fig. 7: all mmWave points live in the 0–20 mph region.
        let w = World::quick();
        for op in Operator::ALL {
            for dir in Direction::ALL {
                let high = tput_by_bin_tech(w, op, dir, SpeedBin::High, Technology::Nr5gMmWave);
                assert!(
                    high.is_empty(),
                    "{op:?} {dir:?}: {} mmWave samples at 60+ mph",
                    high.len()
                );
            }
        }
    }

    #[test]
    fn high_values_exist_even_at_high_speed_for_tmobile() {
        // §5.5: several 100s of Mbps at 60+ mph thanks to mid-band.
        let w = World::quick();
        let vals = tput_by_bin_tech(
            w,
            Operator::TMobile,
            Direction::Downlink,
            SpeedBin::High,
            Technology::Nr5gMid,
        );
        if !vals.is_empty() {
            let max = vals.iter().cloned().fold(0.0, f64::max);
            assert!(max > 80.0, "max {max}");
        }
    }

    #[test]
    fn very_low_throughput_points_in_every_bin() {
        // Fig. 7 shows many near-zero points regardless of speed.
        let w = World::quick();
        for bin in SpeedBin::ALL {
            let mut any_low = false;
            for op in Operator::ALL {
                for tech in Technology::ALL {
                    let v = tput_by_bin_tech(w, op, Direction::Downlink, bin, tech);
                    if v.iter().any(|x| *x < 5.0) {
                        any_low = true;
                    }
                }
            }
            assert!(any_low, "no low-throughput points in {bin:?}");
        }
    }

    #[test]
    fn renders_both_figures() {
        let w = World::quick();
        assert!(run_fig7(w).contains("Fig. 7"));
        assert!(run_fig8(w).contains("Fig. 8"));
    }
}
