//! Paper-reported values, transcribed for the paper-vs-measured columns
//! in EXPERIMENTS.md and the shape assertions in integration tests.
//!
//! Only numbers printed in the paper's text/tables are here; CDF shapes
//! are checked structurally (ordering, crossover, factors), not by value.

/// Table 1 — dataset statistics.
pub mod table1 {
    /// Total distance (km).
    pub const DISTANCE_KM: f64 = 5711.0;
    /// Unique cells connected (V, T, A).
    pub const UNIQUE_CELLS: [u32; 3] = [3020, 4038, 3150];
    /// Handovers (V, T, A).
    pub const HANDOVERS: [u32; 3] = [2657, 4119, 2494];
    /// Cellular data: received (GB).
    pub const RX_GB: f64 = 777.0;
    /// Cellular data: transmitted (GB).
    pub const TX_GB: f64 = 83.0;
    /// Total log size (GB).
    pub const LOG_GB: f64 = 388.0;
    /// Cumulative experiment runtime (min): V, T, A.
    pub const RUNTIME_MIN: [f64; 3] = [5561.0, 4595.0, 4541.0];
}

/// Fig. 2 / §4.2 — coverage headlines.
pub mod coverage {
    /// T-Mobile total 5G share of miles (%).
    pub const TMOBILE_5G_PCT: f64 = 68.0;
    /// Verizon/AT&T 5G share band (%).
    pub const VZW_ATT_5G_PCT: (f64, f64) = (18.0, 22.0);
    /// High-speed 5G: T-Mobile (%).
    pub const TMOBILE_HS_PCT: f64 = 38.0;
    /// High-speed 5G: AT&T (%).
    pub const ATT_HS_PCT: f64 = 3.0;
    /// Verizon high-speed 5G in the low-speed bin (%).
    pub const VZW_HS_LOW_SPEED_PCT: f64 = 43.0;
    /// Verizon high-speed 5G in the high-speed bin (%).
    pub const VZW_HS_HIGH_SPEED_PCT: f64 = 13.0;
    /// T-Mobile mid-band share at medium/high speeds (%).
    pub const TMOBILE_HS_MID_SPEED_PCT: f64 = 47.0;
    /// T-Mobile mid-band share at high speeds (%).
    pub const TMOBILE_HS_HIGH_SPEED_PCT: f64 = 33.0;
}

/// Fig. 3 / §5.1 — static vs driving.
pub mod static_vs_driving {
    /// Static DL medians (Mbps): V, A, T.
    pub const STATIC_DL_MEDIAN: [f64; 3] = [1511.0, 710.0, 311.0];
    /// Static DL maxima (Mbps): V, A, T.
    pub const STATIC_DL_MAX: [f64; 3] = [3415.0, 2043.0, 812.0];
    /// Static UL medians (Mbps): V, A, T.
    pub const STATIC_UL_MEDIAN: [f64; 3] = [167.0, 62.0, 39.0];
    /// Static UL maxima (Mbps): V, A, T.
    pub const STATIC_UL_MAX: [f64; 3] = [350.0, 215.0, 137.0];
    /// Driving DL median band across operators (Mbps).
    pub const DRIVING_DL_MEDIAN_BAND: (f64, f64) = (6.0, 34.0);
    /// Driving DL p75 band across operators (Mbps).
    pub const DRIVING_DL_P75_BAND: (f64, f64) = (47.0, 74.0);
    /// Driving UL median band (Mbps).
    pub const DRIVING_UL_MEDIAN_BAND: (f64, f64) = (6.0, 9.0);
    /// Fraction of driving samples below 5 Mbps (both directions).
    pub const LOW_TPUT_FRACTION: f64 = 0.35;
    /// Driving RTT median band (ms).
    pub const DRIVING_RTT_MEDIAN_BAND: (f64, f64) = (60.0, 76.0);
}

/// Fig. 9 / §5.6 — 30-second-scale medians (V, T, A).
pub mod per_test {
    /// Median DL throughput per test (Mbps): V, T, A.
    pub const DL_MEDIAN: [f64; 3] = [30.0, 37.0, 48.0];
    /// Median UL throughput per test (Mbps): V, T, A.
    pub const UL_MEDIAN: [f64; 3] = [13.0, 14.0, 10.0];
    /// Median RTT per test (ms): V, T, A.
    pub const RTT_MEDIAN: [f64; 3] = [64.0, 82.0, 81.0];
    /// Median DL std-dev as % of mean: V, T, A.
    pub const DL_STD_PCT: [f64; 3] = [70.0, 48.0, 52.0];
}

/// Table 3 — Ookla Speedtest Q3-2022 published medians (V, T, A).
pub mod ookla {
    /// Downlink (Mbps).
    pub const DL_MBPS: [f64; 3] = [58.64, 116.14, 57.94];
    /// Uplink (Mbps).
    pub const UL_MBPS: [f64; 3] = [8.30, 10.91, 7.55];
    /// RTT (ms).
    pub const RTT_MS: [f64; 3] = [59.0, 60.0, 61.0];
    /// Our paper's reported medians for the same table (V, T, A).
    pub const PAPER_DL: [f64; 3] = [29.62, 37.09, 48.40];
    /// Paper UL medians.
    pub const PAPER_UL: [f64; 3] = [13.18, 13.77, 9.80];
    /// Paper RTT medians.
    pub const PAPER_RTT: [f64; 3] = [63.71, 81.68, 80.73];
}

/// §6 / Fig. 11 — handover statistics.
pub mod handover {
    /// Median (p75) HOs per mile, DL tests: V, T, A.
    pub const PER_MILE_DL: [(f64, f64); 3] = [(3.0, 6.0), (2.0, 5.0), (2.0, 5.0)];
    /// Median (p75) HOs per mile, UL tests: V, T, A.
    pub const PER_MILE_UL: [(f64, f64); 3] = [(2.0, 5.0), (2.0, 6.0), (1.0, 3.0)];
    /// Median (p75) HO durations (ms), DL tests: V, T, A.
    pub const DURATION_DL_MS: [(f64, f64); 3] = [(53.0, 73.0), (76.0, 107.0), (58.0, 74.0)];
    /// Fraction of HOs with a throughput drop (ΔT₁ < 0).
    pub const DROP_FRACTION: f64 = 0.8;
    /// Fraction of HOs where post-HO throughput improved (ΔT₂ > 0).
    pub const IMPROVE_FRACTION_BAND: (f64, f64) = (0.50, 0.65);
}

/// §7 — application QoE headlines (Verizon).
pub mod apps {
    /// AR best-static E2E (ms).
    pub const AR_STATIC_E2E_MS: f64 = 68.0;
    /// AR best-static offloaded FPS.
    pub const AR_STATIC_FPS: f64 = 12.5;
    /// AR best-static mAP (%).
    pub const AR_STATIC_MAP: f64 = 36.5;
    /// AR driving median E2E with compression (ms).
    pub const AR_DRIVING_E2E_MS: f64 = 214.0;
    /// AR driving median offloaded FPS.
    pub const AR_DRIVING_FPS: f64 = 4.35;
    /// AR driving median mAP (%).
    pub const AR_DRIVING_MAP: f64 = 30.1;
    /// CAV driving median E2E with compression (ms).
    pub const CAV_DRIVING_E2E_MS: f64 = 269.0;
    /// CAV minimum E2E observed during the trip (ms).
    pub const CAV_MIN_E2E_MS: f64 = 148.0;
    /// Video: median driving QoE.
    pub const VIDEO_DRIVING_QOE: f64 = -53.75;
    /// Video: best static QoE.
    pub const VIDEO_STATIC_QOE: f64 = 96.29;
    /// Video: fraction of driving runs with negative QoE.
    pub const VIDEO_NEGATIVE_FRACTION: f64 = 0.4;
    /// Gaming: median driving bitrate (Mbps).
    pub const GAMING_DRIVING_BITRATE: f64 = 17.5;
    /// Gaming: best static bitrate (Mbps).
    pub const GAMING_STATIC_BITRATE: f64 = 98.5;
    /// Gaming: median frame-drop rate (%).
    pub const GAMING_DROP_PCT: f64 = 1.6;
}

#[cfg(test)]
mod tests {
    #[test]
    fn targets_internally_consistent() {
        use super::*;
        // Static DL medians ordered V > A > T in the paper.
        let m = static_vs_driving::STATIC_DL_MEDIAN;
        assert!(m[0] > m[1] && m[1] > m[2]);
        // T-Mobile leads coverage.
        assert!(coverage::TMOBILE_5G_PCT > coverage::VZW_ATT_5G_PCT.1);
        // Ookla DL beats the paper's driving DL for every operator.
        for i in 0..3 {
            assert!(ookla::DL_MBPS[i] > ookla::PAPER_DL[i]);
        }
    }
}
