//! Fig. 11: handover frequency (per mile) and interruption durations.

use wheels_core::analysis::handover;
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;

use crate::fmt;
use crate::world::World;

/// Render the figure.
pub fn run(world: &World) -> String {
    let ds = world.dataset();
    let mut out = String::from("Fig. 11a — handovers per mile during throughput tests\n");
    for dir in Direction::ALL {
        out.push_str(&format!("{}:\n", dir.label()));
        for op in Operator::ALL {
            out.push_str(&format!(
                "  {:<9}: {}\n",
                op.label(),
                fmt::cdf_line(handover::handovers_per_mile(ds, op, dir))
            ));
        }
    }
    out.push_str("\nFig. 11b — handover durations (ms)\n");
    for dir in Direction::ALL {
        out.push_str(&format!("{}:\n", dir.label()));
        for op in Operator::ALL {
            out.push_str(&format!(
                "  {:<9}: {}\n",
                op.label(),
                fmt::cdf_line(handover::durations_ms(ds, op, dir))
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_sim_core::stats::Cdf;

    #[test]
    fn per_mile_medians_low_single_digits() {
        // Fig. 11a: medians 1–3, p75 3–6.
        let w = World::quick();
        for op in Operator::ALL {
            for dir in Direction::ALL {
                let rates = handover::handovers_per_mile(w.dataset(), op, dir);
                if rates.len() < 10 {
                    continue;
                }
                let med = Cdf::from_samples(rates.iter().copied()).median().unwrap();
                assert!((0.0..=8.0).contains(&med), "{op:?} {dir:?}: median {med}");
            }
        }
    }

    #[test]
    fn extreme_tests_exceed_ten_per_mile_somewhere() {
        // The paper saw 20+ per mile in extreme cases; our tail should at
        // least reach several per mile.
        let w = World::quick();
        let mut max = 0.0f64;
        for op in Operator::ALL {
            for dir in Direction::ALL {
                for r in handover::handovers_per_mile(w.dataset(), op, dir) {
                    max = max.max(r);
                }
            }
        }
        assert!(max > 4.0, "max HOs/mile {max}");
    }

    #[test]
    fn duration_medians_match_operator_calibration() {
        // Fig. 11b: V ≈ 53 ms, T ≈ 76 ms, A ≈ 58 ms (DL).
        let w = World::quick();
        let med = |op: Operator| {
            let mut d = handover::durations_ms(w.dataset(), op, Direction::Downlink);
            d.extend(handover::durations_ms(w.dataset(), op, Direction::Uplink));
            Cdf::from_samples(d).median()
        };
        if let (Some(v), Some(t), Some(a)) = (
            med(Operator::Verizon),
            med(Operator::TMobile),
            med(Operator::Att),
        ) {
            assert!(t > v, "T {t} should exceed V {v}");
            assert!((30.0..120.0).contains(&v), "V median {v}");
            assert!((45.0..150.0).contains(&t), "T median {t}");
            assert!((30.0..120.0).contains(&a), "A median {a}");
        }
    }

    #[test]
    fn renders_both_panels() {
        let out = run(World::quick());
        assert!(out.contains("Fig. 11a"));
        assert!(out.contains("Fig. 11b"));
    }
}
