//! The findings digest: the paper's §1 key findings, each checked
//! automatically against the regenerated dataset and reported with the
//! supporting numbers. This is the one-screen answer to "did the
//! reproduction work?".

use wheels_core::analysis::coverage::overall_from;
use wheels_core::analysis::handover::{drop_fraction, improve_fraction};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::Cdf;
use wheels_transport::servers::ServerKind;

use crate::table2;
use crate::world::World;

/// One checked finding.
pub struct Finding {
    /// Paper finding, paraphrased.
    pub claim: &'static str,
    /// Whether the regenerated dataset supports it.
    pub holds: bool,
    /// The supporting numbers.
    pub evidence: String,
}

/// Evaluate all key findings.
pub fn evaluate(world: &World) -> Vec<Finding> {
    let ds = world.dataset();
    let view = world.view();
    let mut out = Vec::new();

    // 1. 5G coverage low and fragmented; T-Mobile leads.
    {
        let t = overall_from(view.coverage_for(Operator::TMobile)).pct_5g();
        let v = overall_from(view.coverage_for(Operator::Verizon)).pct_5g();
        let a = overall_from(view.coverage_for(Operator::Att)).pct_5g();
        out.push(Finding {
            claim: "5G coverage while driving is low and uneven; T-Mobile leads, V/A trail",
            holds: t > v && t > a && v < 40.0 && a < 40.0,
            evidence: format!("5G miles share: T {t:.1}%, V {v:.1}%, A {a:.1}%"),
        });
    }

    // 2. Driving collapses throughput vs static.
    {
        let med = |driving| {
            view.tput_cdf(None, Some(Direction::Downlink), Some(driving))
                .median()
                .unwrap_or(0.0)
        };
        let (s, d) = (med(false), med(true));
        out.push(Finding {
            claim: "network performance deteriorates drastically under driving",
            holds: d < s * 0.25,
            evidence: format!("DL median: static {s:.0} Mbps vs driving {d:.0} Mbps"),
        });
    }

    // 3. Substantial very-low-throughput time even with 5G deployed.
    {
        let frac = view
            .tput_cdf(None, None, Some(true))
            .fraction_at_or_below(5.0)
            * 100.0;
        let hs_frac = Cdf::from_samples(
            view.tput_iter(None, Some(Direction::Downlink), Some(true))
                .filter(|s| s.tech.is_high_speed())
                .map(|s| s.mbps),
        )
        .fraction_at_or_below(10.0)
            * 100.0;
        out.push(Finding {
            claim: "a large fraction of driving time sits below 5 Mbps, even on high-speed 5G",
            holds: frac > 10.0 && hs_frac > 3.0,
            evidence: format!(
                "below 5 Mbps: {frac:.1}% of all driving samples; below 10 Mbps on \
                 mid/mmWave: {hs_frac:.1}%"
            ),
        });
    }

    // 4. Edge servers help.
    {
        let rtt = |kind| {
            Cdf::from_samples(
                view.rtt_iter(Some(Operator::Verizon), Some(true))
                    .filter(|r| r.server == kind)
                    .filter_map(|r| r.rtt_ms),
            )
            .median()
        };
        let (e, c) = (rtt(ServerKind::Edge), rtt(ServerKind::Cloud));
        let holds = match (e, c) {
            (Some(e), Some(c)) => e < c,
            _ => false,
        };
        out.push(Finding {
            claim: "edge servers bring a significant RTT boost over remote cloud",
            holds,
            evidence: format!(
                "Verizon driving RTT median: edge {} ms vs cloud {} ms",
                e.map(|v| format!("{v:.0}")).unwrap_or("-".into()),
                c.map(|v| format!("{v:.0}")).unwrap_or("-".into())
            ),
        });
    }

    // 5. No KPI strongly correlates with throughput.
    {
        let mut max_r: f64 = 0.0;
        for row in table2::rows_for(world) {
            for (_, r) in &row.r {
                if let Some(r) = r {
                    max_r = max_r.max(r.abs());
                }
            }
        }
        out.push(Finding {
            claim: "no single KPI (RSRP/MCS/CA/BLER/speed/HO) strongly predicts throughput",
            holds: max_r < 0.75,
            evidence: format!("largest |r| across all 36 cells: {max_r:.2}"),
        });
    }

    // 6. Handovers: frequent enough, short, and roughly throughput-neutral.
    {
        let imp = view.impacts();
        let drop = drop_fraction(imp) * 100.0;
        let improve = improve_fraction(imp) * 100.0;
        let med_dur = Cdf::from_samples(
            ds.handovers
                .iter()
                .map(|h| h.event.duration.as_millis() as f64),
        )
        .median()
        .unwrap_or(0.0);
        out.push(Finding {
            claim: "handovers are short and their cost is largely repaid post-handover",
            holds: (30.0..150.0).contains(&med_dur)
                && drop > 50.0
                && (40.0..90.0).contains(&improve),
            evidence: format!(
                "median interruption {med_dur:.0} ms; {drop:.0}% of HOs dip during \
                 execution; {improve:.0}% improve afterwards"
            ),
        });
    }

    out
}

/// Render the digest.
pub fn run(world: &World) -> String {
    let findings = evaluate(world);
    let mut out = String::from("Findings digest — the paper's key findings, re-checked\n\n");
    for f in &findings {
        out.push_str(&format!(
            "[{}] {}\n      {}\n",
            if f.holds { "HOLDS " } else { "FAILED" },
            f.claim,
            f.evidence
        ));
    }
    let held = findings.iter().filter(|f| f.holds).count();
    out.push_str(&format!(
        "\n{held}/{} findings reproduced\n",
        findings.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_findings_hold_at_quick_scale() {
        let w = World::quick();
        let findings = evaluate(w);
        assert_eq!(findings.len(), 6);
        for f in &findings {
            assert!(f.holds, "finding failed: {} — {}", f.claim, f.evidence);
        }
    }

    #[test]
    fn digest_renders_verdicts() {
        let out = run(World::quick());
        assert!(out.contains("HOLDS"));
        assert!(out.contains("6/6 findings reproduced"), "{out}");
    }
}
