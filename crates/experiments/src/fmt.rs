//! Text rendering helpers shared by the experiments.

use wheels_sim_core::stats::Cdf;

/// Render a fixed-width table: header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push_str(&fmt_row(
        widths.iter().map(|w| "-".repeat(*w)).collect(),
        &widths,
    ));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// One-line CDF summary: `n / p10 p25 p50 p75 p90 / max`.
pub fn cdf_line(values: impl IntoIterator<Item = f64>) -> String {
    cdf_line_of(&Cdf::from_samples(values))
}

/// [`cdf_line`] for an already-built (e.g. view-memoized) [`Cdf`].
pub fn cdf_line_of(c: &Cdf) -> String {
    match c.summary() {
        None => "n=0".to_string(),
        Some(s) => format!(
            "n={:<6} p10={:<8.2} p25={:<8.2} p50={:<8.2} p75={:<8.2} p90={:<8.2} max={:.2}",
            s.n,
            c.quantile(0.10).expect("summary() was Some, so non-empty"),
            s.p25,
            s.median,
            s.p75,
            s.p90,
            s.max
        ),
    }
}

/// Format an f64 with 2 decimals, or a dash for None/NaN.
pub fn num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.2}"),
        _ => "-".to_string(),
    }
}

/// Format a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["op", "value"],
            &[
                vec!["Verizon".into(), "1.0".into()],
                vec!["T".into(), "123.45".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("op"));
        assert!(lines[2].starts_with("Verizon"));
    }

    #[test]
    fn cdf_line_contents() {
        let line = cdf_line([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(line.contains("n=5"));
        assert!(line.contains("p50=3.00"));
        assert!(line.contains("max=5.00"));
        assert_eq!(cdf_line(std::iter::empty()), "n=0");
    }

    #[test]
    fn num_and_pct() {
        assert_eq!(num(Some(1.234)), "1.23");
        assert_eq!(num(None), "-");
        assert_eq!(num(Some(f64::NAN)), "-");
        assert_eq!(pct(33.333), "33.3%");
    }
}
