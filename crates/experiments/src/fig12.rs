//! Fig. 12: the throughput impact of handovers — ΔT₁ (drop during the HO)
//! and ΔT₂ (post- vs pre-HO), overall and by handover type.

use wheels_core::analysis::handover::{drop_fraction, improve_fraction, HoImpact};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_ran::session::HandoverKind;

use crate::fmt;
use crate::world::World;

/// All impacts for one operator/direction, from the view's memoized set.
pub fn impacts_for(world: &World, op: Operator, dir: Direction) -> Vec<HoImpact> {
    world
        .view()
        .impacts()
        .iter()
        .filter(|i| i.operator == op && i.direction == dir)
        .copied()
        .collect()
}

const KINDS: [HandoverKind; 4] = [
    HandoverKind::Horizontal4g,
    HandoverKind::Horizontal5g,
    HandoverKind::Up4gTo5g,
    HandoverKind::Down5gTo4g,
];

/// Render the figure.
pub fn run(world: &World) -> String {
    let mut out = String::from("Fig. 12 — handover impact on throughput (Mbps)\n\n");
    for dir in Direction::ALL {
        out.push_str(&format!("{}:\n", dir.label()));
        for op in Operator::ALL {
            let imp = impacts_for(world, op, dir);
            if imp.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "  {:<9} dT1 (during-HO): {}  drop-frac={:.0}%\n",
                op.label(),
                fmt::cdf_line(imp.iter().map(|i| i.delta_t1)),
                drop_fraction(&imp) * 100.0
            ));
            out.push_str(&format!(
                "  {:<9} dT2 (post-pre) : {}  improve-frac={:.0}%\n",
                op.label(),
                fmt::cdf_line(imp.iter().map(|i| i.delta_t2)),
                improve_fraction(&imp) * 100.0
            ));
            for kind in KINDS {
                let by_kind: Vec<f64> = imp
                    .iter()
                    .filter(|i| i.kind == kind)
                    .map(|i| i.delta_t2)
                    .collect();
                if by_kind.len() >= 5 {
                    out.push_str(&format!(
                        "    dT2 {:<6}: {}\n",
                        kind.label(),
                        fmt::cdf_line(by_kind)
                    ));
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_impacts() -> Vec<HoImpact> {
        World::quick().view().impacts().to_vec()
    }

    #[test]
    fn handovers_mostly_drop_throughput_during_execution() {
        // Fig. 12a–c: ΔT₁ < 0 about 80% of the time.
        let imp = all_impacts();
        assert!(imp.len() > 30, "impacts {}", imp.len());
        let f = drop_fraction(&imp);
        assert!(f > 0.55, "drop fraction {f}");
    }

    #[test]
    fn post_ho_often_improves() {
        // Fig. 12d–f: ΔT₂ > 0 about 55–60% of the time.
        let imp = all_impacts();
        let f = improve_fraction(&imp);
        assert!((0.30..0.85).contains(&f), "improve fraction {f}");
    }

    #[test]
    fn downgrade_hos_hurt_more_than_upgrades() {
        // 5G→4G lowers post-HO throughput more often than 4G→5G.
        let imp = all_impacts();
        let mean_d = |k: HandoverKind| {
            let v: Vec<f64> = imp
                .iter()
                .filter(|i| i.kind == k)
                .map(|i| i.delta_t2)
                .collect();
            if v.len() < 5 {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        if let (Some(up), Some(down)) = (
            mean_d(HandoverKind::Up4gTo5g),
            mean_d(HandoverKind::Down5gTo4g),
        ) {
            assert!(up > down, "up {up} down {down}");
        }
    }

    #[test]
    fn renders() {
        let out = run(World::quick());
        assert!(out.contains("dT1"));
        assert!(out.contains("dT2"));
    }
}
