//! Fig. 4: per-technology throughput and RTT while driving, with
//! Verizon's edge-vs-cloud split.

use wheels_radio::tech::{Direction, Technology};
use wheels_ran::operator::Operator;
use wheels_transport::servers::ServerKind;

use crate::fmt;
use crate::world::World;

/// Driving throughput samples of one (operator, direction, technology),
/// optionally filtered by server kind.
pub fn tput_samples(
    world: &World,
    op: Operator,
    dir: Direction,
    tech: Technology,
    server: Option<ServerKind>,
) -> Vec<f64> {
    world
        .view()
        .tput_tech(op, dir, true, tech)
        .filter(|s| server.is_none_or(|k| s.server == k))
        .map(|s| s.mbps)
        .collect()
}

/// Driving RTT samples of one (operator, technology).
pub fn rtt_samples(
    world: &World,
    op: Operator,
    tech: Technology,
    server: Option<ServerKind>,
) -> Vec<f64> {
    world
        .view()
        .rtt_tech(op, true, tech)
        .filter(|s| server.is_none_or(|k| s.server == k))
        .filter_map(|s| s.rtt_ms)
        .collect()
}

/// Render the figure.
pub fn run(world: &World) -> String {
    let mut out = String::from("Fig. 4 — per-technology performance while driving\n\n");
    for op in Operator::ALL {
        out.push_str(&format!("{}:\n", op.label()));
        for dir in Direction::ALL {
            for tech in Technology::ALL {
                let vals = tput_samples(world, op, dir, tech, None);
                if vals.is_empty() {
                    continue;
                }
                out.push_str(&format!(
                    "  {} {:<9} tput: {}\n",
                    dir.label(),
                    tech.label(),
                    fmt::cdf_line(vals)
                ));
            }
        }
        for tech in Technology::ALL {
            let vals = rtt_samples(world, op, tech, None);
            if vals.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "  RTT {:<9}    : {}\n",
                tech.label(),
                fmt::cdf_line(vals)
            ));
        }
        out.push('\n');
    }

    out.push_str("Verizon edge vs cloud (driving):\n");
    for kind in [ServerKind::Edge, ServerKind::Cloud] {
        for tech in Technology::ALL {
            let t = tput_samples(
                world,
                Operator::Verizon,
                Direction::Downlink,
                tech,
                Some(kind),
            );
            let r = rtt_samples(world, Operator::Verizon, tech, Some(kind));
            if t.is_empty() && r.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "  {:<5} {:<9} DL: {}\n",
                kind.label(),
                tech.label(),
                fmt::cdf_line(t)
            ));
            if !r.is_empty() {
                out.push_str(&format!(
                    "  {:<5} {:<9} RTT: {}\n",
                    kind.label(),
                    tech.label(),
                    fmt::cdf_line(r)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_sim_core::stats::Cdf;

    fn med(vals: Vec<f64>) -> Option<f64> {
        Cdf::from_samples(vals).median()
    }

    /// Medians over fewer 500 ms bins than this are dominated by *where*
    /// the handful of grants happened, not by the technology (one tput
    /// test contributes 60 bins, so this is ≥5 test windows).
    const MIN_BINS: usize = 300;

    #[test]
    fn five_g_beats_lte_on_dl_throughput() {
        let w = World::quick();
        for op in [Operator::TMobile, Operator::Verizon] {
            let lte = tput_samples(w, op, Direction::Downlink, Technology::Lte, None);
            let mid = tput_samples(w, op, Direction::Downlink, Technology::Nr5gMid, None);
            if lte.len() < MIN_BINS || mid.len() < MIN_BINS {
                continue;
            }
            if let (Some(l), Some(m)) = (med(lte), med(mid)) {
                assert!(m > l, "{op:?}: mid {m} vs lte {l}");
            }
        }
    }

    #[test]
    fn edge_rtt_beats_cloud_for_verizon() {
        let w = World::quick();
        let mut edge_all = Vec::new();
        let mut cloud_all = Vec::new();
        for tech in Technology::ALL {
            edge_all.extend(rtt_samples(
                w,
                Operator::Verizon,
                tech,
                Some(ServerKind::Edge),
            ));
            cloud_all.extend(rtt_samples(
                w,
                Operator::Verizon,
                tech,
                Some(ServerKind::Cloud),
            ));
        }
        if edge_all.len() > 20 && cloud_all.len() > 20 {
            let e = med(edge_all).unwrap();
            let c = med(cloud_all).unwrap();
            assert!(e < c, "edge {e} cloud {c}");
        }
    }

    #[test]
    fn tmobile_midband_reaches_high_dl_rates() {
        // Fig. 4: T-Mobile 5G-mid DL reaches several hundred Mbps driving.
        let w = World::quick();
        let vals = tput_samples(
            w,
            Operator::TMobile,
            Direction::Downlink,
            Technology::Nr5gMid,
            None,
        );
        if !vals.is_empty() {
            let max = vals.iter().cloned().fold(0.0, f64::max);
            assert!(max > 150.0, "T-Mobile mid max {max}");
        }
    }

    #[test]
    fn renders() {
        let out = run(World::quick());
        assert!(out.contains("edge vs cloud"));
        assert!(out.contains("T-Mobile"));
    }
}
