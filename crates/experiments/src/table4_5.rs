//! Tables 4 and 5: the AR/CAV app configuration and the E2E-latency →
//! object-detection-accuracy model.

use wheels_apps::arcav::{accuracy, AppConfig};

use crate::fmt;
use crate::world::World;

/// Render Table 4.
pub fn run_table4(_world: &World) -> String {
    let ar = AppConfig::ar();
    let cav = AppConfig::cav();
    let rows = vec![
        vec!["FPS".into(), format!("{}", ar.fps), format!("{}", cav.fps)],
        vec![
            "Frame size raw (KB)".into(),
            format!("{}", ar.raw_frame_kb),
            format!("{}", cav.raw_frame_kb),
        ],
        vec![
            "Frame size compressed (KB)".into(),
            format!("{}", ar.compressed_frame_kb),
            format!("{}", cav.compressed_frame_kb),
        ],
        vec![
            "Compression time (ms)".into(),
            format!("{}", ar.compression_ms),
            format!("{}", cav.compression_ms),
        ],
        vec![
            "Inference time A100 (ms)".into(),
            format!("{}", ar.inference_ms),
            format!("{}", cav.inference_ms),
        ],
        vec![
            "Decompression time (ms)".into(),
            format!("{}", ar.decompression_ms),
            format!("{}", cav.decompression_ms),
        ],
        vec![
            "Run duration (s)".into(),
            format!("{}", ar.duration_s),
            format!("{}", cav.duration_s),
        ],
    ];
    format!(
        "Table 4 — AR & CAV application configuration\n{}",
        fmt::table(&["parameter", "AR", "CAV"], &rows)
    )
}

/// Render Table 5: the lookup plus our generating tracking-decay model.
pub fn run_table5(_world: &World) -> String {
    let mut rows = Vec::new();
    for bin in 0..30usize {
        rows.push(vec![
            format!("{}-{}", bin, bin + 1),
            format!("{:.2}", accuracy::MAP_RAW[bin]),
            format!("{:.2}", accuracy::MAP_COMPRESSED[bin]),
            format!("{:.2}", accuracy::tracking_decay_model(bin as f64, false)),
            format!("{:.2}", accuracy::tracking_decay_model(bin as f64, true)),
        ]);
    }
    format!(
        "Table 5 — mAP by E2E latency bin (frame times)\n{}",
        fmt::table(
            &[
                "bin",
                "mAP raw",
                "mAP compressed",
                "model raw",
                "model compressed"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_prints_paper_constants() {
        let out = run_table4(World::quick());
        for v in [
            "450", "2000", "50", "38", "6.3", "34.8", "24.9", "44", "19.1",
        ] {
            assert!(out.contains(v), "missing {v} in\n{out}");
        }
    }

    #[test]
    fn table5_model_tracks_lookup() {
        let out = run_table5(World::quick());
        assert!(out.contains("38.45"));
        // Model vs table max error under 3 mAP at every bin.
        for bin in 0..30 {
            let m = accuracy::tracking_decay_model(bin as f64, false);
            let t = accuracy::MAP_RAW[bin];
            assert!((m - t).abs() < 3.0, "bin {bin}: {m} vs {t}");
        }
    }
}
