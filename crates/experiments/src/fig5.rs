//! Fig. 5: throughput CDFs per timezone.

use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::time::Timezone;

use crate::fmt;
use crate::world::World;

/// Driving throughput samples in one timezone.
pub fn samples(world: &World, op: Operator, dir: Direction, tz: Timezone) -> Vec<f64> {
    world
        .view()
        .tput_tz(op, dir, true, tz)
        .map(|s| s.mbps)
        .collect()
}

/// Render the figure.
pub fn run(world: &World) -> String {
    let mut out = String::from("Fig. 5 — throughput by timezone (driving)\n\n");
    for dir in Direction::ALL {
        out.push_str(&format!("{}:\n", dir.label()));
        for op in Operator::ALL {
            for tz in Timezone::ALL {
                let vals = samples(world, op, dir, tz);
                if vals.is_empty() {
                    continue;
                }
                out.push_str(&format!(
                    "  {:<9} {:<4}: {}\n",
                    op.label(),
                    tz.abbrev(),
                    fmt::cdf_line(vals)
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_sim_core::stats::Cdf;

    #[test]
    fn all_timezones_have_samples() {
        let w = World::quick();
        for tz in Timezone::ALL {
            let n: usize = Operator::ALL
                .iter()
                .map(|op| samples(w, *op, Direction::Downlink, tz).len())
                .sum();
            assert!(n > 20, "{tz:?}: {n} samples");
        }
    }

    #[test]
    fn tmobile_strong_in_pacific() {
        // §5.3 obs (1): Pacific is T-Mobile's best region (its mid-band is
        // densest there). Compare with Mountain, its weakest.
        let w = World::quick();
        let pac = Cdf::from_samples(samples(
            w,
            Operator::TMobile,
            Direction::Downlink,
            Timezone::Pacific,
        ))
        .median()
        .unwrap_or(0.0);
        let mtn = Cdf::from_samples(samples(
            w,
            Operator::TMobile,
            Direction::Downlink,
            Timezone::Mountain,
        ))
        .median()
        .unwrap_or(0.0);
        assert!(pac > mtn * 0.5, "pacific {pac} mountain {mtn}");
    }

    #[test]
    fn renders_both_directions() {
        let out = run(World::quick());
        assert!(out.contains("DL:"));
        assert!(out.contains("UL:"));
        assert!(out.contains("PDT"));
        assert!(out.contains("EDT"));
    }
}
