//! Figs. 13–14 (and 18–20): the AR and CAV apps — E2E latency, offloaded
//! frame rate, detection accuracy (AR), latency-vs-5G-time and
//! latency-vs-handover breakdowns.

use wheels_apps::arcav::{accuracy, AppConfig, OffloadStats};
use wheels_core::records::TestKind;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::pearson;
#[cfg(test)]
use wheels_sim_core::stats::Cdf;
use wheels_transport::servers::ServerKind;

use crate::fmt;
use crate::world::World;

/// All driving offload runs of one app/operator/compression.
pub fn runs(
    world: &World,
    op: Operator,
    kind: TestKind,
    compressed: bool,
) -> Vec<(&OffloadStats, ServerKind)> {
    world
        .dataset()
        .apps
        .iter()
        .filter(|a| a.operator == op && a.kind == kind && a.driving)
        .filter_map(|a| {
            let s = a.offload.as_ref()?;
            (s.compressed == compressed).then_some((s, a.server))
        })
        .collect()
}

/// Best-static baseline run for an app config.
pub fn best_static(config: &AppConfig, compressed: bool) -> OffloadStats {
    use wheels_apps::link::{ConstantLink, LinkState};
    let mut link = ConstantLink(LinkState::best_static());
    wheels_apps::arcav::OffloadRun::execute(
        config,
        &mut link,
        wheels_sim_core::time::SimTime::EPOCH,
        compressed,
    )
}

fn render_app(world: &World, op: Operator, kind: TestKind, config: &AppConfig) -> String {
    let mut out = String::new();
    let static_run = best_static(config, !matches!(kind, TestKind::Cav));
    out.push_str(&format!(
        "  best static: E2E median {} ms, {:.1} FPS\n",
        fmt::num(static_run.median_e2e_ms()),
        static_run.offloaded_fps(config.duration_s)
    ));
    for compressed in [false, true] {
        let rs = runs(world, op, kind, compressed);
        if rs.is_empty() {
            continue;
        }
        let e2e: Vec<f64> = rs.iter().filter_map(|(s, _)| s.median_e2e_ms()).collect();
        let fps: Vec<f64> = rs
            .iter()
            .map(|(s, _)| s.offloaded_fps(config.duration_s))
            .collect();
        out.push_str(&format!(
            "  driving {}comp E2E/run (ms): {}\n",
            if compressed { "" } else { "no-" },
            fmt::cdf_line(e2e.iter().copied())
        ));
        out.push_str(&format!(
            "  driving {}comp FPS/run      : {}\n",
            if compressed { "" } else { "no-" },
            fmt::cdf_line(fps)
        ));
        if kind == TestKind::Ar {
            let maps: Vec<f64> = rs
                .iter()
                .filter_map(|(s, _)| {
                    accuracy::mean_map(&s.e2e_ms, config.frame_interval_ms(), compressed)
                })
                .collect();
            out.push_str(&format!(
                "  driving {}comp mAP/run      : {}\n",
                if compressed { "" } else { "no-" },
                fmt::cdf_line(maps)
            ));
        }
        // Edge vs cloud split (Verizon only has edge runs).
        for server in [ServerKind::Edge, ServerKind::Cloud] {
            let sub: Vec<f64> = rs
                .iter()
                .filter(|(_, k)| *k == server)
                .filter_map(|(s, _)| s.median_e2e_ms())
                .collect();
            if sub.len() >= 3 {
                out.push_str(&format!(
                    "    {} E2E: {}\n",
                    server.label(),
                    fmt::cdf_line(sub)
                ));
            }
        }
        // Handover correlation.
        let pairs: Vec<(f64, f64)> = rs
            .iter()
            .filter_map(|(s, _)| Some((s.handovers as f64, s.median_e2e_ms()?)))
            .collect();
        if pairs.len() >= 10 {
            let (hos, e2es): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            out.push_str(&format!(
                "    corr(#HO, E2E) = {}\n",
                fmt::num(pearson(&hos, &e2es))
            ));
        }
    }
    out
}

/// Render Fig. 13 (AR, Verizon).
pub fn run_fig13(world: &World) -> String {
    format!(
        "Fig. 13 — AR application (Verizon)\n{}",
        render_app(world, Operator::Verizon, TestKind::Ar, &AppConfig::ar())
    )
}

/// Render Fig. 14 (CAV, Verizon).
pub fn run_fig14(world: &World) -> String {
    format!(
        "Fig. 14 — CAV application (Verizon)\n{}",
        render_app(world, Operator::Verizon, TestKind::Cav, &AppConfig::cav())
    )
}

/// Render Figs. 18–20 (all three operators).
pub fn run_fig18_20(world: &World) -> String {
    let mut out = String::from("Figs. 18–20 — AR & CAV across operators\n\n");
    for op in Operator::ALL {
        out.push_str(&format!("{} AR:\n", op.label()));
        out.push_str(&render_app(world, op, TestKind::Ar, &AppConfig::ar()));
        out.push_str(&format!("{} CAV:\n", op.label()));
        out.push_str(&render_app(world, op, TestKind::Cav, &AppConfig::cav()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;

    #[test]
    fn driving_ar_much_slower_than_static() {
        // Fig. 13: driving median E2E ~3x the best static 68 ms.
        let w = World::quick();
        let static_run = best_static(&AppConfig::ar(), true);
        let static_med = static_run.median_e2e_ms().unwrap();
        let driving: Vec<f64> = runs(w, Operator::Verizon, TestKind::Ar, true)
            .iter()
            .filter_map(|(s, _)| s.median_e2e_ms())
            .collect();
        assert!(driving.len() >= 5, "driving runs {}", driving.len());
        let med = Cdf::from_samples(driving).median().unwrap();
        assert!(
            med > static_med * 1.5,
            "driving {med} vs static {static_med}"
        );
    }

    #[test]
    fn ar_static_baseline_near_paper() {
        let s = best_static(&AppConfig::ar(), false);
        let e2e = s.median_e2e_ms().unwrap();
        // Paper: 68 ms / 12.5 FPS.
        assert!(
            (e2e - targets::apps::AR_STATIC_E2E_MS).abs() < 40.0,
            "static AR E2E {e2e}"
        );
        let fps = s.offloaded_fps(20);
        assert!((8.0..25.0).contains(&fps), "fps {fps}");
    }

    #[test]
    fn cav_never_hits_100ms_driving() {
        // Fig. 14 / §7.1.2: minimum driving CAV E2E was 148 ms.
        let w = World::quick();
        for compressed in [false, true] {
            for (s, _) in runs(w, Operator::Verizon, TestKind::Cav, compressed) {
                for e in &s.e2e_ms {
                    assert!(*e > 100.0, "CAV E2E {e} ms < 100");
                }
            }
        }
    }

    #[test]
    fn compression_helps_cav_dramatically() {
        // §7.1.2: ~8× median E2E reduction.
        let w = World::quick();
        let med = |compressed: bool| {
            let v: Vec<f64> = runs(w, Operator::Verizon, TestKind::Cav, compressed)
                .iter()
                .filter_map(|(s, _)| s.median_e2e_ms())
                .collect();
            Cdf::from_samples(v).median()
        };
        if let (Some(raw), Some(comp)) = (med(false), med(true)) {
            assert!(raw / comp > 2.0, "raw {raw} comp {comp}");
        }
    }

    #[test]
    fn handovers_do_not_correlate_with_ar_quality() {
        // Fig. 13c: no strong correlation between #HOs and mAP.
        let w = World::quick();
        let rs = runs(w, Operator::Verizon, TestKind::Ar, true);
        let pairs: Vec<(f64, f64)> = rs
            .iter()
            .filter_map(|(s, _)| {
                Some((
                    s.handovers as f64,
                    accuracy::mean_map(&s.e2e_ms, AppConfig::ar().frame_interval_ms(), true)?,
                ))
            })
            .collect();
        if pairs.len() >= 12 {
            let (hos, maps): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            if let Some(r) = pearson(&hos, &maps) {
                assert!(r.abs() < 0.7, "corr(#HO, mAP) = {r}");
            }
        }
    }

    #[test]
    fn renders_all() {
        let w = World::quick();
        assert!(run_fig13(w).contains("Fig. 13"));
        assert!(run_fig14(w).contains("Fig. 14"));
        let all = run_fig18_20(w);
        assert!(all.contains("T-Mobile AR"));
        assert!(all.contains("AT&T CAV"));
    }
}
