//! The shared experiment world: one campaign + dataset per scale.
//!
//! Building the dataset is the expensive part (it simulates days of
//! driving), so experiments share a lazily-built world per scale:
//!
//! - [`Scale::Quick`] — ~35 widely-strided cycles per operator. Seconds to
//!   build; used by tests and `repro --quick`. All four timezones and all
//!   test kinds are represented, at reduced sample counts.
//! - [`Scale::Standard`] — ~200 cycles; the default for `repro`.
//! - [`Scale::Full`] — continuous testing for the whole trip, the paper's
//!   actual protocol. Minutes to build in release mode.

use std::sync::OnceLock;

use wheels_core::campaign::{Campaign, CampaignConfig};
use wheels_core::records::Dataset;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Fast, test-suite-friendly subsample.
    Quick,
    /// Default subsample.
    Standard,
    /// The paper's continuous protocol.
    Full,
}

impl Scale {
    /// Campaign configuration for this scale.
    pub fn config(self) -> CampaignConfig {
        match self {
            Scale::Quick => CampaignConfig {
                cycle_stride_s: 6000,
                ..CampaignConfig::default()
            },
            Scale::Standard => CampaignConfig {
                cycle_stride_s: 800,
                ..CampaignConfig::default()
            },
            Scale::Full => CampaignConfig::default(),
        }
    }
}

/// The shared world.
pub struct World {
    /// The campaign (route, trace, deployments, servers).
    pub campaign: Campaign,
    /// The consolidated dataset.
    pub dataset: Dataset,
    /// The scale it was built at.
    pub scale: Scale,
}

impl World {
    /// Build a fresh world with the reference seed, 2022 (expensive).
    pub fn build(scale: Scale) -> World {
        Self::build_seeded(scale, 2022)
    }

    /// Build a fresh world from an arbitrary seed.
    pub fn build_seeded(scale: Scale, seed: u64) -> World {
        let campaign = Campaign::standard(seed);
        let mut cfg = scale.config();
        cfg.seed = seed;
        let dataset = campaign.run(&cfg);
        World {
            campaign,
            dataset,
            scale,
        }
    }

    /// The shared Quick world (used by tests).
    pub fn quick() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::build(Scale::Quick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_radio::tech::Direction;
    use wheels_sim_core::time::Timezone;

    #[test]
    fn quick_world_spans_all_timezones() {
        let w = World::quick();
        let zones: std::collections::BTreeSet<Timezone> =
            w.dataset.coverage.iter().map(|c| c.tz).collect();
        assert_eq!(zones.len(), 4, "zones {zones:?}");
    }

    #[test]
    fn quick_world_has_all_record_types() {
        let w = World::quick();
        assert!(w.dataset.tput.len() > 1000, "tput {}", w.dataset.tput.len());
        assert!(w.dataset.rtt.len() > 500, "rtt {}", w.dataset.rtt.len());
        assert!(!w.dataset.apps.is_empty());
        assert!(!w.dataset.handovers.is_empty());
        assert!(
            w.dataset
                .tput_where(None, Some(Direction::Uplink), Some(true))
                .count()
                > 300
        );
        // Static baselines present.
        assert!(w.dataset.tput.iter().any(|s| !s.driving));
    }
}
