//! The shared experiment world: one campaign + indexed dataset per scale.
//!
//! Building the dataset is the expensive part (it simulates days of
//! driving), so experiments share a lazily-built world per scale:
//!
//! - [`Scale::Quick`] — ~35 widely-strided cycles per operator. Seconds to
//!   build; used by tests and `repro --quick`. All four timezones and all
//!   test kinds are represented, at reduced sample counts.
//! - [`Scale::Standard`] — ~200 cycles; the default for `repro`.
//! - [`Scale::Full`] — continuous testing for the whole trip, the paper's
//!   actual protocol. Minutes to build in release mode.
//!
//! The dataset lives inside a [`DatasetView`] built once per world, so
//! every experiment shares the same partition indices and memoized Cdfs
//! (and, being `Sync`, the same view backs the parallel runner).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use wheels_core::analysis::view::DatasetView;
use wheels_core::campaign::{Campaign, CampaignConfig, MergeStats};
use wheels_core::checkpoint::{CheckpointError, Fingerprint};
use wheels_core::disrupt::FaultConfig;
use wheels_core::records::{Dataset, ShardRecords};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Fast, test-suite-friendly subsample.
    Quick,
    /// Default subsample.
    Standard,
    /// The paper's continuous protocol.
    Full,
}

impl Scale {
    /// Campaign configuration for this scale.
    pub fn config(self) -> CampaignConfig {
        match self {
            Scale::Quick => CampaignConfig {
                cycle_stride_s: 6000,
                ..CampaignConfig::default()
            },
            Scale::Standard => CampaignConfig {
                cycle_stride_s: 800,
                ..CampaignConfig::default()
            },
            Scale::Full => CampaignConfig::default(),
        }
    }
}

/// Runtime knobs that never change any output: the worker-pool cap and
/// the streaming-merge reorder window. Bundled so the builders don't grow
/// one positional `Option` per knob.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tuning {
    /// Worker-pool cap (`None` = host cores). Affects wall time only.
    pub threads: Option<usize>,
    /// Streaming-merge reorder window (`None` = unbounded): at most this
    /// many completed shards are held resident waiting for plan order.
    /// Affects peak memory only.
    pub merge_window: Option<usize>,
}

/// The shared world.
pub struct World {
    /// The campaign (route, trace, deployments, servers).
    pub campaign: Campaign,
    /// The indexed dataset view (owns the consolidated dataset).
    view: DatasetView,
    /// The scale it was built at.
    pub scale: Scale,
    /// Streaming-merge telemetry from the build (`None` when the world
    /// was loaded or assembled rather than simulated).
    pub merge_stats: Option<MergeStats>,
}

impl World {
    /// Build a fresh world with the reference seed, 2022 (expensive).
    pub fn build(scale: Scale) -> World {
        Self::build_seeded(scale, 2022)
    }

    /// Build a fresh world from an arbitrary seed.
    pub fn build_seeded(scale: Scale, seed: u64) -> World {
        Self::build_with(scale, seed, None)
    }

    /// Build a fresh world, optionally capping the campaign worker pool
    /// (`None` = host cores). Thread count never changes the dataset.
    pub fn build_with(scale: Scale, seed: u64, threads: Option<usize>) -> World {
        Self::build_with_faults(scale, seed, threads, FaultConfig::default())
    }

    /// Build a fresh world with measurement disruptions injected. The
    /// fault schedule is keyed purely by `(seed, operator, segment)`, so
    /// the dataset is still bit-identical at any thread count.
    pub fn build_with_faults(
        scale: Scale,
        seed: u64,
        threads: Option<usize>,
        faults: FaultConfig,
    ) -> World {
        Self::build_tuned(
            scale,
            seed,
            Tuning {
                threads,
                ..Tuning::default()
            },
            faults,
        )
    }

    /// Build a fresh world with the full set of runtime knobs. Neither
    /// knob changes the dataset: threads move wall time, the merge window
    /// moves peak memory, and the bytes are identical either way.
    ///
    /// `--merge-window` without `--checkpoint` is well-defined: spilling
    /// an out-of-window shard needs a journal, so the builder provisions
    /// a **temporary** one (removed after the merge) instead of rejecting
    /// the combination. If the temp journal cannot be created the build
    /// falls back to the in-memory backpressure merge — same bytes,
    /// workers may stall at the window instead of spilling.
    pub fn build_tuned(scale: Scale, seed: u64, tuning: Tuning, faults: FaultConfig) -> World {
        let (campaign, cfg) = Self::campaign_for(scale, seed, tuning, faults);
        let (dataset, stats) = if cfg.merge_window.is_some() {
            let dir = Self::spill_dir(scale, seed);
            let spilled = campaign.run_checkpointed_with_stats(&cfg, &dir, false);
            let _ = std::fs::remove_dir_all(&dir);
            match spilled {
                Ok(out) => out,
                Err(_) => campaign.run_with_stats(&cfg),
            }
        } else {
            campaign.run_with_stats(&cfg)
        };
        World {
            campaign,
            view: DatasetView::new(dataset),
            scale,
            merge_stats: Some(stats),
        }
    }

    /// A collision-free scratch directory for the windowed-merge spill
    /// journal. Derived from pid + seed + a process-wide counter — no
    /// wall clock, no randomness.
    fn spill_dir(scale: Scale, seed: u64) -> PathBuf {
        static SPILL: AtomicUsize = AtomicUsize::new(0);
        let n = SPILL.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "wheels-spill-{}-{scale:?}-{seed}-{n}",
            std::process::id()
        ))
    }

    /// Build a fresh world with crash-safe checkpointing: completed
    /// campaign shards are journalled to `dir` as they finish. With
    /// `resume = true` the journal in `dir` is verified against this
    /// run's fingerprint and its shards replay instead of re-simulating;
    /// the resulting dataset is bit-identical to an uninterrupted
    /// [`World::build_with_faults`] at the same config.
    pub fn build_checkpointed(
        scale: Scale,
        seed: u64,
        tuning: Tuning,
        faults: FaultConfig,
        dir: &Path,
        resume: bool,
    ) -> Result<World, CheckpointError> {
        let (campaign, cfg) = Self::campaign_for(scale, seed, tuning, faults);
        let (dataset, stats) = campaign.run_checkpointed_with_stats(&cfg, dir, resume)?;
        Ok(World {
            campaign,
            view: DatasetView::new(dataset),
            scale,
            merge_stats: Some(stats),
        })
    }

    /// Build a world around an already-materialized dataset (the
    /// `repro --load` path): no simulation runs — the campaign object is
    /// constructed for its route/deployment metadata only, and the view
    /// indexes the given tables directly.
    pub fn from_dataset(scale: Scale, seed: u64, dataset: Dataset) -> World {
        World {
            campaign: Campaign::standard(seed),
            view: DatasetView::new(dataset),
            scale,
            merge_stats: None,
        }
    }

    /// Build a world around an existing [`DatasetView`] — the
    /// `wheels-serve` path: the server replays a checkpoint journal into
    /// a view (or starts from an empty one) and then splices live shards
    /// in via [`World::ingest_shard`] while experiments query it.
    pub fn from_view(scale: Scale, seed: u64, view: DatasetView) -> World {
        World {
            campaign: Campaign::standard(seed),
            view,
            scale,
            merge_stats: None,
        }
    }

    /// Splice one campaign shard into the world's view incrementally
    /// (arrival order, targeted memo invalidation) — the live-ingest
    /// half of the `wheels-serve` loop.
    pub fn ingest_shard(&mut self, records: ShardRecords) {
        self.view.ingest_shard(records);
    }

    /// The checkpoint-journal identity of a `(scale, seed, faults)` run —
    /// what `wheels-serve` verifies before tailing a journal. Runtime
    /// knobs (threads, merge window) are deliberately outside the
    /// identity, exactly as in the checkpoint layer.
    pub fn fingerprint_for(scale: Scale, seed: u64, faults: FaultConfig) -> Fingerprint {
        let (campaign, cfg) = Self::campaign_for(scale, seed, Tuning::default(), faults);
        campaign.fingerprint(&cfg)
    }

    /// The campaign + config every builder shares.
    fn campaign_for(
        scale: Scale,
        seed: u64,
        tuning: Tuning,
        faults: FaultConfig,
    ) -> (Campaign, CampaignConfig) {
        let campaign = Campaign::standard(seed);
        let mut cfg = scale.config();
        cfg.seed = seed;
        cfg.faults = faults;
        if tuning.threads.is_some() {
            cfg.threads = tuning.threads;
        }
        if tuning.merge_window.is_some() {
            cfg.merge_window = tuning.merge_window;
        }
        (campaign, cfg)
    }

    /// The consolidated dataset (normalized).
    pub fn dataset(&self) -> &Dataset {
        self.view.dataset()
    }

    /// The indexed view over the dataset.
    pub fn view(&self) -> &DatasetView {
        &self.view
    }

    /// The shared Quick world (used by tests).
    pub fn quick() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::build(Scale::Quick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_radio::tech::Direction;
    use wheels_sim_core::time::Timezone;

    #[test]
    fn quick_world_spans_all_timezones() {
        let w = World::quick();
        let zones: std::collections::BTreeSet<Timezone> =
            w.dataset().coverage.iter().map(|c| c.tz).collect();
        assert_eq!(zones.len(), 4, "zones {zones:?}");
    }

    #[test]
    fn quick_world_has_all_record_types() {
        let w = World::quick();
        let ds = w.dataset();
        assert!(ds.tput.len() > 1000, "tput {}", ds.tput.len());
        assert!(ds.rtt.len() > 500, "rtt {}", ds.rtt.len());
        assert!(!ds.apps.is_empty());
        assert!(!ds.handovers.is_empty());
        assert!(
            ds.tput_where(None, Some(Direction::Uplink), Some(true))
                .count()
                > 300
        );
        // Static baselines present.
        assert!(ds.tput.iter().any(|s| !s.driving));
    }

    #[test]
    fn merge_window_without_checkpoint_spills_through_a_temp_journal() {
        // Pins the documented `--merge-window`-without-`--checkpoint`
        // semantics: the build provisions a temp spill journal (rather
        // than rejecting the combination), honors the residency bound,
        // reports the merge telemetry, and produces bytes identical to
        // the unwindowed build.
        let w = World::build_tuned(
            Scale::Quick,
            2022,
            Tuning {
                threads: Some(2),
                merge_window: Some(1),
            },
            FaultConfig::default(),
        );
        let stats = w.merge_stats.expect("simulated builds report merge stats");
        assert!(
            stats.peak_resident <= 1,
            "window=1 violated: {} shards resident",
            stats.peak_resident
        );
        assert_eq!(
            serde_json::to_string(w.dataset()).expect("dataset serializes"),
            serde_json::to_string(World::quick().dataset()).expect("dataset serializes"),
            "merge window must never change the dataset bytes"
        );
    }

    #[test]
    fn view_matches_brute_force_on_quick_world() {
        let w = World::quick();
        let ds = w.dataset();
        let view_dl: Vec<f64> = w
            .view()
            .tput_iter(None, Some(Direction::Downlink), Some(true))
            .map(|s| s.mbps)
            .collect();
        let brute_dl: Vec<f64> = ds
            .tput_where(None, Some(Direction::Downlink), Some(true))
            .map(|s| s.mbps)
            .collect();
        assert_eq!(view_dl, brute_dl);
    }
}
