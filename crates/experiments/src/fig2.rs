//! Fig. 2: technology coverage as a percentage of miles driven —
//! overall (a), by traffic direction (b), by timezone (c), by speed bin (d).

use wheels_core::analysis::coverage;
use wheels_radio::tech::{Direction, Technology};
use wheels_ran::operator::Operator;
use wheels_sim_core::time::Timezone;
use wheels_sim_core::units::SpeedBin;

use crate::fmt;
use crate::world::World;

fn share_row(label: String, s: &coverage::TechShare) -> Vec<String> {
    let mut row = vec![label];
    for t in Technology::ALL {
        row.push(fmt::pct(s.pct(t)));
    }
    row.push(fmt::pct(s.pct_5g()));
    row.push(fmt::pct(s.pct_high_speed()));
    row
}

const HEADERS: [&str; 8] = [
    "group",
    "LTE",
    "LTE-A",
    "5G-low",
    "5G-mid",
    "mmWave",
    "5G total",
    "high-speed",
];

/// Render Fig. 2a–d.
pub fn run(world: &World) -> String {
    let mut out = String::from("Fig. 2a — overall technology share of miles driven\n");
    let mut rows = Vec::new();
    for op in Operator::ALL {
        rows.push(share_row(
            op.label().to_string(),
            &world.view().coverage_share(op),
        ));
    }
    out.push_str(&fmt::table(&HEADERS, &rows));

    out.push_str("\nFig. 2b — coverage by backlogged traffic direction\n");
    let mut rows = Vec::new();
    for op in Operator::ALL {
        let by_dir = world.view().coverage_share_by_direction(op);
        for dir in Direction::ALL {
            if let Some(s) = by_dir.get(&dir) {
                rows.push(share_row(format!("{} {}", op.label(), dir.label()), s));
            }
        }
    }
    out.push_str(&fmt::table(&HEADERS, &rows));

    out.push_str("\nFig. 2c — coverage by timezone\n");
    let mut rows = Vec::new();
    for op in Operator::ALL {
        let by_tz = world.view().coverage_share_by_timezone(op);
        for tz in Timezone::ALL {
            if let Some(s) = by_tz.get(&tz) {
                rows.push(share_row(format!("{} {}", op.label(), tz.abbrev()), s));
            }
        }
    }
    out.push_str(&fmt::table(&HEADERS, &rows));

    out.push_str("\nFig. 2d — coverage by speed bin\n");
    let mut rows = Vec::new();
    for op in Operator::ALL {
        let by_sb = world.view().coverage_share_by_speed_bin(op);
        for sb in SpeedBin::ALL {
            if let Some(s) = by_sb.get(&sb) {
                rows.push(share_row(format!("{} {}", op.label(), sb.label()), s));
            }
        }
    }
    out.push_str(&fmt::table(&HEADERS, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;

    #[test]
    fn tmobile_has_highest_5g_share() {
        let w = World::quick();
        let t = w.view().coverage_share(Operator::TMobile).pct_5g();
        let v = w.view().coverage_share(Operator::Verizon).pct_5g();
        let a = w.view().coverage_share(Operator::Att).pct_5g();
        assert!(t > v && t > a, "T {t} V {v} A {a}");
        // Shape: T-Mobile's share should be in the vicinity of the paper's
        // 68% (we accept a broad band at quick scale).
        assert!(
            (targets::coverage::TMOBILE_5G_PCT - t).abs() < 25.0,
            "T-Mobile 5G {t}%"
        );
    }

    #[test]
    fn att_high_speed_is_smallest() {
        let w = World::quick();
        let a = w.view().coverage_share(Operator::Att).pct_high_speed();
        let t = w.view().coverage_share(Operator::TMobile).pct_high_speed();
        let v = w.view().coverage_share(Operator::Verizon).pct_high_speed();
        assert!(a < v && a < t, "A {a} V {v} T {t}");
        assert!(a < 12.0, "AT&T high-speed {a}%");
    }

    #[test]
    fn downlink_gets_more_high_speed_than_uplink() {
        let w = World::quick();
        for op in Operator::ALL {
            let by_dir = w.view().coverage_share_by_direction(op);
            let dl = by_dir[&Direction::Downlink].pct_high_speed();
            let ul = by_dir[&Direction::Uplink].pct_high_speed();
            assert!(dl > ul, "{op:?}: DL {dl} UL {ul}");
        }
    }

    #[test]
    fn high_speed_coverage_declines_with_speed_for_verizon() {
        let w = World::quick();
        let by_sb = w.view().coverage_share_by_speed_bin(Operator::Verizon);
        let low = by_sb[&SpeedBin::Low].pct_high_speed();
        let high = by_sb[&SpeedBin::High].pct_high_speed();
        assert!(low > high, "low-bin {low} vs high-bin {high}");
    }

    #[test]
    fn renders_all_four_panels() {
        let w = World::quick();
        let out = run(w);
        for p in ["Fig. 2a", "Fig. 2b", "Fig. 2c", "Fig. 2d"] {
            assert!(out.contains(p), "missing {p}");
        }
    }
}
