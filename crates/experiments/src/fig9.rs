//! Fig. 9: per-test (30 s / 20 s) means and within-test variability.

use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::Cdf;

use crate::fmt;
use crate::world::World;

/// Per-test mean throughputs for one operator/direction (driving).
pub fn test_means(world: &World, op: Operator, dir: Direction) -> Vec<f64> {
    per_test(world, op, dir)
        .into_iter()
        .map(|(m, _)| m)
        .collect()
}

/// Per-test std-dev as % of mean.
pub fn test_std_pcts(world: &World, op: Operator, dir: Direction) -> Vec<f64> {
    per_test(world, op, dir)
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

fn per_test(world: &World, op: Operator, dir: Direction) -> Vec<(f64, f64)> {
    world
        .view()
        .tput_tests(Some(op), Some(dir), Some(true))
        .map(|(_, samples)| samples.map(|s| s.mbps).collect::<Vec<f64>>())
        .filter(|v| v.len() >= 20)
        .map(|v| {
            let c = Cdf::from_samples(v.iter().copied());
            let s = c.summary().expect("v.len() >= 20 filtered above");
            (s.mean, s.std_dev_pct_of_mean())
        })
        .collect()
}

/// Per-test mean RTTs (driving).
pub fn rtt_means(world: &World, op: Operator) -> Vec<f64> {
    world
        .view()
        .rtt_tests(Some(op), Some(true))
        .map(|(_, samples)| samples.filter_map(|s| s.rtt_ms).collect::<Vec<f64>>())
        .filter(|v| v.len() >= 30)
        .map(|v| v.iter().sum::<f64>() / v.len() as f64)
        .collect()
}

/// Render the figure.
pub fn run(world: &World) -> String {
    let mut out = String::from("Fig. 9 — per-test averages and within-test variability\n\n");
    for op in Operator::ALL {
        out.push_str(&format!("{}:\n", op.label()));
        for dir in Direction::ALL {
            out.push_str(&format!(
                "  {} mean tput/test : {}\n",
                dir.label(),
                fmt::cdf_line(test_means(world, op, dir))
            ));
            out.push_str(&format!(
                "  {} stddev %of mean: {}\n",
                dir.label(),
                fmt::cdf_line(test_std_pcts(world, op, dir))
            ));
        }
        out.push_str(&format!(
            "  RTT mean/test     : {}\n\n",
            fmt::cdf_line(rtt_means(world, op))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;

    #[test]
    fn per_test_medians_in_paper_regime() {
        // Fig. 9: DL medians ~30–48 Mbps, UL ~10–14 Mbps. Allow wide bands
        // at quick scale but assert the order of magnitude.
        let w = World::quick();
        for op in Operator::ALL {
            let dl = Cdf::from_samples(test_means(w, op, Direction::Downlink))
                .median()
                .unwrap();
            assert!((5.0..150.0).contains(&dl), "{op:?} DL median {dl}");
            let ul = Cdf::from_samples(test_means(w, op, Direction::Uplink))
                .median()
                .unwrap();
            assert!((1.0..60.0).contains(&ul), "{op:?} UL median {ul}");
            assert!(dl > ul, "{op:?}: dl {dl} ul {ul}");
        }
        let _ = targets::per_test::DL_MEDIAN;
    }

    #[test]
    fn within_test_variability_is_high() {
        // Fig. 9 lower row: median stddev ~44–70% of the mean.
        let w = World::quick();
        let mut all = Vec::new();
        for op in Operator::ALL {
            all.extend(test_std_pcts(w, op, Direction::Downlink));
        }
        let med = Cdf::from_samples(all).median().unwrap();
        assert!(med > 15.0, "median stddev% {med}");
    }

    #[test]
    fn per_test_rtt_medians() {
        let w = World::quick();
        for op in Operator::ALL {
            let vals = rtt_means(w, op);
            if vals.is_empty() {
                continue;
            }
            let med = Cdf::from_samples(vals).median().unwrap();
            assert!((35.0..130.0).contains(&med), "{op:?} RTT/test median {med}");
        }
    }

    #[test]
    fn renders() {
        let out = run(World::quick());
        assert!(out.contains("mean tput/test"));
        assert!(out.contains("stddev"));
    }
}
