//! Fig. 15 (and 21): 360° video streaming QoE.

use wheels_apps::video::VideoStats;
use wheels_core::records::TestKind;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::pearson;
#[cfg(test)]
use wheels_sim_core::stats::Cdf;
use wheels_transport::servers::ServerKind;

use crate::fmt;
use crate::world::World;

/// All driving video runs for one operator.
pub fn runs(world: &World, op: Operator) -> Vec<(&VideoStats, ServerKind)> {
    world
        .dataset()
        .apps
        .iter()
        .filter(|a| a.operator == op && a.kind == TestKind::Video && a.driving)
        .filter_map(|a| Some((a.video.as_ref()?, a.server)))
        .collect()
}

/// Best-static baseline QoE.
pub fn best_static_qoe() -> f64 {
    use wheels_apps::link::{ConstantLink, LinkState};
    let mut link = ConstantLink(LinkState::best_static());
    wheels_apps::video::VideoRun::execute(&mut link, wheels_sim_core::time::SimTime::EPOCH)
        .avg_qoe()
}

fn render_op(world: &World, op: Operator) -> String {
    let rs = runs(world, op);
    if rs.is_empty() {
        return "  (no runs)\n".into();
    }
    let qoes: Vec<f64> = rs.iter().map(|(s, _)| s.avg_qoe()).collect();
    let rebuf: Vec<f64> = rs.iter().map(|(s, _)| s.rebuffer_pct()).collect();
    let rates: Vec<f64> = rs.iter().map(|(s, _)| s.avg_bitrate()).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "  QoE/run      : {}\n",
        fmt::cdf_line(qoes.iter().copied())
    ));
    out.push_str(&format!("  rebuffer %   : {}\n", fmt::cdf_line(rebuf)));
    out.push_str(&format!("  bitrate Mbps : {}\n", fmt::cdf_line(rates)));
    let neg = qoes.iter().filter(|q| **q < 0.0).count() as f64 / qoes.len() as f64;
    out.push_str(&format!("  negative-QoE runs: {}\n", fmt::pct(neg * 100.0)));
    // Edge vs cloud.
    for server in [ServerKind::Edge, ServerKind::Cloud] {
        let sub: Vec<f64> = rs
            .iter()
            .filter(|(_, k)| *k == server)
            .map(|(s, _)| s.avg_qoe())
            .collect();
        if sub.len() >= 3 {
            out.push_str(&format!(
                "  {} QoE: {}\n",
                server.label(),
                fmt::cdf_line(sub)
            ));
        }
    }
    // High-speed-5G and handover relationships.
    let (h, q): (Vec<f64>, Vec<f64>) = rs
        .iter()
        .map(|(s, _)| (s.high_speed_5g_fraction, s.avg_qoe()))
        .unzip();
    out.push_str(&format!(
        "  corr(hs5G%, QoE) = {}\n",
        fmt::num(pearson(&h, &q))
    ));
    let (hos, q2): (Vec<f64>, Vec<f64>) = rs
        .iter()
        .map(|(s, _)| (s.handovers as f64, s.avg_qoe()))
        .unzip();
    out.push_str(&format!(
        "  corr(#HO, QoE)   = {}\n",
        fmt::num(pearson(&hos, &q2))
    ));
    out
}

/// Render Fig. 15 (Verizon).
pub fn run(world: &World) -> String {
    format!(
        "Fig. 15 — 360° video streaming (Verizon)\n  best static QoE: {:.2}\n{}",
        best_static_qoe(),
        render_op(world, Operator::Verizon)
    )
}

/// Render Fig. 21 (all operators).
pub fn run_all_ops(world: &World) -> String {
    let mut out = String::from("Fig. 21 — 360° video streaming across operators\n");
    for op in Operator::ALL {
        out.push_str(&format!("{}:\n{}", op.label(), render_op(world, op)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;

    #[test]
    fn driving_qoe_far_below_static() {
        let w = World::quick();
        let stat = best_static_qoe();
        assert!(stat > 80.0, "static QoE {stat}");
        let rs = runs(w, Operator::Verizon);
        assert!(rs.len() >= 5, "runs {}", rs.len());
        let med = Cdf::from_samples(rs.iter().map(|(s, _)| s.avg_qoe()))
            .median()
            .unwrap();
        assert!(
            med < stat - 40.0,
            "driving median QoE {med} vs static {stat}"
        );
    }

    #[test]
    fn substantial_negative_qoe_fraction() {
        // Fig. 15a: ~40% of driving runs have negative QoE.
        let w = World::quick();
        let mut qoes = Vec::new();
        for op in Operator::ALL {
            qoes.extend(runs(w, op).iter().map(|(s, _)| s.avg_qoe()));
        }
        let neg = qoes.iter().filter(|q| **q < 0.0).count() as f64 / qoes.len() as f64;
        assert!(
            (0.08..0.9).contains(&neg),
            "negative fraction {neg} (target ~{})",
            targets::apps::VIDEO_NEGATIVE_FRACTION
        );
    }

    #[test]
    fn rebuffering_happens_while_driving() {
        let w = World::quick();
        let mut any = false;
        for op in Operator::ALL {
            for (s, _) in runs(w, op) {
                if s.rebuffer_pct() > 5.0 {
                    any = true;
                }
            }
        }
        assert!(any, "no run rebuffered >5%");
    }

    #[test]
    fn renders() {
        let w = World::quick();
        assert!(run(w).contains("best static QoE"));
        assert!(run_all_ops(w).contains("AT&T"));
    }
}
