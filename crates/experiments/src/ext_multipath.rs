//! Extension: multi-connectivity (the paper's recommendation #2).
//!
//! §5.4/§8: *"performance under driving can benefit significantly from
//! multi-connectivity solutions, e.g., over Multipath TCP, that can
//! aggregate links from multiple operators"*. Because the three phones
//! measured concurrently, the dataset supports a what-if: for every 500 ms
//! bin with samples from all three operators, compare
//!
//! - the **single-home** throughput (each operator alone),
//! - **best-of** (an ideal switcher always on the best operator),
//! - **bonded** (an ideal MPTCP aggregating all three).

use std::collections::BTreeMap;

use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::Cdf;

use crate::fmt;
use crate::world::World;

/// One concurrent bin with all three operators present.
#[derive(Debug, Clone, Copy)]
pub struct TriSample {
    /// Per-operator Mbps in `Operator::ALL` order.
    pub mbps: [f64; 3],
}

impl TriSample {
    /// Best single operator.
    pub fn best_of(&self) -> f64 {
        self.mbps.iter().cloned().fold(0.0, f64::max)
    }

    /// Ideal aggregation of all three.
    pub fn bonded(&self) -> f64 {
        self.mbps.iter().sum()
    }
}

/// Collect all bins where all three operators have a driving sample.
pub fn tri_samples(world: &World, dir: Direction) -> Vec<TriSample> {
    let mut by_bin: BTreeMap<u64, [Option<f64>; 3]> = BTreeMap::new();
    for s in world.view().tput_iter(None, Some(dir), Some(true)) {
        let idx = s.operator.index();
        by_bin.entry(s.t.as_millis() / 500).or_default()[idx] = Some(s.mbps);
    }
    let mut out: Vec<TriSample> = by_bin
        .into_values()
        .filter_map(|v| {
            Some(TriSample {
                mbps: [v[0]?, v[1]?, v[2]?],
            })
        })
        .collect();
    out.sort_by(|a, b| a.bonded().total_cmp(&b.bonded()));
    out
}

/// Median multi-connectivity gain over the best single operator.
pub fn median_bonding_gain(samples: &[TriSample]) -> Option<f64> {
    Cdf::from_samples(
        samples
            .iter()
            .filter(|s| s.best_of() > 0.5)
            .map(|s| s.bonded() / s.best_of()),
    )
    .median()
}

/// Replay the concurrent bins through a real [`MptcpFlow`] (one CUBIC
/// subflow per operator, each paying its own slow start and recovery) and
/// return 500 ms goodput samples. The per-operator throughput samples are
/// treated as the subflows' link rates, each bin lasting 500 ms.
pub fn realistic_mptcp_samples(tri: &[TriSample]) -> Vec<f64> {
    use wheels_sim_core::units::DataRate;
    use wheels_transport::mptcp::MptcpFlow;
    let mut bond = MptcpFlow::new(3);
    let rtts = [60.0, 60.0, 60.0];
    let mut out = Vec::with_capacity(tri.len());
    for s in tri {
        let links: Vec<DataRate> = s.mbps.iter().map(|m| DataRate::from_mbps(*m)).collect();
        let mut bytes = 0.0;
        for _ in 0..50 {
            bytes += bond.advance(10.0, &links, &rtts).delivered_bytes;
        }
        out.push(bytes * 8.0 / 1e6 / 0.5);
    }
    out
}

/// Render the extension.
pub fn run(world: &World) -> String {
    let mut out =
        String::from("Extension — multi-connectivity what-if (the paper's recommendation #2)\n\n");
    for dir in Direction::ALL {
        let tri = tri_samples(world, dir);
        if tri.len() < 20 {
            out.push_str(&format!("{}: insufficient concurrent bins\n", dir.label()));
            continue;
        }
        out.push_str(&format!(
            "{} ({} concurrent bins):\n",
            dir.label(),
            tri.len()
        ));
        for (i, op) in Operator::ALL.iter().enumerate() {
            out.push_str(&format!(
                "  single {:<9}: {}\n",
                op.label(),
                fmt::cdf_line(tri.iter().map(|s| s.mbps[i]))
            ));
        }
        out.push_str(&format!(
            "  best-of-three   : {}\n",
            fmt::cdf_line(tri.iter().map(|s| s.best_of()))
        ));
        out.push_str(&format!(
            "  bonded (ideal)  : {}\n",
            fmt::cdf_line(tri.iter().map(|s| s.bonded()))
        ));
        let realistic = realistic_mptcp_samples(&tri);
        out.push_str(&format!(
            "  bonded (MPTCP)  : {}\n",
            fmt::cdf_line(realistic.iter().copied())
        ));
        // The paper's strongest argument: multi-connectivity rescues the
        // *tail* — the fraction of time below 5 Mbps.
        let below5 = |vals: Vec<f64>| Cdf::from_samples(vals).fraction_at_or_below(5.0) * 100.0;
        let singles: f64 = (0..3)
            .map(|i| below5(tri.iter().map(|s| s.mbps[i]).collect()))
            .sum::<f64>()
            / 3.0;
        out.push_str(&format!(
            "  time below 5 Mbps: single avg {:.1}%  best-of {:.1}%  bonded {:.1}%\n",
            singles,
            below5(tri.iter().map(|s| s.best_of()).collect()),
            below5(tri.iter().map(|s| s.bonded()).collect()),
        ));
        if let Some(g) = median_bonding_gain(&tri) {
            out.push_str(&format!(
                "  median bonding gain over best single: {g:.2}x\n"
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonded_dominates_best_of_dominates_singles() {
        let w = World::quick();
        for dir in Direction::ALL {
            let tri = tri_samples(w, dir);
            assert!(tri.len() > 50, "{dir:?}: {} bins", tri.len());
            for s in &tri {
                assert!(s.bonded() >= s.best_of() - 1e-9);
                for m in s.mbps {
                    assert!(s.best_of() >= m - 1e-9);
                }
            }
        }
    }

    #[test]
    fn multiconnectivity_rescues_the_tail() {
        // Best-of-three has a much smaller below-5-Mbps fraction than any
        // single operator — the paper's §5.4 argument.
        let w = World::quick();
        let tri = tri_samples(w, Direction::Downlink);
        let below5 = |vals: Vec<f64>| Cdf::from_samples(vals).fraction_at_or_below(5.0);
        let single_avg: f64 = (0..3)
            .map(|i| below5(tri.iter().map(|s| s.mbps[i]).collect()))
            .sum::<f64>()
            / 3.0;
        let best = below5(tri.iter().map(|s| s.best_of()).collect());
        assert!(
            best < single_avg * 0.6,
            "single avg {single_avg} vs best-of {best}"
        );
    }

    #[test]
    fn bonding_gain_is_substantial() {
        let w = World::quick();
        let tri = tri_samples(w, Direction::Downlink);
        let g = median_bonding_gain(&tri).unwrap();
        assert!(g > 1.2 && g < 3.5, "gain {g}");
    }

    #[test]
    fn realistic_mptcp_between_best_of_and_ideal() {
        let w = World::quick();
        let tri = tri_samples(w, Direction::Downlink);
        let realistic = realistic_mptcp_samples(&tri);
        let med = |v: Vec<f64>| Cdf::from_samples(v).median().unwrap();
        let m_real = med(realistic);
        let m_ideal = med(tri.iter().map(|s| s.bonded()).collect());
        let m_single_best = med(tri.iter().map(|s| s.best_of()).collect());
        assert!(m_real <= m_ideal + 1e-6, "real {m_real} ideal {m_ideal}");
        assert!(
            m_real > m_single_best * 0.8,
            "real {m_real} vs best single {m_single_best}"
        );
    }

    #[test]
    fn renders() {
        let out = run(World::quick());
        assert!(out.contains("bonded (MPTCP)"));
        assert!(out.contains("bonded (ideal)"));
        assert!(out.contains("below 5 Mbps"));
    }
}
