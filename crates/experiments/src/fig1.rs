//! Fig. 1: passive (handover-logger) vs active (XCAL under backlog)
//! coverage along the route.
//!
//! The paper's point: the two views disagree wildly because operators
//! upgrade to 5G only under load. We regenerate both views — the passive
//! one by running the 200 ms ICMP logger over (a subsample of) the trip,
//! the active one from the campaign's coverage samples — and print each
//! operator's per-segment dominant technology as a route strip plus the
//! headline 5G percentages.

use wheels_core::analysis::coverage::{route_profile, TechShare};
use wheels_radio::tech::Technology;
use wheels_ran::operator::Operator;
use wheels_sim_core::rng::SimRng;
use wheels_ue::hologger::HandoverLogger;

use crate::fmt;
use crate::world::World;

/// Strip segment width (miles).
const SEGMENT_MILES: f64 = 50.0;

fn tech_char(t: Option<Technology>) -> char {
    match t {
        None => '.',
        Some(Technology::Lte) => 'l',
        Some(Technology::LteA) => 'L',
        Some(Technology::Nr5gLow) => '5',
        Some(Technology::Nr5gMid) => 'M',
        Some(Technology::Nr5gMmWave) => 'W',
    }
}

/// Passive view: run the handover-logger over trace subsamples.
pub fn passive_profile(world: &World, op: Operator) -> (Vec<(f64, Option<Technology>)>, TechShare) {
    let trace = &world.campaign.trace;
    let dep = world.campaign.deployment(op);
    let n = trace.samples().len();
    // Subsample: 60-second chunks every ~20 minutes keep this cheap while
    // covering the whole route.
    let mut points = Vec::new();
    let mut share = TechShare::default();
    let chunk = 60;
    let stride = 1200;
    let mut start = 0;
    while start + chunk < n {
        // The logger rows are in lockstep with the trace (5 rows per trace
        // second), so route positions come straight from the trace.
        let rows = HandoverLogger::run(
            dep,
            trace,
            start,
            start + chunk,
            SimRng::seed(7).split(&format!("fig1/{}/{start}", op.label())),
        );
        for (i, r) in rows.iter().enumerate() {
            let s = &trace.samples()[start + i / 5];
            points.push((s.odo.as_miles(), r.tech));
            share.add(r.tech, s.speed.as_mph() * 0.2 / 3600.0);
        }
        start += stride;
    }
    (points, share)
}

/// Active view: the campaign's coverage samples mapped to route miles.
pub fn active_profile(world: &World, op: Operator) -> (Vec<(f64, Option<Technology>)>, TechShare) {
    let trace = &world.campaign.trace;
    let mut points = Vec::new();
    let mut share = TechShare::default();
    for c in world.view().coverage_for(op) {
        if let Some(s) = trace.sample_at(c.t) {
            points.push((s.odo.as_miles(), c.tech));
            share.add(c.tech, c.miles);
        }
    }
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    (points, share)
}

/// Render the figure.
pub fn run(world: &World) -> String {
    let mut out = String::from(
        "Fig. 1 — coverage along the route: passive handover-logger vs active XCAL\n\
         strip legend: l=LTE L=LTE-A 5=5G-low M=5G-mid W=mmWave .=no data\n\n",
    );
    let mut rows = Vec::new();
    for op in Operator::ALL {
        let (ppts, pshare) = passive_profile(world, op);
        let (apts, ashare) = active_profile(world, op);
        let pstrip: String = route_profile(&ppts, SEGMENT_MILES)
            .iter()
            .map(|(_, t)| tech_char(*t))
            .collect();
        let astrip: String = route_profile(&apts, SEGMENT_MILES)
            .iter()
            .map(|(_, t)| tech_char(*t))
            .collect();
        out.push_str(&format!("{} passive: {}\n", op.label(), pstrip));
        out.push_str(&format!("{} active : {}\n\n", op.label(), astrip));
        rows.push(vec![
            op.label().to_string(),
            fmt::pct(pshare.pct_5g()),
            fmt::pct(ashare.pct_5g()),
        ]);
    }
    out.push_str(&fmt::table(
        &["operator", "passive 5G share", "active 5G share"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_underreports_5g_for_all_operators() {
        let w = World::quick();
        for op in Operator::ALL {
            let (_, passive) = passive_profile(w, op);
            let (_, active) = active_profile(w, op);
            assert!(
                passive.pct_5g() < active.pct_5g(),
                "{op:?}: passive {} active {}",
                passive.pct_5g(),
                active.pct_5g()
            );
        }
    }

    #[test]
    fn att_passive_is_pure_4g() {
        // Fig. 1d: AT&T's handover-logger saw LTE/LTE-A only.
        let w = World::quick();
        let (_, passive) = passive_profile(w, Operator::Att);
        assert!(passive.pct_5g() < 1.0, "{}", passive.pct_5g());
    }

    #[test]
    fn renders_strips() {
        let w = World::quick();
        let out = run(w);
        assert!(out.contains("passive:"));
        assert!(out.contains("active :"));
        assert!(out.contains("T-Mobile"));
    }
}
