//! Table 2: Pearson correlation between throughput and the KPIs.

use wheels_core::analysis::correlation::{CorrelationRow, Kpi};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;

use crate::fmt;
use crate::world::World;

/// All six Table-2 rows, computed by the batched columnar kernel over
/// the view's partition indices.
pub fn rows_for(world: &World) -> Vec<CorrelationRow> {
    let v = world.view();
    let mut out = Vec::new();
    for op in Operator::ALL {
        for dir in Direction::ALL {
            out.push(v.tput_correlation(op, dir, true));
        }
    }
    out
}

/// Render the table.
pub fn run(world: &World) -> String {
    let rows_data = rows_for(world);
    let mut rows = Vec::new();
    for r in &rows_data {
        let mut row = vec![
            format!("{} {}", r.operator.label(), r.direction.label()),
            r.n.to_string(),
        ];
        for kpi in Kpi::ALL {
            row.push(fmt::num(r.get(kpi)));
        }
        rows.push(row);
    }
    let mut rho_rows = Vec::new();
    for r in &rows_data {
        let mut row = vec![
            format!("{} {}", r.operator.label(), r.direction.label()),
            r.n.to_string(),
        ];
        for kpi in Kpi::ALL {
            row.push(fmt::num(r.get_rho(kpi)));
        }
        rho_rows.push(row);
    }
    format!(
        "Table 2 — Pearson correlation of 500 ms throughput vs KPIs\n{}\n\
         Robustness check — Spearman rank correlation (same cells)\n{}",
        fmt::table(
            &["operator", "n", "RSRP", "MCS", "CA", "BLER", "Speed", "HO"],
            &rows
        ),
        fmt::table(
            &["operator", "n", "RSRP", "MCS", "CA", "BLER", "Speed", "HO"],
            &rho_rows
        )
    )
}

/// Convenience: one row's r values.
pub fn row(world: &World, op: Operator, dir: Direction) -> Vec<(Kpi, Option<f64>)> {
    world.view().tput_correlation(op, dir, true).r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlate(w: &World, op: Operator, dir: Direction) -> CorrelationRow {
        w.view().tput_correlation(op, dir, true)
    }

    #[test]
    fn no_kpi_strongly_correlates() {
        // The paper's headline: every |r| < ~0.65.
        let w = World::quick();
        for op in Operator::ALL {
            for dir in Direction::ALL {
                let row = correlate(w, op, dir);
                assert!(row.n > 200, "{op:?} {dir:?}: n={}", row.n);
                assert!(
                    row.no_strong_correlation(0.75),
                    "{op:?} {dir:?}: {:?}",
                    row.r
                );
            }
        }
    }

    #[test]
    fn handover_correlation_is_negligible() {
        // Table 2: HO column between -0.05 and -0.02 everywhere.
        let w = World::quick();
        for op in Operator::ALL {
            for dir in Direction::ALL {
                let row = correlate(w, op, dir);
                if let Some(r) = row.get(Kpi::Handovers) {
                    assert!(r.abs() < 0.2, "{op:?} {dir:?}: HO r={r}");
                }
            }
        }
    }

    #[test]
    fn speed_correlation_weak_negative() {
        // Table 2: speed r between -0.37 and -0.10. At Quick scale some
        // rows sit inside the estimator's noise band around zero and
        // their signs are coin flips, so only rows that clear |r| > 0.1
        // count toward the sign tally.
        let w = World::quick();
        let mut neg = 0;
        let mut pos = 0;
        for op in Operator::ALL {
            for dir in Direction::ALL {
                if let Some(r) = correlate(w, op, dir).get(Kpi::Speed) {
                    assert!(r.abs() < 0.65, "{op:?} {dir:?}: speed r={r}");
                    if r < -0.1 {
                        neg += 1;
                    } else if r > 0.1 {
                        pos += 1;
                    }
                }
            }
        }
        assert!(
            neg > pos,
            "speed should lean negative: {neg} clearly negative vs {pos} clearly positive"
        );
    }

    #[test]
    fn mcs_correlation_positive() {
        // Table 2: MCS r is positive everywhere (0.23–0.62).
        let w = World::quick();
        for op in Operator::ALL {
            for dir in Direction::ALL {
                if let Some(r) = correlate(w, op, dir).get(Kpi::Mcs) {
                    assert!(r > 0.0, "{op:?} {dir:?}: MCS r={r}");
                }
            }
        }
    }

    #[test]
    fn renders_six_rows_per_table() {
        let out = run(World::quick());
        assert_eq!(out.matches("Verizon").count(), 4);
        assert_eq!(out.matches("AT&T").count(), 4);
        assert!(out.contains("Spearman"));
    }

    #[test]
    fn spearman_agrees_with_pearson_on_sign_for_strong_cells() {
        // For cells where |r| > 0.3, rank correlation should agree in sign
        // (the relationships are monotone, just heavy-tailed).
        let w = World::quick();
        for op in Operator::ALL {
            for dir in Direction::ALL {
                let row = correlate(w, op, dir);
                for kpi in Kpi::ALL {
                    if let (Some(r), Some(rho)) = (row.get(kpi), row.get_rho(kpi)) {
                        if r.abs() > 0.3 && rho.abs() > 0.1 {
                            assert_eq!(
                                r.signum(),
                                rho.signum(),
                                "{op:?} {dir:?} {kpi:?}: r {r} rho {rho}"
                            );
                        }
                    }
                }
            }
        }
    }
}
