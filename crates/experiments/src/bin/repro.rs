//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick|--standard|--full] [--seed N] [--threads N]
//!       [--merge-window N] [--faults]
//!       [--checkpoint DIR | --resume DIR] [--load FILE] [ids...]
//! repro --list
//! ```
//!
//! `--load FILE` skips the simulation and analyses an exported dataset
//! instead. The format is auto-detected: a WCD1 file (from
//! `dataset --format bin`) loads without a parse step — checksummed bulk
//! column copies — while anything else is read as the pinned JSON
//! interchange format.
//!
//! `--faults` injects the demo measurement-disruption mix (server
//! outages, app crashes, logger gaps, clock drift); the `quality`
//! experiment then reports retry/salvage/loss accounting. Off by
//! default, and the default dataset is unchanged by this feature.
//!
//! `--checkpoint DIR` journals each completed campaign shard to `DIR`;
//! a run killed mid-campaign restarts with `--resume DIR`, replaying the
//! journalled shards and re-simulating only the missing ones. The report
//! is byte-identical to an uninterrupted run.
//!
//! With no ids, every experiment runs. Experiments execute on a worker
//! pool (`--threads N`, default = host cores) with output buffered per
//! experiment and printed in registry order, so stdout is byte-identical
//! at any thread count. `--merge-window N` bounds the campaign merge to
//! at most N resident completed shards (the rest spill through the
//! checkpoint journal) — like `--threads`, it never changes any output,
//! only peak memory. Run in release mode; `--full` is the paper's
//! continuous protocol and takes minutes.

use std::io::Write;

use wheels_core::disrupt::FaultConfig;
use wheels_experiments::world::{Scale, Tuning, World};
use wheels_experiments::{cli, registry, render_report, resolve};

/// Write report output to stdout, exiting 0 quietly on a broken pipe
/// (`repro ... | head` closing early is normal Unix usage, not an
/// error) and 1 with a diagnostic on any other write failure.
fn write_stdout_or_exit(bytes: &[u8]) {
    let mut out = std::io::stdout().lock();
    let done = out.write_all(bytes).and_then(|()| out.flush());
    if let Err(e) = done {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("cannot write report to stdout: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--list") {
        let mut listing = String::new();
        for (id, desc, _) in registry() {
            listing.push_str(&format!("{id:<8} {desc}\n"));
        }
        write_stdout_or_exit(listing.as_bytes());
        return;
    }
    let args = cli::parse_args(Scale::Standard, argv).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let ids = if args.rest.is_empty() {
        registry().iter().map(|(id, _, _)| id.to_string()).collect()
    } else {
        args.rest.clone()
    };
    let exps = resolve(&ids).unwrap_or_else(|id| {
        eprintln!("unknown experiment id: {id} (try --list)");
        std::process::exit(2);
    });

    eprintln!(
        "building world at scale {:?} (seed {})...",
        args.scale, args.seed
    );
    let t0 = std::time::Instant::now();
    let faults = if args.faults {
        FaultConfig::demo()
    } else {
        FaultConfig::default()
    };
    let world = if let Some(path) = &args.load {
        let bytes = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let (ds, fmt) = wheels_core::column::load_dataset(&bytes).unwrap_or_else(|e| {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("loaded {path} ({fmt} format, {} bytes)", bytes.len());
        Ok(World::from_dataset(args.scale, args.seed, ds))
    } else {
        let tuning = Tuning {
            threads: args.threads,
            merge_window: args.merge_window,
        };
        match (&args.checkpoint, &args.resume) {
            (Some(dir), _) => World::build_checkpointed(
                args.scale,
                args.seed,
                tuning,
                faults,
                std::path::Path::new(dir),
                false,
            ),
            (_, Some(dir)) => World::build_checkpointed(
                args.scale,
                args.seed,
                tuning,
                faults,
                std::path::Path::new(dir),
                true,
            ),
            _ => Ok(World::build_tuned(args.scale, args.seed, tuning, faults)),
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let ds = world.dataset();
    eprintln!(
        "world ready in {:.1}s: {} tput samples, {} rtt samples, {} app runs, {} handovers",
        t0.elapsed().as_secs_f64(),
        ds.tput.len(),
        ds.rtt.len(),
        ds.apps.len(),
        ds.handovers.len()
    );

    let report = render_report(&world, &exps, args.threads);
    write_stdout_or_exit(report.as_bytes());
}
