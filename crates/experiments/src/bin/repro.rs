//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick|--standard|--full] [--seed N] [ids...]
//! repro --list
//! ```
//!
//! With no ids, every experiment runs. Run in release mode; `--full` is
//! the paper's continuous protocol and takes minutes.

use std::io::Write;

use wheels_experiments::world::{Scale, World};
use wheels_experiments::{registry, run_by_id};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (id, desc, _) in registry() {
            println!("{id:<8} {desc}");
        }
        return;
    }
    let mut scale = Scale::Standard;
    let mut seed: u64 = 2022;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--standard" => scale = Scale::Standard,
            "--full" => scale = Scale::Full,
            "--seed" => {
                seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = registry().iter().map(|(id, _, _)| id.to_string()).collect();
    }

    eprintln!("building world at scale {scale:?} (seed {seed})...");
    let t0 = std::time::Instant::now();
    let world = World::build_seeded(scale, seed);
    eprintln!(
        "world ready in {:.1}s: {} tput samples, {} rtt samples, {} app runs, {} handovers",
        t0.elapsed().as_secs_f64(),
        world.dataset.tput.len(),
        world.dataset.rtt.len(),
        world.dataset.apps.len(),
        world.dataset.handovers.len()
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &ids {
        match run_by_id(&world, id) {
            Some(text) => {
                writeln!(out, "{}", "=".repeat(78)).unwrap();
                writeln!(out, "{text}").unwrap();
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }
}
