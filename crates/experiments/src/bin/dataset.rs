//! `dataset` — export the consolidated dataset.
//!
//! The paper publishes its dataset on GitHub; our substitute is a seeded
//! regeneration. This binary builds the world at the chosen scale and
//! writes the full consolidated database (typed tables: throughput
//! samples, RTT samples, coverage rows, test runs, handovers, app runs,
//! plus the Table 1 accounting) as a single document.
//!
//! ```text
//! dataset [--quick|--standard|--full] [--seed N] [--threads N]
//!         [--merge-window N] [--faults]
//!         [--checkpoint DIR | --resume DIR] [--format json|bin] [output]
//! ```
//!
//! `--format json` (default) emits the pinned JSON interchange schema,
//! byte-stable across releases. `--format bin` emits the WCD1 columnar
//! binary format — the fast cache/transport layer `repro --load`
//! auto-detects and loads without a parse step.
//!
//! `--faults` injects the demo disruption mix; the exported `audits`
//! table then carries the retry/salvage/loss ledger.
//!
//! `--checkpoint DIR` journals each completed campaign shard to `DIR` so
//! a killed export can be restarted with `--resume DIR`, replaying the
//! finished shards and re-simulating only the rest — the output is
//! byte-identical either way.
//!
//! With no output path, the document goes to stdout. File output lands
//! via a temp file + atomic rename, so a crash mid-write never leaves a
//! truncated file at the output path.

use std::io::Write;
use std::path::Path;

/// `dataset | head` closing stdout early is normal Unix usage: exit 0
/// quietly instead of failing. No-op for every other error kind.
fn exit_broken_pipe_quietly(e: &std::io::Error) {
    if e.kind() == std::io::ErrorKind::BrokenPipe {
        std::process::exit(0);
    }
}

use wheels_core::checkpoint::write_atomic;
use wheels_core::column::wcd;
use wheels_core::disrupt::FaultConfig;
use wheels_experiments::cli::{self, Format};
use wheels_experiments::world::{Scale, Tuning, World};

fn main() {
    let args = cli::parse_args(Scale::Quick, std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let out_path = args.rest.into_iter().last();

    eprintln!(
        "building world at scale {:?} (seed {})...",
        args.scale, args.seed
    );
    let faults = if args.faults {
        FaultConfig::demo()
    } else {
        FaultConfig::default()
    };
    let tuning = Tuning {
        threads: args.threads,
        merge_window: args.merge_window,
    };
    let world = match (&args.checkpoint, &args.resume) {
        (Some(dir), _) => {
            World::build_checkpointed(args.scale, args.seed, tuning, faults, Path::new(dir), false)
        }
        (_, Some(dir)) => {
            World::build_checkpointed(args.scale, args.seed, tuning, faults, Path::new(dir), true)
        }
        _ => Ok(World::build_tuned(args.scale, args.seed, tuning, faults)),
    }
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let ds = world.dataset();
    eprintln!(
        "serializing {} tput / {} rtt / {} coverage / {} runs / {} handovers / {} app runs",
        ds.tput.len(),
        ds.rtt.len(),
        ds.coverage.len(),
        ds.runs.len(),
        ds.handovers.len(),
        ds.apps.len()
    );
    match args.format {
        Format::Json => {
            let bytes = serde_json::to_string(ds)
                .expect("dataset serializes")
                .into_bytes();
            match out_path {
                Some(p) => {
                    if let Err(e) = write_atomic(Path::new(&p), &bytes) {
                        eprintln!("cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {p} ({} MB)", bytes.len() / 1_000_000);
                }
                None => {
                    if let Err(e) = std::io::stdout().lock().write_all(&bytes) {
                        exit_broken_pipe_quietly(&e);
                        eprintln!("cannot write dataset to stdout: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        // The world's view already holds the columnar twin; the binary
        // export streams its sections straight to the sink (temp file +
        // atomic rename, or stdout) — the full encoded image never
        // exists in memory, so peak RSS stays near the dataset itself.
        Format::Bin => {
            let cols = world.view().columns();
            match out_path {
                Some(p) => {
                    let path = Path::new(&p);
                    if let Err(e) = wcd::write_file(path, cols) {
                        eprintln!("cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    let written = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                    eprintln!("wrote {p} ({} MB)", written / 1_000_000);
                }
                None => {
                    let mut w = std::io::BufWriter::new(std::io::stdout().lock());
                    let streamed = wcd::encode_to(cols, &mut w)
                        .and_then(|()| w.flush().map_err(wcd::WcdError::from));
                    if let Err(e) = streamed {
                        if let wcd::WcdError::Io(io) = &e {
                            exit_broken_pipe_quietly(io);
                        }
                        eprintln!("cannot write dataset to stdout: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}
