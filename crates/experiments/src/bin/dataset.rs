//! `dataset` — export the consolidated dataset as JSON.
//!
//! The paper publishes its dataset on GitHub; our substitute is a seeded
//! regeneration. This binary builds the world at the chosen scale and
//! writes the full consolidated database (typed tables: throughput
//! samples, RTT samples, coverage rows, test runs, handovers, app runs,
//! plus the Table 1 accounting) as a single JSON document.
//!
//! ```text
//! dataset [--quick|--standard|--full] [--seed N] [--threads N] [--faults] [output.json]
//! ```
//!
//! `--faults` injects the demo disruption mix; the exported `audits`
//! table then carries the retry/salvage/loss ledger.
//!
//! With no output path, JSON goes to stdout.

use std::io::Write;

use wheels_core::disrupt::FaultConfig;
use wheels_experiments::cli;
use wheels_experiments::world::{Scale, World};

fn main() {
    let args = cli::parse_args(Scale::Quick, std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let out_path = args.rest.into_iter().last();

    eprintln!(
        "building world at scale {:?} (seed {})...",
        args.scale, args.seed
    );
    let faults = if args.faults {
        FaultConfig::demo()
    } else {
        FaultConfig::default()
    };
    let world = World::build_with_faults(args.scale, args.seed, args.threads, faults);
    let ds = world.dataset();
    eprintln!(
        "serializing {} tput / {} rtt / {} coverage / {} runs / {} handovers / {} app runs",
        ds.tput.len(),
        ds.rtt.len(),
        ds.coverage.len(),
        ds.runs.len(),
        ds.handovers.len(),
        ds.apps.len()
    );
    let json = serde_json::to_string(ds).expect("dataset serializes");
    match out_path {
        Some(p) => {
            std::fs::write(&p, json.as_bytes()).expect("write output file");
            eprintln!("wrote {p} ({} MB)", json.len() / 1_000_000);
        }
        None => {
            std::io::stdout()
                .lock()
                .write_all(json.as_bytes())
                .expect("write stdout");
        }
    }
}
