//! `dataset` — export the consolidated dataset as JSON.
//!
//! The paper publishes its dataset on GitHub; our substitute is a seeded
//! regeneration. This binary builds the world at the chosen scale and
//! writes the full consolidated database (typed tables: throughput
//! samples, RTT samples, coverage rows, test runs, handovers, app runs,
//! plus the Table 1 accounting) as a single JSON document.
//!
//! ```text
//! dataset [--quick|--standard|--full] [--seed N] [output.json]
//! ```
//!
//! With no output path, JSON goes to stdout.

use std::io::Write;

use wheels_experiments::world::{Scale, World};

fn main() {
    let mut scale = Scale::Quick;
    let mut seed: u64 = 2022;
    let mut out_path: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--standard" => scale = Scale::Standard,
            "--full" => scale = Scale::Full,
            "--seed" => {
                seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => out_path = Some(other.to_string()),
        }
    }

    eprintln!("building world at scale {scale:?} (seed {seed})...");
    let world = World::build_seeded(scale, seed);
    eprintln!(
        "serializing {} tput / {} rtt / {} coverage / {} runs / {} handovers / {} app runs",
        world.dataset.tput.len(),
        world.dataset.rtt.len(),
        world.dataset.coverage.len(),
        world.dataset.runs.len(),
        world.dataset.handovers.len(),
        world.dataset.apps.len()
    );
    let json = serde_json::to_string(&world.dataset).expect("dataset serializes");
    match out_path {
        Some(p) => {
            std::fs::write(&p, json.as_bytes()).expect("write output file");
            eprintln!("wrote {p} ({} MB)", json.len() / 1_000_000);
        }
        None => {
            std::io::stdout()
                .lock()
                .write_all(json.as_bytes())
                .expect("write stdout");
        }
    }
}
