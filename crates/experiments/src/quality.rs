//! Data-quality report: measurement-disruption accounting.
//!
//! The paper's campaign lost tests to server outages, app crashes, XCAL
//! logger gaps, and clock drift (challenge \[C2\]); the authors tracked
//! what survived and what had to be discarded. This report aggregates the
//! per-test audit trail ([`wheels_core::records::TestAudit`]) the campaign
//! keeps even when fault injection is off: per operator × trace day, how
//! many tests were attempted, completed cleanly, salvaged as partials,
//! needed retries, or were lost outright — and the sample-level ledger
//! (planned vs recorded vs lost 500 ms / 200 ms samples).
//!
//! With faults disabled (the default) every row shows a clean campaign:
//! all tests completed on the first attempt, zero loss. Run `repro
//! --faults` to see the demo disruption mix.

use std::collections::BTreeMap;

use wheels_core::records::{Dataset, TestStatus};
use wheels_ran::operator::Operator;

use crate::fmt;
use crate::world::World;

/// Aggregated audit counters for one operator × day group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityRow {
    /// Tests scheduled (every audit, whatever its outcome).
    pub attempted: u32,
    /// Tests that recorded every planned sample.
    pub completed: u32,
    /// Truncated tests salvaged with a partial sample set.
    pub partial: u32,
    /// Tests that needed more than one attempt (any outcome).
    pub retried: u32,
    /// Tests that recorded nothing.
    pub lost: u32,
    /// Samples the fault-free schedule would have recorded.
    pub planned_samples: u64,
    /// Samples actually recorded.
    pub recorded_samples: u64,
    /// Samples lost to disruptions.
    pub lost_samples: u64,
}

impl QualityRow {
    fn absorb(&mut self, status: TestStatus, attempts: u32, planned: u32, recorded: u32) {
        self.attempted += 1;
        match status {
            TestStatus::Completed => self.completed += 1,
            TestStatus::Partial => self.partial += 1,
            TestStatus::Lost => self.lost += 1,
        }
        if attempts > 1 {
            self.retried += 1;
        }
        self.planned_samples += u64::from(planned);
        self.recorded_samples += u64::from(recorded);
        self.lost_samples += u64::from(planned.saturating_sub(recorded));
    }
}

/// Aggregate the dataset's audit trail per (operator, trace day),
/// sorted by operator then day.
pub fn summarize(ds: &Dataset) -> BTreeMap<(Operator, u8), QualityRow> {
    let mut groups: BTreeMap<(Operator, u8), QualityRow> = BTreeMap::new();
    for a in &ds.audits {
        groups.entry((a.operator, a.day)).or_default().absorb(
            a.status,
            a.attempts,
            a.planned_samples,
            a.recorded_samples,
        );
    }
    groups
}

/// Render the data-quality report.
pub fn run(world: &World) -> String {
    let ds = world.dataset();
    let groups = summarize(ds);

    let mut rows = Vec::new();
    let mut total = QualityRow::default();
    for ((op, day), row) in &groups {
        total.attempted += row.attempted;
        total.completed += row.completed;
        total.partial += row.partial;
        total.retried += row.retried;
        total.lost += row.lost;
        total.planned_samples += row.planned_samples;
        total.recorded_samples += row.recorded_samples;
        total.lost_samples += row.lost_samples;
        rows.push(render_row(&format!("{} d{day}", op.label()), row));
    }
    rows.push(render_row("all", &total));

    let salvage = if total.planned_samples == 0 {
        100.0
    } else {
        100.0 * total.recorded_samples as f64 / total.planned_samples as f64
    };
    let mut out = String::from("Data quality: disruption accounting per operator x day\n\n");
    out.push_str(&fmt::table(
        &[
            "group", "tests", "done", "part", "retry", "lost", "planned", "kept", "dropped",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nsample salvage rate: {} ({} of {} planned samples recorded)\n",
        fmt::pct(salvage),
        total.recorded_samples,
        total.planned_samples,
    ));
    out
}

fn render_row(label: &str, r: &QualityRow) -> Vec<String> {
    vec![
        label.to_string(),
        r.attempted.to_string(),
        r.completed.to_string(),
        r.partial.to_string(),
        r.retried.to_string(),
        r.lost.to_string(),
        r.planned_samples.to_string(),
        r.recorded_samples.to_string(),
        r.lost_samples.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_core::records::{TestAudit, TestKind};
    use wheels_sim_core::time::SimTime;

    fn audit(
        op: Operator,
        day: u8,
        status: TestStatus,
        attempts: u32,
        planned: u32,
        recorded: u32,
    ) -> TestAudit {
        TestAudit {
            test_id: 1,
            operator: op,
            kind: TestKind::DownlinkTput,
            day,
            scheduled: SimTime::EPOCH,
            status,
            attempts,
            fault: None,
            planned_samples: planned,
            recorded_samples: recorded,
            lost_samples: planned - recorded,
        }
    }

    #[test]
    fn summarize_groups_by_operator_and_day() {
        let mut ds = Dataset::default();
        ds.audits.push(audit(
            Operator::Verizon,
            0,
            TestStatus::Completed,
            1,
            60,
            60,
        ));
        ds.audits
            .push(audit(Operator::Verizon, 0, TestStatus::Partial, 2, 60, 40));
        ds.audits
            .push(audit(Operator::Verizon, 1, TestStatus::Lost, 3, 100, 0));
        ds.audits
            .push(audit(Operator::Att, 0, TestStatus::Completed, 1, 10, 10));

        let groups = summarize(&ds);
        assert_eq!(groups.len(), 3);

        let v0 = groups[&(Operator::Verizon, 0)];
        assert_eq!(v0.attempted, 2);
        assert_eq!(v0.completed, 1);
        assert_eq!(v0.partial, 1);
        assert_eq!(v0.retried, 1);
        assert_eq!(v0.lost, 0);
        assert_eq!(v0.planned_samples, 120);
        assert_eq!(v0.recorded_samples, 100);
        assert_eq!(v0.lost_samples, 20);

        let v1 = groups[&(Operator::Verizon, 1)];
        assert_eq!(v1.lost, 1);
        assert_eq!(v1.retried, 1);
        assert_eq!(v1.lost_samples, 100);
    }

    #[test]
    fn report_renders_clean_campaign_as_zero_loss() {
        let w = crate::world::World::quick();
        let out = run(w);
        assert!(out.contains("sample salvage rate: 100.0%"), "{out}");
        // Audits exist even with faults off.
        assert!(!w.dataset().audits.is_empty());
        let groups = summarize(w.dataset());
        for row in groups.values() {
            assert_eq!(row.attempted, row.completed);
            assert_eq!(row.partial, 0);
            assert_eq!(row.retried, 0);
            assert_eq!(row.lost, 0);
            assert_eq!(row.planned_samples, row.recorded_samples);
        }
    }
}
