//! Fig. 10: per-test performance against the fraction of time connected
//! to high-speed 5G (mmWave/mid-band).

use std::collections::BTreeMap;

use wheels_core::records::TestKind;
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::Cdf;

use crate::fmt;
use crate::world::World;

/// `(hs5g_fraction, mean throughput)` per driving test.
pub fn tput_vs_hs5g(world: &World, op: Operator, dir: Direction) -> Vec<(f64, f64)> {
    let kind = match dir {
        Direction::Downlink => TestKind::DownlinkTput,
        Direction::Uplink => TestKind::UplinkTput,
    };
    let by_test: BTreeMap<u32, Vec<f64>> = world
        .view()
        .tput_tests(Some(op), Some(dir), Some(true))
        .map(|(id, samples)| (id, samples.map(|s| s.mbps).collect()))
        .collect();
    world
        .dataset()
        .runs
        .iter()
        .filter(|r| r.operator == op && r.kind == kind && r.driving)
        .filter_map(|r| {
            let v = by_test.get(&r.id)?;
            if v.len() < 20 {
                return None;
            }
            Some((r.hs5g_fraction, v.iter().sum::<f64>() / v.len() as f64))
        })
        .collect()
}

/// Quartile-bucket medians: bucket tests by hs5g fraction (0–25/…/75–100%)
/// and return the median metric per bucket.
pub fn bucket_medians(points: &[(f64, f64)]) -> [Option<f64>; 4] {
    let mut out = [None, None, None, None];
    for (i, item) in out.iter_mut().enumerate() {
        let lo = i as f64 * 0.25;
        let hi = lo + 0.25 + if i == 3 { 1e-9 } else { 0.0 };
        let vals: Vec<f64> = points
            .iter()
            .filter(|(f, _)| *f >= lo && *f < hi)
            .map(|(_, m)| *m)
            .collect();
        *item = Cdf::from_samples(vals).median();
    }
    out
}

/// Render the figure.
pub fn run(world: &World) -> String {
    let mut out =
        String::from("Fig. 10 — per-test performance vs fraction of time on high-speed 5G\n\n");
    for dir in Direction::ALL {
        out.push_str(&format!(
            "{} mean throughput (Mbps), tests bucketed by hs5G%:\n",
            dir.label()
        ));
        let mut rows = Vec::new();
        for op in Operator::ALL {
            let pts = tput_vs_hs5g(world, op, dir);
            let b = bucket_medians(&pts);
            rows.push(vec![
                op.label().to_string(),
                pts.len().to_string(),
                fmt::num(b[0]),
                fmt::num(b[1]),
                fmt::num(b[2]),
                fmt::num(b[3]),
            ]);
        }
        out.push_str(&fmt::table(
            &["operator", "tests", "0-25%", "25-50%", "50-75%", "75-100%"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_span_the_fraction_range() {
        let w = World::quick();
        let mut fracs: Vec<f64> = Vec::new();
        for op in Operator::ALL {
            fracs.extend(
                tput_vs_hs5g(w, op, Direction::Downlink)
                    .iter()
                    .map(|(f, _)| *f),
            );
        }
        assert!(fracs.iter().any(|f| *f < 0.1), "no low-hs5g tests");
        assert!(fracs.iter().any(|f| *f > 0.7), "no high-hs5g tests");
    }

    #[test]
    fn tmobile_dl_benefits_from_midband_time() {
        // Fig. 10a: only T-Mobile's mid-band time brings a substantial DL
        // improvement.
        let w = World::quick();
        let pts = tput_vs_hs5g(w, Operator::TMobile, Direction::Downlink);
        let b = bucket_medians(&pts);
        if let (Some(lo), Some(hi)) = (b[0], b[3]) {
            assert!(hi > lo, "lo-bucket {lo} hi-bucket {hi}");
        }
    }

    #[test]
    fn bucket_medians_math() {
        let pts = vec![(0.1, 10.0), (0.12, 20.0), (0.6, 50.0), (1.0, 80.0)];
        let b = bucket_medians(&pts);
        assert_eq!(b[0], Some(15.0));
        assert_eq!(b[1], None);
        assert_eq!(b[2], Some(50.0));
        assert_eq!(b[3], Some(80.0));
    }

    #[test]
    fn renders() {
        let out = run(World::quick());
        assert!(out.contains("75-100%"));
    }
}
