//! Fig. 6: operator diversity — concurrent throughput differences and the
//! HT/LT technology bins.

use wheels_core::analysis::diversity::{
    bin_distribution, diffs_in_bin, pair_samples_joined, PairBin, PairSample, PAIRS,
};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
#[cfg(test)]
use wheels_sim_core::stats::Cdf;

use crate::fmt;
use crate::world::World;

/// Concurrent pair-samples of two operators' driving tests in one
/// direction, joined via the view's partitions.
pub fn pairs_for(world: &World, a: Operator, b: Operator, dir: Direction) -> Vec<PairSample> {
    let v = world.view();
    pair_samples_joined(
        v.tput_iter(Some(a), Some(dir), Some(true)),
        v.tput_iter(Some(b), Some(dir), Some(true)),
    )
}

/// Render the figure.
pub fn run(world: &World) -> String {
    let mut out =
        String::from("Fig. 6 — operator-pair throughput differences (concurrent tests)\n\n");
    for dir in Direction::ALL {
        out.push_str(&format!("{}:\n", dir.label()));
        for (a, b) in PAIRS {
            let pairs = pairs_for(world, a, b, dir);
            if pairs.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "  {} - {} ({} pairs)\n",
                a.label(),
                b.label(),
                pairs.len()
            ));
            out.push_str(&format!(
                "    diff CDF: {}\n",
                fmt::cdf_line(pairs.iter().map(|p| p.diff_mbps))
            ));
            let dist = bin_distribution(&pairs);
            let dist_str: Vec<String> = dist
                .iter()
                .map(|(b, f)| format!("{}={}", b.label(), fmt::pct(f * 100.0)))
                .collect();
            out.push_str(&format!("    bins: {}\n", dist_str.join(" ")));
            for bin in PairBin::ALL {
                let d = diffs_in_bin(&pairs, bin);
                if d.len() >= 5 {
                    out.push_str(&format!(
                        "    {:<5} diff: {}\n",
                        bin.label(),
                        fmt::cdf_line(d)
                    ));
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_pairs_exist() {
        let w = World::quick();
        for (a, b) in PAIRS {
            let pairs = pairs_for(w, a, b, Direction::Downlink);
            assert!(pairs.len() > 50, "{a:?}-{b:?}: {} pairs", pairs.len());
        }
    }

    #[test]
    fn diversity_is_substantial() {
        // §5.4: performance differs widely across operators at the same
        // place/time — the diff CDF has wide spread.
        let w = World::quick();
        let pairs = pairs_for(w, Operator::Verizon, Operator::TMobile, Direction::Downlink);
        let c = Cdf::from_samples(pairs.iter().map(|p| p.diff_mbps));
        let spread = c.quantile(0.9).unwrap() - c.quantile(0.1).unwrap();
        assert!(spread > 10.0, "p10-p90 spread {spread}");
    }

    #[test]
    fn ltlt_bin_dominates_uplink() {
        // Fig. 6b: UL pair-samples are mostly LT-LT.
        let w = World::quick();
        for (a, b) in PAIRS {
            let pairs = pairs_for(w, a, b, Direction::Uplink);
            if pairs.len() < 30 {
                continue;
            }
            let dist = bin_distribution(&pairs);
            let ltlt = dist.iter().find(|(bn, _)| *bn == PairBin::LtLt).unwrap().1;
            let htht = dist.iter().find(|(bn, _)| *bn == PairBin::HtHt).unwrap().1;
            assert!(ltlt > htht, "{a:?}-{b:?}: LtLt {ltlt} HtHt {htht}");
        }
    }

    #[test]
    fn lt_sometimes_beats_ht() {
        // §5.4: the operator on the HT technology does not always win.
        let w = World::quick();
        let mut lt_wins = 0;
        let mut total = 0;
        for (a, b) in PAIRS {
            for pairs in [
                pairs_for(w, a, b, Direction::Downlink),
                pairs_for(w, a, b, Direction::Uplink),
            ] {
                for d in diffs_in_bin(&pairs, PairBin::LtHt) {
                    total += 1;
                    if d > 0.0 {
                        lt_wins += 1;
                    }
                }
                for d in diffs_in_bin(&pairs, PairBin::HtLt) {
                    total += 1;
                    if d < 0.0 {
                        lt_wins += 1;
                    }
                }
            }
        }
        if total > 30 {
            let frac = lt_wins as f64 / total as f64;
            assert!(frac > 0.03, "LT-beats-HT fraction {frac} over {total}");
        }
    }

    #[test]
    fn renders() {
        let out = run(World::quick());
        assert!(out.contains("Verizon - T-Mobile"));
        assert!(out.contains("bins:"));
    }
}
