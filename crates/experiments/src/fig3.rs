//! Fig. 3: static (urban, facing a 5G BS) vs driving performance.

use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;

use crate::fmt;
use crate::world::World;

/// Render the six CDF panels as summary lines.
pub fn run(world: &World) -> String {
    let v = world.view();
    let mut out = String::from("Fig. 3 — overall performance: static vs driving\n\n");
    for (label, driving) in [("3a static", false), ("3b driving", true)] {
        out.push_str(&format!("Fig. {label}\n"));
        for op in Operator::ALL {
            for dir in Direction::ALL {
                out.push_str(&format!(
                    "  {:<9} {} tput (Mbps): {}\n",
                    op.label(),
                    dir.label(),
                    fmt::cdf_line_of(v.tput_cdf(Some(op), Some(dir), Some(driving)))
                ));
            }
            out.push_str(&format!(
                "  {:<9} RTT (ms)      : {}\n",
                op.label(),
                fmt::cdf_line_of(v.rtt_cdf(Some(op), Some(driving)))
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_tput(driving: bool, op: Operator, dir: Direction) -> f64 {
        World::quick()
            .view()
            .tput_cdf(Some(op), Some(dir), Some(driving))
            .median()
            .unwrap_or(0.0)
    }

    #[test]
    fn driving_dl_collapses_vs_static() {
        // §5.1: driving medians are 1–5% of static medians.
        for op in Operator::ALL {
            let stat = median_tput(false, op, Direction::Downlink);
            let drv = median_tput(true, op, Direction::Downlink);
            assert!(drv < stat * 0.35, "{op:?}: static {stat} driving {drv}");
        }
    }

    #[test]
    fn verizon_static_dl_highest() {
        let v = median_tput(false, Operator::Verizon, Direction::Downlink);
        let t = median_tput(false, Operator::TMobile, Direction::Downlink);
        assert!(v > t, "V {v} T {t}");
        assert!(v > 300.0, "Verizon static DL median {v}");
    }

    #[test]
    fn static_ul_order_of_magnitude_below_dl() {
        for op in Operator::ALL {
            let dl = median_tput(false, op, Direction::Downlink);
            let ul = median_tput(false, op, Direction::Uplink);
            assert!(dl > 3.0 * ul, "{op:?}: dl {dl} ul {ul}");
        }
    }

    #[test]
    fn significant_low_throughput_fraction_while_driving() {
        // §5.1: ~35% of driving samples below 5 Mbps. Accept 15–60% at
        // quick scale.
        let frac = World::quick()
            .view()
            .tput_cdf(None, None, Some(true))
            .fraction_at_or_below(5.0);
        assert!((0.15..0.60).contains(&frac), "low-tput fraction {frac}");
    }

    #[test]
    fn driving_rtt_median_in_paper_band() {
        let w = World::quick();
        for op in Operator::ALL {
            let med = w.view().rtt_cdf(Some(op), Some(true)).median().unwrap();
            assert!((35.0..130.0).contains(&med), "{op:?} RTT median {med}");
        }
    }

    #[test]
    fn driving_rtt_has_heavy_tail() {
        // Fig. 3b: maxima of seconds. (Our RTT tests are unloaded pings, so
        // the multi-second bufferbloat tail lives in the TCP tests; pings
        // still show a heavy tail from scheduling jitter.)
        let c = World::quick().view().rtt_cdf(None, Some(true));
        let p99 = c.quantile(0.99).unwrap();
        let med = c.median().unwrap();
        assert!(p99 > med * 2.0, "median {med} p99 {p99}");
    }

    #[test]
    fn renders_both_panels() {
        let out = run(World::quick());
        assert!(out.contains("3a static"));
        assert!(out.contains("3b driving"));
    }
}
