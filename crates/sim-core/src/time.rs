//! Simulation time.
//!
//! The whole workspace measures time in integer **milliseconds since the
//! trip epoch**: 2022-08-08 00:00:00 PDT, the midnight before the first
//! driving day of the paper's LA→Boston trip. An integer clock keeps the
//! simulation deterministic (no floating-point drift in event ordering) and
//! makes log records trivially sortable.
//!
//! The paper's challenge **\[C2\]** — synchronizing logs whose timestamps are
//! written in UTC, in local time (which changes four times along the route),
//! and in EDT — is modelled faithfully: [`Timezone`] carries the fixed UTC
//! offsets in effect during the trip (August 2022, daylight time), and
//! [`WallClock`] converts a [`SimTime`] into each of the formats the real
//! loggers used.

use serde::{Deserialize, Serialize};

/// Milliseconds since the trip epoch (2022-08-08 00:00:00 PDT).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The trip epoch itself.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from whole seconds since the epoch.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from whole minutes since the epoch.
    pub fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Construct from whole hours since the epoch.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// Milliseconds since the epoch.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, truncated.
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Seconds since the epoch as a float (for plotting/stats).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time elapsed since `earlier`. Saturates at zero rather than
    /// panicking, because log-sync deliberately feeds mis-ordered
    /// timestamps through this path.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Advance by `d`.
    #[must_use]
    pub fn after(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }

    /// Round down to a multiple of `granularity_ms` (e.g. the 500 ms XCAL
    /// throughput-sampling boundary).
    #[must_use]
    pub fn floor_to(self, granularity_ms: u64) -> SimTime {
        SimTime(self.0 / granularity_ms * granularity_ms)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Length in milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

/// The four US timezones the trip crosses, with the UTC offsets in effect
/// in August 2022 (daylight saving time everywhere along the route).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Timezone {
    /// UTC−7 (PDT): Los Angeles, Las Vegas.
    Pacific,
    /// UTC−6 (MDT): Salt Lake City, Denver.
    Mountain,
    /// UTC−5 (CDT): Omaha, Chicago.
    Central,
    /// UTC−4 (EDT): Indianapolis, Cleveland, Rochester, Boston.
    Eastern,
}

impl Timezone {
    /// All four zones, west to east.
    pub const ALL: [Timezone; 4] = [
        Timezone::Pacific,
        Timezone::Mountain,
        Timezone::Central,
        Timezone::Eastern,
    ];

    /// Offset from UTC in hours (negative = behind UTC), August 2022.
    pub fn utc_offset_hours(self) -> i64 {
        match self {
            Timezone::Pacific => -7,
            Timezone::Mountain => -6,
            Timezone::Central => -5,
            Timezone::Eastern => -4,
        }
    }

    /// Offset from the *epoch zone* (Pacific) in milliseconds. Positive:
    /// local clocks in this zone read later than PDT clocks.
    pub fn offset_from_pacific_ms(self) -> i64 {
        (self.utc_offset_hours() - Timezone::Pacific.utc_offset_hours()) * 3_600_000
    }

    /// Human-readable abbreviation as logged by real tools in Aug 2022.
    pub fn abbrev(self) -> &'static str {
        match self {
            Timezone::Pacific => "PDT",
            Timezone::Mountain => "MDT",
            Timezone::Central => "CDT",
            Timezone::Eastern => "EDT",
        }
    }
}

/// Conversion between the simulation clock and the wall-clock formats that
/// the paper's loggers actually wrote:
///
/// - some apps logged **UTC** milliseconds,
/// - some apps logged **local** time (whatever zone the car was in),
/// - XCAL wrote file *names* in local time but file *contents* in **EDT**.
///
/// The log-synchronization layer in `wheels-core` exercises all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallClock;

impl WallClock {
    /// UTC milliseconds (Unix-like, but anchored so that the epoch maps to
    /// 2022-08-08 07:00:00 UTC == 00:00 PDT).
    pub fn utc_ms(t: SimTime) -> i64 {
        // Epoch in "absolute" ms: we only need a consistent anchor, so use
        // the real Unix timestamp of 2022-08-08 07:00:00 UTC.
        const EPOCH_UNIX_MS: i64 = 1_659_942_000_000;
        EPOCH_UNIX_MS + t.0 as i64
    }

    /// Local-time milliseconds for a car currently in `zone`.
    pub fn local_ms(t: SimTime, zone: Timezone) -> i64 {
        Self::utc_ms(t) + zone.utc_offset_hours() * 3_600_000
    }

    /// EDT milliseconds (the zone XCAL file contents use regardless of the
    /// car's location).
    pub fn edt_ms(t: SimTime) -> i64 {
        Self::local_ms(t, Timezone::Eastern)
    }

    /// Invert [`Self::utc_ms`].
    pub fn from_utc_ms(utc: i64) -> Option<SimTime> {
        const EPOCH_UNIX_MS: i64 = 1_659_942_000_000;
        let rel = utc - EPOCH_UNIX_MS;
        u64::try_from(rel).ok().map(SimTime)
    }

    /// Invert [`Self::local_ms`] given the zone the record was written in.
    pub fn from_local_ms(local: i64, zone: Timezone) -> Option<SimTime> {
        Self::from_utc_ms(local - zone.utc_offset_hours() * 3_600_000)
    }

    /// Invert [`Self::edt_ms`].
    pub fn from_edt_ms(edt: i64) -> Option<SimTime> {
        Self::from_local_ms(edt, Timezone::Eastern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_secs(1).as_millis(), 1000);
        assert_eq!(SimTime::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(300);
        assert_eq!(b.since(a), SimDuration(200));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn floor_to_500ms_boundary() {
        assert_eq!(SimTime(1499).floor_to(500), SimTime(1000));
        assert_eq!(SimTime(1500).floor_to(500), SimTime(1500));
        assert_eq!(SimTime(0).floor_to(500), SimTime(0));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(30);
        assert_eq!(d + SimDuration::from_secs(5), SimDuration(35_000));
        assert_eq!(d - SimDuration::from_secs(40), SimDuration::ZERO);
        assert_eq!(d * 2, SimDuration::from_mins(1));
        assert!((d.as_secs_f64() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn timezone_offsets_are_august_2022_daylight() {
        assert_eq!(Timezone::Pacific.utc_offset_hours(), -7);
        assert_eq!(Timezone::Eastern.utc_offset_hours(), -4);
        assert_eq!(Timezone::Eastern.offset_from_pacific_ms(), 3 * 3_600_000);
        assert_eq!(Timezone::Pacific.offset_from_pacific_ms(), 0);
    }

    #[test]
    fn wallclock_roundtrips() {
        let t = SimTime::from_hours(50) + SimDuration::from_millis(123);
        assert_eq!(WallClock::from_utc_ms(WallClock::utc_ms(t)), Some(t));
        for zone in Timezone::ALL {
            let local = WallClock::local_ms(t, zone);
            assert_eq!(WallClock::from_local_ms(local, zone), Some(t));
        }
        assert_eq!(WallClock::from_edt_ms(WallClock::edt_ms(t)), Some(t));
    }

    #[test]
    fn edt_reads_three_hours_ahead_of_pacific_local() {
        let t = SimTime::from_hours(1);
        assert_eq!(
            WallClock::edt_ms(t) - WallClock::local_ms(t, Timezone::Pacific),
            3 * 3_600_000
        );
    }

    #[test]
    fn epoch_maps_to_midnight_pdt() {
        // 2022-08-08 07:00:00 UTC == 2022-08-08 00:00 PDT.
        assert_eq!(WallClock::utc_ms(SimTime::EPOCH), 1_659_942_000_000);
    }

    #[test]
    fn from_utc_rejects_pre_epoch() {
        assert_eq!(WallClock::from_utc_ms(1_659_941_999_999), None);
    }
}
