//! Stochastic processes used by the channel, load, and mobility models.
//!
//! Three building blocks cover everything the simulator needs:
//!
//! - [`GaussMarkov`] — a mean-reverting Ornstein-Uhlenbeck-style process in
//!   discrete steps. Used for spatially-correlated shadowing (stepped by
//!   distance) and for vehicle-speed jitter (stepped by time).
//! - [`Ar1`] — a plain first-order autoregressive process for fast fading in
//!   dB around zero mean.
//! - [`TwoStateMarkov`] — an on/off process for mmWave LOS/NLOS blockage and
//!   for bursty cell-load episodes.
//!
//! All of them expose `step(rng, delta)`-style APIs where `delta` is the
//! amount of time (or distance) advanced, so irregular polling intervals
//! decorrelate correctly.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Discrete-step Gauss-Markov (mean-reverting) process.
///
/// `x' = mean + a * (x - mean) + sigma * sqrt(1 - a^2) * N(0,1)` with
/// `a = exp(-delta / correlation)`, which makes the stationary variance
/// `sigma^2` independent of the step size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussMarkov {
    /// Long-run mean the process reverts to.
    pub mean: f64,
    /// Stationary standard deviation.
    pub sigma: f64,
    /// Correlation length, in the same unit as `delta` passed to `step`
    /// (meters for shadowing, milliseconds for speed jitter).
    pub correlation: f64,
    value: f64,
}

impl GaussMarkov {
    /// Create a process starting at its mean.
    pub fn new(mean: f64, sigma: f64, correlation: f64) -> Self {
        GaussMarkov {
            mean,
            sigma,
            correlation: correlation.max(1e-9),
            value: mean,
        }
    }

    /// Create a process starting from a random stationary draw.
    pub fn new_stationary(mean: f64, sigma: f64, correlation: f64, rng: &mut SimRng) -> Self {
        let mut p = Self::new(mean, sigma, correlation);
        p.value = rng.normal(mean, sigma);
        p
    }

    /// Current value without advancing.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Force the current value (used when re-anchoring after a handover).
    pub fn set_value(&mut self, v: f64) {
        self.value = v;
    }

    /// Advance by `delta` (time or distance) and return the new value.
    pub fn step(&mut self, rng: &mut SimRng, delta: f64) -> f64 {
        let a = (-delta.max(0.0) / self.correlation).exp();
        let noise_sd = self.sigma * (1.0 - a * a).max(0.0).sqrt();
        self.value = self.mean + a * (self.value - self.mean) + rng.normal(0.0, noise_sd);
        self.value
    }
}

/// First-order autoregressive process around zero, fixed step.
///
/// `x' = rho * x + sigma * sqrt(1 - rho^2) * N(0,1)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ar1 {
    /// One-step correlation coefficient in `[0, 1)`.
    pub rho: f64,
    /// Stationary standard deviation.
    pub sigma: f64,
    value: f64,
}

impl Ar1 {
    /// Create a zero-mean AR(1) process starting at 0.
    pub fn new(rho: f64, sigma: f64) -> Self {
        Ar1 {
            rho: rho.clamp(0.0, 0.999_999),
            sigma,
            value: 0.0,
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Advance one step.
    pub fn step(&mut self, rng: &mut SimRng) -> f64 {
        let noise_sd = self.sigma * (1.0 - self.rho * self.rho).sqrt();
        self.value = self.rho * self.value + rng.normal(0.0, noise_sd);
        self.value
    }
}

/// Continuous-time two-state (on/off) Markov process, advanced in discrete
/// deltas. Dwell times in each state are exponential with the configured
/// means, so `P(flip in delta) = 1 - exp(-delta / mean_dwell)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoStateMarkov {
    /// Mean dwell in the `true` ("on"/LOS) state, in `delta` units.
    pub mean_on: f64,
    /// Mean dwell in the `false` ("off"/blocked) state, in `delta` units.
    pub mean_off: f64,
    state: bool,
}

impl TwoStateMarkov {
    /// Create in the given initial state.
    pub fn new(mean_on: f64, mean_off: f64, initial: bool) -> Self {
        TwoStateMarkov {
            mean_on: mean_on.max(1e-9),
            mean_off: mean_off.max(1e-9),
            state: initial,
        }
    }

    /// Create with the initial state drawn from the stationary
    /// distribution `P(on) = mean_on / (mean_on + mean_off)`.
    pub fn new_stationary(mean_on: f64, mean_off: f64, rng: &mut SimRng) -> Self {
        let p_on = mean_on / (mean_on + mean_off);
        Self::new(mean_on, mean_off, rng.chance(p_on))
    }

    /// Current state.
    pub fn state(&self) -> bool {
        self.state
    }

    /// Long-run fraction of time in the `true` state.
    pub fn stationary_on_fraction(&self) -> f64 {
        self.mean_on / (self.mean_on + self.mean_off)
    }

    /// Advance by `delta` and return the (possibly flipped) state.
    ///
    /// Uses at most one transition per step; callers poll at intervals
    /// much shorter than the dwell times, so multi-flip corrections are
    /// negligible.
    pub fn step(&mut self, rng: &mut SimRng, delta: f64) -> bool {
        let dwell = if self.state {
            self.mean_on
        } else {
            self.mean_off
        };
        let p_flip = 1.0 - (-delta.max(0.0) / dwell).exp();
        if rng.chance(p_flip) {
            self.state = !self.state;
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_markov_reverts_to_mean() {
        let mut rng = SimRng::seed(1);
        let mut p = GaussMarkov::new(10.0, 2.0, 100.0);
        p.set_value(50.0);
        // After many correlation lengths the value should be near the mean.
        for _ in 0..100 {
            p.step(&mut rng, 100.0);
        }
        assert!((p.value() - 10.0).abs() < 8.0, "value {}", p.value());
    }

    #[test]
    fn gauss_markov_stationary_variance() {
        let mut rng = SimRng::seed(2);
        let mut p = GaussMarkov::new(0.0, 3.0, 50.0);
        let mut acc = Vec::new();
        for _ in 0..50_000 {
            acc.push(p.step(&mut rng, 50.0));
        }
        let mean = acc.iter().sum::<f64>() / acc.len() as f64;
        let var = acc.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / acc.len() as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.2, "sd {}", var.sqrt());
    }

    #[test]
    fn gauss_markov_zero_delta_is_noop_in_expectation() {
        let mut rng = SimRng::seed(3);
        let mut p = GaussMarkov::new(5.0, 2.0, 100.0);
        p.set_value(7.0);
        let v = p.step(&mut rng, 0.0);
        assert!((v - 7.0).abs() < 1e-9);
    }

    #[test]
    fn gauss_markov_large_delta_decorrelates() {
        let mut rng = SimRng::seed(4);
        let mut p = GaussMarkov::new(0.0, 1.0, 1.0);
        p.set_value(100.0);
        // delta >> correlation: next value should be a fresh stationary draw.
        let v = p.step(&mut rng, 1e6);
        assert!(v.abs() < 6.0, "value {v}");
    }

    #[test]
    fn ar1_stationary_sd() {
        let mut rng = SimRng::seed(5);
        let mut p = Ar1::new(0.9, 2.0);
        let samples: Vec<f64> = (0..100_000).map(|_| p.step(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.15, "sd {sd}");
    }

    #[test]
    fn ar1_successive_samples_are_correlated() {
        let mut rng = SimRng::seed(6);
        let mut p = Ar1::new(0.95, 1.0);
        let xs: Vec<f64> = (0..50_000).map(|_| p.step(&mut rng)).collect();
        let mut num = 0.0;
        let mut den = 0.0;
        for w in xs.windows(2) {
            num += w[0] * w[1];
        }
        for x in &xs {
            den += x * x;
        }
        let rho_hat = num / den;
        assert!((rho_hat - 0.95).abs() < 0.05, "rho {rho_hat}");
    }

    #[test]
    fn two_state_stationary_fraction() {
        let mut rng = SimRng::seed(7);
        let mut p = TwoStateMarkov::new(300.0, 100.0, true);
        let mut on = 0u32;
        let n = 200_000;
        for _ in 0..n {
            if p.step(&mut rng, 10.0) {
                on += 1;
            }
        }
        let frac = on as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
        assert!((p.stationary_on_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn two_state_dwell_times_scale_with_means() {
        let mut rng = SimRng::seed(8);
        let mut p = TwoStateMarkov::new(1000.0, 10.0, true);
        // Over short steps, the on-state should persist much longer than off.
        let mut on_runs = Vec::new();
        let mut run = 0u32;
        for _ in 0..100_000 {
            if p.step(&mut rng, 5.0) {
                run += 1;
            } else if run > 0 {
                on_runs.push(run);
                run = 0;
            }
        }
        let mean_run = on_runs.iter().map(|r| *r as f64).sum::<f64>() / on_runs.len() as f64;
        // Mean on-dwell 1000 units / 5 units per step = ~200 steps.
        assert!(mean_run > 100.0, "mean on-run {mean_run}");
    }

    #[test]
    fn two_state_stationary_init_matches_fraction() {
        let mut rng = SimRng::seed(9);
        let mut on = 0;
        for _ in 0..10_000 {
            if TwoStateMarkov::new_stationary(900.0, 100.0, &mut rng).state() {
                on += 1;
            }
        }
        let frac = on as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }
}
