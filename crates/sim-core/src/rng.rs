//! Deterministic, splittable random number generation.
//!
//! Reproducibility is a first-class requirement: the paper publishes a
//! dataset, and our substitute for that dataset is "seed 0xC0FFEE of this
//! simulator". Two properties matter:
//!
//! 1. **Cross-version stability.** `rand`'s `StdRng` explicitly does not
//!    guarantee a stable algorithm across releases; ChaCha12 (via
//!    `rand_chacha`) does. All simulation randomness flows through ChaCha.
//! 2. **Substream isolation.** Adding a draw in the shadowing model must not
//!    perturb the speed process. [`SimRng::split`] derives an independent
//!    child generator from a string label, so each subsystem owns its own
//!    stream and the composition is order-independent.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A deterministic random source with labelled substreams.
///
/// ```
/// use wheels_sim_core::rng::SimRng;
///
/// let mut root = SimRng::seed(42);
/// let mut radio = root.split("radio/verizon");
/// let mut speed = root.split("geo/speed");
/// // The two substreams are independent and stable: re-creating them in the
/// // opposite order yields the same sequences.
/// let r1: f64 = radio.uniform(0.0, 1.0);
/// let mut root2 = SimRng::seed(42);
/// let mut speed2 = root2.split("geo/speed");
/// let mut radio2 = root2.split("radio/verizon");
/// assert_eq!(r1, radio2.uniform(0.0, 1.0));
/// let _ = (speed, speed2);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: [u8; 32],
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Create a root generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        SimRng {
            seed: bytes,
            inner: ChaCha12Rng::from_seed(bytes),
        }
    }

    /// Derive an independent child generator from a string label.
    ///
    /// The child seed is a hash of (parent seed, label); the parent's own
    /// stream is untouched, so splits are order-independent.
    pub fn split(&self, label: &str) -> SimRng {
        let mut child = [0u8; 32];
        // FNV-1a over (seed || label), expanded into 4 lanes with different
        // basis offsets. Not cryptographic — just a stable, well-mixed
        // derivation that rand_chacha then stretches.
        for (lane, chunk) in child.chunks_exact_mut(8).enumerate() {
            let mut h: u64 =
                0xcbf2_9ce4_8422_2325 ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for &b in self.seed.iter().chain(label.as_bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            chunk.copy_from_slice(&h.to_le_bytes());
        }
        SimRng {
            seed: child,
            inner: ChaCha12Rng::from_seed(child),
        }
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Standard normal via Box-Muller (kept in-crate to avoid a
    /// rand_distr dependency and to pin the exact algorithm).
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.uniform(f64::EPSILON, 1.0);
        let u2: f64 = self.uniform(0.0, 1.0);
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal with mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Lognormal parameterized by the *median* and the σ of the underlying
    /// normal — the natural way to express "median HO interruption 53 ms
    /// with a heavy right tail".
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        (median.max(1e-12).ln() + sigma * self.std_normal()).exp()
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.uniform(f64::EPSILON, 1.0);
        -mean * u.ln()
    }

    /// Pick an index from a slice of non-negative weights. Returns `None`
    /// for an empty or all-zero slice.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Floating point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn splits_are_order_independent() {
        let root = SimRng::seed(99);
        let mut x1 = root.split("x");
        let mut y1 = root.split("y");
        let mut y2 = root.split("y");
        let mut x2 = root.split("x");
        assert_eq!(x1.next_u64(), x2.next_u64());
        assert_eq!(y1.next_u64(), y2.next_u64());
    }

    #[test]
    fn splits_with_different_labels_differ() {
        let root = SimRng::seed(99);
        let mut x = root.split("radio");
        let mut y = root.split("geo");
        let vx: Vec<u64> = (0..8).map(|_| x.next_u64()).collect();
        let vy: Vec<u64> = (0..8).map(|_| y.next_u64()).collect();
        assert_ne!(vx, vy);
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut a = SimRng::seed(5);
        let mut b = SimRng::seed(5);
        let _ = a.split("child");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn nested_splits_are_namespaced() {
        let root = SimRng::seed(1);
        let mut ab = root.split("a").split("b");
        let mut ab2 = root.split("a").split("b");
        let mut ba = root.split("b").split("a");
        assert_eq!(ab.next_u64(), ab2.next_u64());
        assert_ne!(ab2.next_u64(), ba.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform(5.0, 4.0), 5.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::seed(12);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_median_is_median() {
        let mut r = SimRng::seed(13);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| r.lognormal_median(53.0, 0.5)).collect();
        samples.sort_by(f64::total_cmp);
        let med = samples[n / 2];
        assert!((med - 53.0).abs() / 53.0 < 0.05, "median {med}");
        assert!(samples.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed(14);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = SimRng::seed(15);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut r = SimRng::seed(16);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[0.0, 2.0]), Some(1));
    }
}
