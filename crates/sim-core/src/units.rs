//! Strongly-typed physical quantities.
//!
//! The simulator juggles data rates across five orders of magnitude (kbps
//! ICMP probes to multi-Gbps mmWave), powers in dBm, and speeds in mph (the
//! paper's bins) and m/s (the physics). Newtypes keep the unit conversions
//! out of the model code and prevent the classic Mbps-vs-MBps and dB-vs-dBm
//! mistakes.

use serde::{Deserialize, Serialize};

/// A data rate. Stored internally in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DataRate(f64);

impl DataRate {
    /// Zero rate.
    pub const ZERO: DataRate = DataRate(0.0);

    /// From bits per second.
    pub fn from_bps(bps: f64) -> Self {
        DataRate(bps.max(0.0))
    }

    /// From megabits per second (the paper's universal unit).
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// From gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bps(gbps * 1e9)
    }

    /// Bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Bytes transferred in `ms` milliseconds at this rate.
    pub fn bytes_in_ms(self, ms: u64) -> f64 {
        self.0 / 8.0 * (ms as f64 / 1000.0)
    }

    /// Rate needed to move `bytes` in `ms` milliseconds.
    pub fn for_bytes_in_ms(bytes: f64, ms: f64) -> Self {
        if ms <= 0.0 {
            return DataRate::ZERO;
        }
        Self::from_bps(bytes * 8.0 / (ms / 1000.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: DataRate) -> DataRate {
        DataRate(self.0.min(other.0))
    }

    /// Element-wise maximum.
    pub fn max(self, other: DataRate) -> DataRate {
        DataRate(self.0.max(other.0))
    }
}

impl core::ops::Add for DataRate {
    type Output = DataRate;
    fn add(self, rhs: DataRate) -> DataRate {
        DataRate(self.0 + rhs.0)
    }
}

impl core::ops::Mul<f64> for DataRate {
    type Output = DataRate;
    fn mul(self, rhs: f64) -> DataRate {
        DataRate((self.0 * rhs).max(0.0))
    }
}

impl core::iter::Sum for DataRate {
    fn sum<I: Iterator<Item = DataRate>>(iter: I) -> DataRate {
        iter.fold(DataRate::ZERO, |a, b| a + b)
    }
}

/// Received/transmitted power in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Dbm(pub f64);

/// A power *ratio* (gain or loss) in dB.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(pub f64);

impl Dbm {
    /// Convert to milliwatts.
    pub fn as_mw(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Convert from milliwatts.
    pub fn from_mw(mw: f64) -> Self {
        Dbm(10.0 * mw.max(1e-30).log10())
    }

    /// Apply a gain (positive) or loss (negative).
    #[must_use]
    pub fn plus(self, gain: Db) -> Dbm {
        Dbm(self.0 + gain.0)
    }

    /// Subtract a loss.
    #[must_use]
    pub fn minus(self, loss: Db) -> Dbm {
        Dbm(self.0 - loss.0)
    }

    /// Power-sum of several dBm values (converts to mW, adds, converts
    /// back) — used to total interference from multiple cells.
    pub fn power_sum(values: impl IntoIterator<Item = Dbm>) -> Dbm {
        let mw: f64 = values.into_iter().map(Dbm::as_mw).sum();
        Dbm::from_mw(mw)
    }
}

impl Db {
    /// Convert to a linear power ratio.
    pub fn as_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Convert from a linear power ratio.
    pub fn from_linear(lin: f64) -> Self {
        Db(10.0 * lin.max(1e-30).log10())
    }
}

impl core::ops::Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl core::ops::Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

/// A distance. Stored internally in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Distance(f64);

impl Distance {
    /// Zero distance.
    pub const ZERO: Distance = Distance(0.0);

    /// From meters.
    pub fn from_m(m: f64) -> Self {
        Distance(m.max(0.0))
    }

    /// From kilometers.
    pub fn from_km(km: f64) -> Self {
        Self::from_m(km * 1000.0)
    }

    /// From miles (the paper reports coverage and handovers per mile).
    pub fn from_miles(mi: f64) -> Self {
        Self::from_m(mi * 1609.344)
    }

    /// Meters.
    pub fn as_m(self) -> f64 {
        self.0
    }

    /// Kilometers.
    pub fn as_km(self) -> f64 {
        self.0 / 1000.0
    }

    /// Miles.
    pub fn as_miles(self) -> f64 {
        self.0 / 1609.344
    }
}

impl core::ops::Add for Distance {
    type Output = Distance;
    fn add(self, rhs: Distance) -> Distance {
        Distance(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Distance {
    type Output = Distance;
    fn sub(self, rhs: Distance) -> Distance {
        Distance((self.0 - rhs.0).max(0.0))
    }
}

impl core::ops::AddAssign for Distance {
    fn add_assign(&mut self, rhs: Distance) {
        self.0 += rhs.0;
    }
}

impl core::iter::Sum for Distance {
    fn sum<I: Iterator<Item = Distance>>(iter: I) -> Distance {
        iter.fold(Distance::ZERO, |a, b| a + b)
    }
}

/// A speed. Stored internally in meters per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Speed(f64);

impl Speed {
    /// Zero (parked at a light).
    pub const ZERO: Speed = Speed(0.0);

    /// From meters per second.
    pub fn from_mps(mps: f64) -> Self {
        Speed(mps.max(0.0))
    }

    /// From miles per hour (the paper's speed bins: 0–20, 20–60, 60+).
    pub fn from_mph(mph: f64) -> Self {
        Self::from_mps(mph * 0.44704)
    }

    /// Meters per second.
    pub fn as_mps(self) -> f64 {
        self.0
    }

    /// Miles per hour.
    pub fn as_mph(self) -> f64 {
        self.0 / 0.44704
    }

    /// Distance covered in `ms` milliseconds at this speed.
    pub fn distance_in_ms(self, ms: u64) -> Distance {
        Distance::from_m(self.0 * ms as f64 / 1000.0)
    }
}

/// The paper's three speed bins (§4.2, §5.5), used both as a coverage
/// breakdown and as a proxy for region type (city / suburban / highway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpeedBin {
    /// 0–20 mph — mostly cities.
    Low,
    /// 20–60 mph — mostly suburban in-between areas.
    Mid,
    /// 60+ mph — inter-state highways.
    High,
}

impl SpeedBin {
    /// All bins in order.
    pub const ALL: [SpeedBin; 3] = [SpeedBin::Low, SpeedBin::Mid, SpeedBin::High];

    /// Classify a speed into the paper's bins.
    pub fn of(speed: Speed) -> SpeedBin {
        let mph = speed.as_mph();
        if mph < 20.0 {
            SpeedBin::Low
        } else if mph < 60.0 {
            SpeedBin::Mid
        } else {
            SpeedBin::High
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SpeedBin::Low => "0-20 mph",
            SpeedBin::Mid => "20-60 mph",
            SpeedBin::High => "60+ mph",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_rate_conversions() {
        let r = DataRate::from_mbps(100.0);
        assert!((r.as_bps() - 1e8).abs() < 1e-6);
        assert!((r.as_gbps() - 0.1).abs() < 1e-12);
        assert!((DataRate::from_gbps(3.5).as_mbps() - 3500.0).abs() < 1e-9);
    }

    #[test]
    fn data_rate_bytes_in_ms() {
        // 8 Mbps for 1 s = 1 MB.
        let r = DataRate::from_mbps(8.0);
        assert!((r.bytes_in_ms(1000) - 1e6).abs() < 1e-6);
        // Inverse.
        let need = DataRate::for_bytes_in_ms(1e6, 1000.0);
        assert!((need.as_mbps() - 8.0).abs() < 1e-9);
        assert_eq!(DataRate::for_bytes_in_ms(1e6, 0.0), DataRate::ZERO);
    }

    #[test]
    fn data_rate_never_negative() {
        assert_eq!(DataRate::from_bps(-5.0), DataRate::ZERO);
        assert_eq!(DataRate::from_mbps(10.0) * -1.0, DataRate::ZERO);
    }

    #[test]
    fn dbm_mw_roundtrip() {
        let p = Dbm(-95.0);
        let back = Dbm::from_mw(p.as_mw());
        assert!((back.0 - p.0).abs() < 1e-9);
        assert!((Dbm(0.0).as_mw() - 1.0).abs() < 1e-12);
        assert!((Dbm(30.0).as_mw() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_power_sum_of_equal_terms_adds_3db() {
        let s = Dbm::power_sum([Dbm(-100.0), Dbm(-100.0)]);
        assert!((s.0 - (-100.0 + 10.0 * 2f64.log10())).abs() < 1e-9);
    }

    #[test]
    fn db_linear_roundtrip() {
        for v in [-30.0, -3.0, 0.0, 3.0, 20.0] {
            let g = Db(v);
            assert!((Db::from_linear(g.as_linear()).0 - v).abs() < 1e-9);
        }
        assert!((Db(3.0103).as_linear() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn dbm_arithmetic() {
        let p = Dbm(-70.0).minus(Db(20.0)).plus(Db(5.0));
        assert!((p.0 - -85.0).abs() < 1e-12);
        let diff = Dbm(-60.0) - Dbm(-90.0);
        assert!((diff.0 - 30.0).abs() < 1e-12);
    }

    #[test]
    fn distance_conversions() {
        let d = Distance::from_miles(1.0);
        assert!((d.as_m() - 1609.344).abs() < 1e-9);
        assert!((Distance::from_km(5711.0).as_miles() - 3548.6).abs() < 1.0);
    }

    #[test]
    fn speed_conversions_and_distance() {
        let s = Speed::from_mph(60.0);
        assert!((s.as_mps() - 26.8224).abs() < 1e-4);
        // 60 mph for one hour = 60 miles.
        let d = s.distance_in_ms(3_600_000);
        assert!((d.as_miles() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn speed_bins_match_paper_boundaries() {
        assert_eq!(SpeedBin::of(Speed::from_mph(0.0)), SpeedBin::Low);
        assert_eq!(SpeedBin::of(Speed::from_mph(19.99)), SpeedBin::Low);
        assert_eq!(SpeedBin::of(Speed::from_mph(20.0)), SpeedBin::Mid);
        assert_eq!(SpeedBin::of(Speed::from_mph(59.99)), SpeedBin::Mid);
        assert_eq!(SpeedBin::of(Speed::from_mph(60.0)), SpeedBin::High);
        assert_eq!(SpeedBin::of(Speed::from_mph(80.0)), SpeedBin::High);
    }
}
