//! Timestamped sample series.
//!
//! The paper's analysis repeatedly joins series sampled at different rates
//! (XCAL KPIs at 500 ms, GPS at 1 s, pings at 200 ms, app events whenever
//! they happen). [`TimeSeries`] stores `(SimTime, T)` pairs sorted by time
//! and provides the resampling/joining operations the analysis layer uses.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A time-ordered sequence of samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries<T> {
    points: Vec<(SimTime, T)>,
}

impl<T> Default for TimeSeries<T> {
    fn default() -> Self {
        TimeSeries { points: Vec::new() }
    }
}

impl<T> TimeSeries<T> {
    /// New empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Samples must be pushed in non-decreasing time
    /// order; out-of-order pushes are rejected with an error so the bug
    /// surfaces at the producer, not in a later join.
    pub fn push(&mut self, t: SimTime, value: T) -> Result<(), OutOfOrder> {
        if let Some((last, _)) = self.points.last() {
            if t < *last {
                return Err(OutOfOrder {
                    last: *last,
                    attempted: t,
                });
            }
        }
        self.points.push((t, value));
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate `(time, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.points.iter().map(|(t, v)| (*t, v))
    }

    /// All raw points.
    pub fn points(&self) -> &[(SimTime, T)] {
        &self.points
    }

    /// First timestamp.
    pub fn start(&self) -> Option<SimTime> {
        self.points.first().map(|(t, _)| *t)
    }

    /// Last timestamp.
    pub fn end(&self) -> Option<SimTime> {
        self.points.last().map(|(t, _)| *t)
    }

    /// The most recent sample at or before `t` (sample-and-hold lookup).
    pub fn at(&self, t: SimTime) -> Option<&T> {
        let idx = self.points.partition_point(|(pt, _)| *pt <= t);
        idx.checked_sub(1).map(|i| &self.points[i].1)
    }

    /// All samples with `start <= time < end`.
    pub fn window(&self, start: SimTime, end: SimTime) -> &[(SimTime, T)] {
        let lo = self.points.partition_point(|(t, _)| *t < start);
        let hi = self.points.partition_point(|(t, _)| *t < end);
        &self.points[lo..hi]
    }

    /// Map values, preserving timestamps.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> TimeSeries<U> {
        TimeSeries {
            points: self.points.iter().map(|(t, v)| (*t, f(v))).collect(),
        }
    }
}

impl TimeSeries<f64> {
    /// Mean of samples in `[start, end)`, or `None` if the window is empty.
    pub fn window_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let w = self.window(start, end);
        if w.is_empty() {
            return None;
        }
        Some(w.iter().map(|(_, v)| *v).sum::<f64>() / w.len() as f64)
    }

    /// Resample onto a fixed grid of `step` starting at `start`, averaging
    /// samples that fall in each `[t, t+step)` bucket. Buckets with no
    /// samples yield `None` entries (gaps matter for HO analysis).
    pub fn resample_mean(
        &self,
        start: SimTime,
        end: SimTime,
        step: SimDuration,
    ) -> Vec<(SimTime, Option<f64>)> {
        assert!(step.as_millis() > 0, "resample step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let next = t + step;
            out.push((t, self.window_mean(t, next)));
            t = next;
        }
        out
    }

    /// Values as a plain vector (for stats).
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, v)| *v).collect()
    }
}

/// Error returned when a sample is pushed with a timestamp earlier than the
/// series' last sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrder {
    /// Timestamp of the series' current last sample.
    pub last: SimTime,
    /// The rejected timestamp.
    pub attempted: SimTime,
}

impl core::fmt::Display for OutOfOrder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "out-of-order push: series at t={}ms, attempted t={}ms",
            self.last.as_millis(),
            self.attempted.as_millis()
        )
    }
}

impl std::error::Error for OutOfOrder {}

/// Join two `f64` series on a common grid: for each grid bucket where *both*
/// series have at least one sample, emit `(mean_a, mean_b)`. This is how
/// Table 2 pairs 500 ms throughput samples with KPI samples, and how Fig. 6
/// pairs concurrent tests across operators.
pub fn join_on_grid(
    a: &TimeSeries<f64>,
    b: &TimeSeries<f64>,
    start: SimTime,
    end: SimTime,
    step: SimDuration,
) -> Vec<(f64, f64)> {
    let ra = a.resample_mean(start, end, step);
    let rb = b.resample_mean(start, end, step);
    ra.into_iter()
        .zip(rb)
        .filter_map(|((_, va), (_, vb))| Some((va?, vb?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime(v)
    }

    #[test]
    fn push_enforces_order() {
        let mut s = TimeSeries::new();
        s.push(ms(100), 1.0).unwrap();
        s.push(ms(100), 2.0).unwrap(); // equal timestamps allowed
        let err = s.push(ms(50), 3.0).unwrap_err();
        assert_eq!(err.last, ms(100));
        assert_eq!(err.attempted, ms(50));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn at_is_sample_and_hold() {
        let mut s = TimeSeries::new();
        s.push(ms(100), "a").unwrap();
        s.push(ms(200), "b").unwrap();
        assert_eq!(s.at(ms(50)), None);
        assert_eq!(s.at(ms(100)), Some(&"a"));
        assert_eq!(s.at(ms(199)), Some(&"a"));
        assert_eq!(s.at(ms(200)), Some(&"b"));
        assert_eq!(s.at(ms(9999)), Some(&"b"));
    }

    #[test]
    fn window_half_open() {
        let mut s = TimeSeries::new();
        for t in [0u64, 100, 200, 300] {
            s.push(ms(t), t as f64).unwrap();
        }
        let w = s.window(ms(100), ms(300));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, ms(100));
        assert_eq!(w[1].0, ms(200));
    }

    #[test]
    fn resample_mean_with_gaps() {
        let mut s = TimeSeries::new();
        s.push(ms(0), 10.0).unwrap();
        s.push(ms(100), 20.0).unwrap();
        // nothing in [500, 1000)
        s.push(ms(1100), 5.0).unwrap();
        let r = s.resample_mean(ms(0), ms(1500), SimDuration::from_millis(500));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], (ms(0), Some(15.0)));
        assert_eq!(r[1], (ms(500), None));
        assert_eq!(r[2], (ms(1000), Some(5.0)));
    }

    #[test]
    fn join_on_grid_requires_both() {
        let mut a = TimeSeries::new();
        let mut b = TimeSeries::new();
        a.push(ms(0), 1.0).unwrap();
        a.push(ms(600), 3.0).unwrap();
        b.push(ms(100), 10.0).unwrap();
        // b has nothing in [500, 1000)
        let joined = join_on_grid(&a, &b, ms(0), ms(1000), SimDuration::from_millis(500));
        assert_eq!(joined, vec![(1.0, 10.0)]);
    }

    #[test]
    fn map_preserves_time() {
        let mut s = TimeSeries::new();
        s.push(ms(5), 2.0).unwrap();
        let doubled = s.map(|v| v * 2.0);
        assert_eq!(doubled.points(), &[(ms(5), 4.0)]);
    }

    #[test]
    fn empty_series_behaviour() {
        let s: TimeSeries<f64> = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.start(), None);
        assert_eq!(s.end(), None);
        assert_eq!(s.at(ms(0)), None);
        assert_eq!(s.window_mean(ms(0), ms(100)), None);
    }

    #[test]
    #[should_panic(expected = "resample step must be positive")]
    fn resample_zero_step_panics() {
        let s: TimeSeries<f64> = TimeSeries::new();
        let _ = s.resample_mean(ms(0), ms(100), SimDuration::ZERO);
    }
}
