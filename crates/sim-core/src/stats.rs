//! Statistics toolkit.
//!
//! Every figure in the paper is one of: an empirical CDF, a quantile
//! summary, a scatter with binned overlays, a stacked coverage breakdown, or
//! a Pearson correlation table. This module implements those primitives once
//! so that the per-figure experiment code stays declarative.

use serde::{Deserialize, Serialize};

/// An empirical distribution built from `f64` samples.
///
/// Samples are stored sorted; quantiles use linear interpolation between
/// order statistics (type-7, the numpy/R default), which is what the
/// paper's plotting scripts use.
///
/// ```
/// use wheels_sim_core::stats::Cdf;
/// let c = Cdf::from_samples([4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(c.median(), Some(2.5));
/// assert_eq!(c.fraction_at_or_below(3.0), 0.75);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from an iterator of samples. Non-finite values are dropped
    /// (driving logs legitimately contain gaps that parse as NaN).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// Build from samples that are **already sorted** ascending (by
    /// `f64::total_cmp`) and free of non-finite values — the memoized
    /// dataset-view path, where one shared sort serves many queries.
    /// Equivalent to [`Cdf::from_samples`] on the same multiset, without
    /// the O(n log n) re-sort. Monotonicity and finiteness are
    /// debug-asserted only: in release builds unsorted or non-finite
    /// input is **not** rejected, and quantiles over it are meaningless.
    /// Callers own the precondition; the debug assert exists so test
    /// builds catch violations early.
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "Cdf::from_sorted requires ascending input"
        );
        debug_assert!(
            sorted.iter().all(|x| x.is_finite()),
            "Cdf::from_sorted requires finite samples"
        );
        Cdf { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples survived.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample vector.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Quantile `q` in `[0, 1]`, linearly interpolated. Out-of-range
    /// finite `q` clamps to the endpoints, so `quantile(0.0)` is exactly
    /// the minimum and `quantile(1.0)` exactly the maximum. Returns
    /// `None` when empty **or** when `q` is non-finite (NaN/±inf) — a
    /// NaN probability is a caller bug, not "the smallest sample".
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !q.is_finite() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median (p50).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Fraction of samples `<= x` (the CDF evaluated at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evenly-spaced `(value, cumulative_fraction)` points for plotting,
    /// `n` points from p0 to p100.
    pub fn plot_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.is_empty() || n < 2 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                (self.quantile(q).expect("non-empty checked above"), q)
            })
            .collect()
    }

    /// Five-number-plus-mean summary used in tables and EXPERIMENTS.md.
    pub fn summary(&self) -> Option<Summary> {
        Some(Summary {
            n: self.len(),
            min: self.min()?,
            p25: self.quantile(0.25)?,
            median: self.median()?,
            p75: self.quantile(0.75)?,
            p90: self.quantile(0.90)?,
            max: self.max()?,
            mean: self.mean()?,
            std_dev: std_dev(&self.sorted),
        })
    }
}

/// Summary statistics of one distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Standard deviation as a percentage of the mean (Fig. 9's lower-row
    /// metric). Zero mean yields zero.
    pub fn std_dev_pct_of_mean(&self) -> f64 {
        if self.mean.abs() < 1e-12 {
            0.0
        } else {
            self.std_dev / self.mean * 100.0
        }
    }
}

/// Population mean of a slice; 0.0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice; 0.0 when len < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `None` when lengths differ, fewer than 2 pairs, or either series
/// is constant (the paper's Table 2 would report such cells as undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// A histogram over fixed-width bins, used for coverage-by-miles style
/// breakdowns where samples carry a weight (miles driven).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightedShare<K: Eq + std::hash::Hash> {
    totals: std::collections::HashMap<K, f64>,
    total: f64,
}

impl<K: Eq + std::hash::Hash + Clone> Default for WeightedShare<K> {
    fn default() -> Self {
        WeightedShare {
            totals: Default::default(),
            total: 0.0,
        }
    }
}

impl<K: Eq + std::hash::Hash + Clone> WeightedShare<K> {
    /// New empty share accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `weight` to key `k`.
    pub fn add(&mut self, k: K, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        *self.totals.entry(k).or_insert(0.0) += weight;
        self.total += weight;
    }

    /// Fraction of total weight held by `k` (0.0 if unseen or empty).
    pub fn fraction(&self, k: &K) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.totals.get(k).copied().unwrap_or(0.0) / self.total
    }

    /// Percentage (0–100) of total weight held by `k`.
    pub fn percent(&self, k: &K) -> f64 {
        self.fraction(k) * 100.0
    }

    /// Absolute accumulated weight for `k`.
    pub fn weight(&self, k: &K) -> f64 {
        self.totals.get(k).copied().unwrap_or(0.0)
    }

    /// Total accumulated weight.
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// Linear binner: maps `x` to `floor((x - origin) / width)` with clamping,
/// used for the E2E-latency → frame-time bins of Table 5.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinearBins {
    /// Left edge of bin 0.
    pub origin: f64,
    /// Bin width.
    pub width: f64,
    /// Number of bins; values beyond the last edge clamp into the final bin.
    pub count: usize,
}

impl LinearBins {
    /// Classify a value, clamping to `[0, count-1]`.
    pub fn bin_of(&self, x: f64) -> usize {
        if self.count == 0 {
            return 0;
        }
        let idx = ((x - self.origin) / self.width).floor();
        if idx < 0.0 {
            0
        } else {
            (idx as usize).min(self.count - 1)
        }
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        (
            self.origin + self.width * i as f64,
            self.origin + self.width * (i + 1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_matches_from_samples() {
        let raw = vec![3.0, 1.0, 4.0, 1.5, 2.0];
        let mut sorted = raw.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(Cdf::from_sorted(sorted), Cdf::from_samples(raw));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    #[cfg(debug_assertions)]
    fn from_sorted_rejects_unsorted_input() {
        let _ = Cdf::from_sorted(vec![2.0, 1.0]);
    }

    #[test]
    fn cdf_quantiles_interpolate() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.median(), Some(2.5));
        assert_eq!(c.quantile(1.0 / 3.0), Some(2.0));
    }

    #[test]
    fn quantile_endpoints_are_exact_and_clamped() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        // q=0/1 hit the endpoints exactly (no interpolation residue) and
        // finite out-of-range q clamps to them.
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.quantile(-3.5), Some(1.0));
        assert_eq!(c.quantile(7.0), Some(4.0));
    }

    #[test]
    fn quantile_rejects_non_finite_q() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        // Regression: NaN used to clamp-propagate and come back as
        // Some(NaN) instead of an explicit refusal.
        assert_eq!(c.quantile(f64::NAN), None);
        assert_eq!(c.quantile(f64::INFINITY), None);
        assert_eq!(c.quantile(f64::NEG_INFINITY), None);
    }

    #[test]
    fn cdf_drops_non_finite() {
        let c = Cdf::from_samples([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.max(), Some(2.0));
    }

    #[test]
    fn cdf_empty_behaviour() {
        let c = Cdf::from_samples(std::iter::empty());
        assert!(c.is_empty());
        assert_eq!(c.median(), None);
        assert_eq!(c.summary(), None);
        assert_eq!(c.fraction_at_or_below(10.0), 0.0);
        assert!(c.plot_points(10).is_empty());
    }

    #[test]
    fn cdf_fraction_at_or_below() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(3.0), 0.6);
        assert_eq!(c.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn cdf_single_sample() {
        let c = Cdf::from_samples([7.0]);
        assert_eq!(c.median(), Some(7.0));
        assert_eq!(c.quantile(0.25), Some(7.0));
        let s = c.summary().unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn cdf_plot_points_monotone() {
        let c = Cdf::from_samples((0..100).map(|i| (i * 37 % 100) as f64));
        let pts = c.plot_points(21);
        assert_eq!(pts.len(), 21);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn summary_std_pct() {
        let c = Cdf::from_samples([10.0, 20.0, 30.0]);
        let s = c.summary().unwrap();
        assert!((s.mean - 20.0).abs() < 1e-12);
        let expected_sd = ((100.0 + 0.0 + 100.0_f64) / 3.0).sqrt();
        assert!((s.std_dev - expected_sd).abs() < 1e-12);
        assert!((s.std_dev_pct_of_mean() - expected_sd / 20.0 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn pearson_independent_near_zero() {
        let mut rng = crate::rng::SimRng::seed(42);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.std_normal()).collect();
        let ys: Vec<f64> = (0..20_000).map(|_| rng.std_normal()).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.03, "r {r}");
    }

    #[test]
    fn weighted_share_percentages() {
        let mut w = WeightedShare::new();
        w.add("lte", 30.0);
        w.add("nr", 70.0);
        w.add("nr", 0.0); // ignored
        w.add("nr", -5.0); // ignored
        assert!((w.percent(&"lte") - 30.0).abs() < 1e-12);
        assert!((w.percent(&"nr") - 70.0).abs() < 1e-12);
        assert_eq!(w.percent(&"unknown"), 0.0);
        assert!((w.total() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn linear_bins_clamp() {
        let b = LinearBins {
            origin: 0.0,
            width: 33.3,
            count: 30,
        };
        assert_eq!(b.bin_of(-5.0), 0);
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(33.3), 1);
        assert_eq!(b.bin_of(1e9), 29);
        let (lo, hi) = b.edges(2);
        assert!((lo - 66.6).abs() < 1e-9);
        assert!((hi - 99.9).abs() < 1e-9);
    }

    #[test]
    fn mean_std_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }
}

/// Ordinary least squares: fit `y ≈ b0 + b1·x1 + … + bk·xk`.
///
/// The paper's §5.5 closes with "an in-depth understanding of the impact of
/// multiple KPIs on performance requires a multivariate analysis, which is
/// part of our future work" — this is that analysis. Solved via the normal
/// equations with Gaussian elimination and partial pivoting; returns `None`
/// when the system is singular (collinear or constant predictors) or
/// under-determined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Coefficients: `[intercept, b1, …, bk]`.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Number of observations.
    pub n: usize,
}

/// Fit OLS of `y` on the rows of `xs` (each row = one observation's
/// predictor vector; all rows must share `y`'s length... i.e. `xs.len() ==
/// y.len()` and every row has the same number of predictors).
pub fn ols(xs: &[Vec<f64>], y: &[f64]) -> Option<OlsFit> {
    let n = y.len();
    if n == 0 || xs.len() != n {
        return None;
    }
    let k = xs[0].len();
    if xs.iter().any(|r| r.len() != k) || n <= k + 1 {
        return None;
    }
    let p = k + 1; // intercept + predictors

    // Build X'X (p×p) and X'y (p).
    let mut xtx = vec![vec![0.0f64; p]; p];
    let mut xty = vec![0.0f64; p];
    for (row, &yi) in xs.iter().zip(y) {
        let mut xi = Vec::with_capacity(p);
        xi.push(1.0);
        xi.extend_from_slice(row);
        for a in 0..p {
            xty[a] += xi[a] * yi;
            for b in 0..p {
                xtx[a][b] += xi[a] * xi[b];
            }
        }
    }

    // Gaussian elimination with partial pivoting.
    let mut m = xtx;
    let mut v = xty;
    for col in 0..p {
        let pivot = (col..p).max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))?;
        if m[pivot][col].abs() < 1e-9 {
            return None; // singular
        }
        m.swap(col, pivot);
        v.swap(col, pivot);
        let d = m[col][col];
        for cell in m[col][col..p].iter_mut() {
            *cell /= d;
        }
        v[col] /= d;
        for r in 0..p {
            if r != col && m[r][col].abs() > 0.0 {
                let f = m[r][col];
                let pivot_row = m[col].clone();
                for (cell, pv) in m[r][col..p].iter_mut().zip(&pivot_row[col..p]) {
                    *cell -= f * pv;
                }
                v[r] -= f * v[col];
            }
        }
    }
    let coefficients = v;

    // R² on the fit.
    let ybar = mean(y);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (row, &yi) in xs.iter().zip(y) {
        let mut pred = coefficients[0];
        for (j, xj) in row.iter().enumerate() {
            pred += coefficients[j + 1] * xj;
        }
        ss_res += (yi - pred).powi(2);
        ss_tot += (yi - ybar).powi(2);
    }
    if ss_tot <= 0.0 {
        return None;
    }
    Some(OlsFit {
        coefficients,
        r_squared: (1.0 - ss_res / ss_tot).clamp(-1.0, 1.0),
        n,
    })
}

#[cfg(test)]
mod ols_tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 + 3·x1 − 0.5·x2
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let y: Vec<f64> = xs.iter().map(|r| 2.0 + 3.0 * r[0] - 0.5 * r[1]).collect();
        let fit = ols(&xs, &y).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-6);
        assert!((fit.coefficients[1] - 3.0).abs() < 1e-6);
        assert!((fit.coefficients[2] + 0.5).abs() < 1e-6);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_at_least_best_single_predictor() {
        let mut rng = crate::rng::SimRng::seed(77);
        let xs: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.std_normal(), rng.std_normal(), rng.std_normal()])
            .collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|r| 1.0 + 2.0 * r[0] + 1.0 * r[1] + rng.std_normal())
            .collect();
        let full = ols(&xs, &y).unwrap();
        for j in 0..3 {
            let single: Vec<Vec<f64>> = xs.iter().map(|r| vec![r[j]]).collect();
            let sj = ols(&single, &y).unwrap();
            assert!(full.r_squared >= sj.r_squared - 1e-9, "predictor {j}");
        }
        assert!(full.r_squared > 0.6);
    }

    #[test]
    fn singular_and_degenerate_inputs_rejected() {
        // Collinear predictors.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert!(ols(&xs, &y).is_none());
        // Too few observations.
        let xs2 = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(ols(&xs2, &[1.0, 2.0]).is_none());
        // Mismatched lengths.
        assert!(ols(&xs2, &[1.0]).is_none());
        // Constant response.
        let xs3: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        assert!(ols(&xs3, &[5.0; 20]).is_none());
    }

    #[test]
    fn noise_only_r_squared_near_zero() {
        let mut rng = crate::rng::SimRng::seed(5);
        let xs: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.std_normal()]).collect();
        let y: Vec<f64> = (0..2000).map(|_| rng.std_normal()).collect();
        let fit = ols(&xs, &y).unwrap();
        assert!(fit.r_squared.abs() < 0.01, "r2 {}", fit.r_squared);
    }
}

/// Spearman rank correlation: Pearson over the ranks, with average ranks
/// for ties. A robustness companion to [`pearson`] for the Table 2
/// analysis — rank correlation is insensitive to the heavy right tail of
/// throughput samples.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod spearman_tests {
    use super::*;

    #[test]
    fn monotone_nonlinear_gives_unit_spearman() {
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp().min(1e30)).collect();
        // Pearson is well below 1 for an exponential, Spearman is exactly 1.
        let s = spearman(&xs, &ys).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "spearman {s}");
        let p = pearson(&xs, &ys).unwrap();
        assert!(p < 0.9, "pearson {p}");
    }

    #[test]
    fn reversed_order_gives_minus_one() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..30).rev().map(|i| (i * i) as f64).collect();
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn ties_handled_with_average_ranks() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let all_ties = spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(all_ties, None); // constant ranks → undefined
    }

    #[test]
    fn bounded_in_unit_interval() {
        let mut rng = crate::rng::SimRng::seed(3);
        for _ in 0..20 {
            let xs: Vec<f64> = (0..50).map(|_| rng.uniform(0.0, 10.0)).collect();
            let ys: Vec<f64> = (0..50).map(|_| rng.uniform(0.0, 10.0)).collect();
            let s = spearman(&xs, &ys).unwrap();
            assert!((-1.0..=1.0).contains(&s));
        }
    }
}
