//! # wheels-sim-core
//!
//! Foundation crate for the `wheels` workspace — the deterministic
//! discrete-time substrate on which the drive-test simulation is built.
//!
//! The design follows the sans-IO, event-driven philosophy: nothing in this
//! crate (or in any crate above it) performs I/O or spawns threads. Every
//! simulated component is a state machine advanced by an explicit clock, and
//! every stochastic element draws from a seeded, *splittable* RNG so that the
//! same master seed regenerates the same dataset bit-for-bit regardless of
//! which subsystems are enabled.
//!
//! Modules:
//!
//! - [`time`] — millisecond simulation clock anchored at the trip epoch
//!   (2022-08-08 00:00 PDT), wall-clock/timezone conversion used by the
//!   log-synchronization layer.
//! - [`units`] — strongly-typed physical quantities (Mbps, dBm, mph, km)
//!   with the conversions the radio and analysis layers need.
//! - [`rng`] — ChaCha-based deterministic RNG with string-labelled
//!   substreams.
//! - [`process`] — the stochastic processes used by the channel and speed
//!   models (Gauss-Markov, AR(1), two-state Markov, lognormal).
//! - [`stats`] — the statistics toolkit behind every figure and table:
//!   empirical CDFs, quantiles, Pearson correlation, histograms, binning.
//! - [`series`] — timestamped sample series, alignment and resampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod units;

pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use units::{DataRate, Db, Dbm, Distance, Speed};
