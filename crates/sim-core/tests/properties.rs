//! Property-based tests for the statistics toolkit, RNG, time, and units.

use proptest::prelude::*;
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::stats::{pearson, Cdf, LinearBins, WeightedShare};
use wheels_sim_core::time::{SimDuration, SimTime, Timezone, WallClock};
use wheels_sim_core::units::{DataRate, Db, Dbm, Distance, Speed, SpeedBin};

proptest! {
    // ---------- Cdf ----------

    #[test]
    fn cdf_quantiles_are_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let c = Cdf::from_samples(xs.drain(..));
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = c.quantile(i as f64 / 20.0).unwrap();
            prop_assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn cdf_quantiles_bounded_by_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200), q in 0.0f64..1.0) {
        let c = Cdf::from_samples(xs.iter().copied());
        let v = c.quantile(q).unwrap();
        prop_assert!(v >= c.min().unwrap() - 1e-9);
        prop_assert!(v <= c.max().unwrap() + 1e-9);
    }

    #[test]
    fn cdf_fraction_is_monotone_cdf(xs in prop::collection::vec(-1e3f64..1e3, 1..100), a in -1e3f64..1e3, b in -1e3f64..1e3) {
        let c = Cdf::from_samples(xs.iter().copied());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(c.fraction_at_or_below(lo) <= c.fraction_at_or_below(hi));
        prop_assert!(c.fraction_at_or_below(f64::INFINITY) == 1.0);
    }

    #[test]
    fn cdf_mean_between_min_and_max(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let c = Cdf::from_samples(xs.iter().copied());
        let m = c.mean().unwrap();
        prop_assert!(m >= c.min().unwrap() - 1e-9 && m <= c.max().unwrap() + 1e-9);
    }

    // ---------- Pearson ----------

    #[test]
    fn pearson_in_unit_interval(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..200)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn pearson_symmetric_and_self_correlated(xs in prop::collection::vec(-1e3f64..1e3, 3..100)) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        if let (Some(a), Some(b)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
            prop_assert!((a - b).abs() < 1e-9);
            prop_assert!((a - 1.0).abs() < 1e-6, "affine transform should give r=1, got {a}");
        }
    }

    // ---------- RNG ----------

    #[test]
    fn rng_split_is_deterministic_and_label_sensitive(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::seed(seed);
        let mut a = root.split(&label);
        let mut b = root.split(&label);
        prop_assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        let mut c = root.split(&format!("{label}x"));
        let va: Vec<u64> = (0..4).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.uniform_u64(0, u64::MAX - 1)).collect();
        prop_assert_ne!(va, vc);
    }

    #[test]
    fn rng_uniform_in_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 1e-3f64..1e6) {
        let mut r = SimRng::seed(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let v = r.uniform(lo, hi);
            prop_assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn rng_lognormal_positive(seed in any::<u64>(), median in 1e-3f64..1e4, sigma in 0.0f64..2.0) {
        let mut r = SimRng::seed(seed);
        for _ in 0..20 {
            prop_assert!(r.lognormal_median(median, sigma) > 0.0);
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights(seed in any::<u64>(), weights in prop::collection::vec(0.0f64..10.0, 1..10)) {
        let mut r = SimRng::seed(seed);
        match r.weighted_index(&weights) {
            Some(i) => prop_assert!(weights[i] > 0.0),
            None => prop_assert!(weights.iter().all(|w| *w <= 0.0)),
        }
    }

    // ---------- Time ----------

    #[test]
    fn wallclock_roundtrip_all_zones(ms in 0u64..(15 * 24 * 3_600_000)) {
        let t = SimTime(ms);
        prop_assert_eq!(WallClock::from_utc_ms(WallClock::utc_ms(t)), Some(t));
        for z in Timezone::ALL {
            prop_assert_eq!(WallClock::from_local_ms(WallClock::local_ms(t, z), z), Some(t));
        }
    }

    #[test]
    fn simtime_floor_is_idempotent_and_below(ms in 0u64..1e12 as u64, g in 1u64..10_000) {
        let t = SimTime(ms);
        let f = t.floor_to(g);
        prop_assert!(f <= t);
        prop_assert_eq!(f.floor_to(g), f);
        prop_assert_eq!(f.as_millis() % g, 0);
    }

    #[test]
    fn duration_add_sub_consistent(a in 0u64..1e9 as u64, b in 0u64..1e9 as u64) {
        let da = SimDuration(a);
        let db = SimDuration(b);
        prop_assert_eq!((da + db) - db, da);
    }

    // ---------- Units ----------

    #[test]
    fn db_linear_roundtrip(v in -120.0f64..120.0) {
        let g = Db(v);
        prop_assert!((Db::from_linear(g.as_linear()).0 - v).abs() < 1e-6);
    }

    #[test]
    fn dbm_power_sum_at_least_max(a in -140.0f64..0.0, b in -140.0f64..0.0) {
        let s = Dbm::power_sum([Dbm(a), Dbm(b)]);
        prop_assert!(s.0 >= a.max(b) - 1e-9);
        prop_assert!(s.0 <= a.max(b) + 3.02); // at most +3 dB for two terms
    }

    #[test]
    fn rate_bytes_roundtrip(mbps in 0.01f64..1e4, ms in 1u64..100_000) {
        let r = DataRate::from_mbps(mbps);
        let bytes = r.bytes_in_ms(ms);
        let back = DataRate::for_bytes_in_ms(bytes, ms as f64);
        prop_assert!((back.as_mbps() - mbps).abs() / mbps < 1e-9);
    }

    #[test]
    fn distance_speed_consistency(mph in 0.0f64..120.0, ms in 1u64..3_600_000) {
        let s = Speed::from_mph(mph);
        let d = s.distance_in_ms(ms);
        prop_assert!((d.as_miles() - mph * ms as f64 / 3_600_000.0).abs() < 1e-6);
    }

    #[test]
    fn speed_bins_partition(mph in 0.0f64..200.0) {
        let bin = SpeedBin::of(Speed::from_mph(mph));
        let expected = if mph < 20.0 {
            SpeedBin::Low
        } else if mph < 60.0 {
            SpeedBin::Mid
        } else {
            SpeedBin::High
        };
        prop_assert_eq!(bin, expected);
    }

    #[test]
    fn linear_bins_cover_all_reals(x in -1e9f64..1e9, origin in -100.0f64..100.0, width in 0.1f64..100.0, count in 1usize..100) {
        let b = LinearBins { origin, width, count };
        let i = b.bin_of(x);
        prop_assert!(i < count);
        let (lo, hi) = b.edges(i);
        // Clamped values may fall outside their bin edges; interior ones may not.
        if x >= origin && x < origin + width * count as f64 {
            prop_assert!(x >= lo - 1e-9 && x < hi + 1e-9);
        }
        let _ = Distance::from_m(1.0); // keep the import exercised
    }

    #[test]
    fn weighted_share_fractions_sum_to_one(ws in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let mut share = WeightedShare::new();
        for (i, w) in ws.iter().enumerate() {
            share.add(i, *w);
        }
        let total: f64 = (0..ws.len()).map(|i| share.fraction(&i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
