//! Log synchronization — the paper's challenge \[C2\].
//!
//! The raw campaign logs arrive in three timestamp dialects:
//!
//! 1. app logs written in **UTC** milliseconds;
//! 2. app logs written in **local time** (whatever zone the car was in —
//!    which changes four times along the route, and the writer does not
//!    record which zone it was);
//! 3. XCAL `.drm` files whose **filenames** are local-time stamps and
//!    whose **contents** are EDT stamps.
//!
//! The paper: *"we wrote a sophisticated software that maps each app-layer
//! log to the corresponding XCAL file taking into account the different
//! timestamp types and the timezones we crossed."* This module is that
//! software: it normalizes every record to simulation time, inferring the
//! unknown local zone of a log by trying all four candidate zones and
//! keeping the one that makes the log line up with its XCAL counterpart.

use serde::{Deserialize, Serialize};
use wheels_sim_core::time::{SimTime, Timezone, WallClock};
use wheels_ue::xcal::DrmFile;

/// Timestamp dialect of an app log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StampKind {
    /// UTC milliseconds.
    Utc,
    /// Local-time milliseconds in an **unrecorded** zone.
    LocalUnknown,
    /// Local-time milliseconds in a known zone.
    Local(Timezone),
}

/// An app-layer log: a test's own record of what it did, with timestamps
/// in one of the dialects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppLog {
    /// Which test produced it (opaque to the sync layer).
    pub test_id: u32,
    /// The dialect its stamps use.
    pub stamp: StampKind,
    /// Raw timestamps of its entries, in the dialect's milliseconds.
    pub entries_ms: Vec<i64>,
}

/// Error from synchronization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The log has no entries.
    EmptyLog,
    /// No XCAL file overlaps the log under any candidate zone.
    NoMatchingDrm,
    /// A timestamp fell before the trip epoch.
    PreEpoch,
}

impl core::fmt::Display for SyncError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SyncError::EmptyLog => write!(f, "app log has no entries"),
            SyncError::NoMatchingDrm => {
                write!(f, "no XCAL file overlaps the app log in any timezone")
            }
            SyncError::PreEpoch => write!(f, "timestamp precedes the trip epoch"),
        }
    }
}

impl std::error::Error for SyncError {}

/// A synchronized log: entries in simulation time plus the index of the
/// DRM file it was matched with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncedLog {
    /// The test id carried over.
    pub test_id: u32,
    /// Entry times in simulation time.
    pub entries: Vec<SimTime>,
    /// Index of the matching DRM file in the input slice.
    pub drm_index: usize,
    /// The zone inferred for a `LocalUnknown` log (`None` for UTC logs).
    pub inferred_zone: Option<Timezone>,
}

/// Convert one raw stamp to simulation time under an assumed dialect.
fn to_sim(ms: i64, stamp: StampKind, assumed: Option<Timezone>) -> Option<SimTime> {
    match stamp {
        StampKind::Utc => WallClock::from_utc_ms(ms),
        StampKind::Local(z) => WallClock::from_local_ms(ms, z),
        StampKind::LocalUnknown => WallClock::from_local_ms(ms, assumed?),
    }
}

/// Time span (sim ms) covered by a DRM file's records.
fn drm_span(drm: &DrmFile) -> Option<(SimTime, SimTime)> {
    let first = drm.record_sim_time(0)?;
    let last = drm.record_sim_time(drm.records.len().checked_sub(1)?)?;
    Some((first, last))
}

/// How well a converted log lines up with a DRM file: 0 when the log's
/// span is fully inside (with slack), growing with the gap.
fn mismatch_ms(log_lo: SimTime, log_hi: SimTime, drm_lo: SimTime, drm_hi: SimTime) -> u64 {
    const SLACK_MS: u64 = 3_000;
    let lo_gap = drm_lo
        .as_millis()
        .saturating_sub(log_lo.as_millis() + SLACK_MS);
    let hi_gap = log_hi
        .as_millis()
        .saturating_sub(drm_hi.as_millis() + SLACK_MS);
    lo_gap + hi_gap
}

/// Deterministic preference order among equally-mismatched candidates:
/// earliest UTC offset (westernmost zone) first, then the *tightest*
/// containing DRM file (smallest span), then the lowest DRM index.
/// Smaller key wins.
type CandidateKey = (u64, i64, u64, usize);

fn candidate_key(
    mismatch: u64,
    zone: Option<Timezone>,
    drm_lo: SimTime,
    drm_hi: SimTime,
    drm_index: usize,
) -> CandidateKey {
    (
        mismatch,
        zone.map_or(0, Timezone::utc_offset_hours),
        drm_hi.as_millis() - drm_lo.as_millis(),
        drm_index,
    )
}

/// Synchronize one app log against the campaign's DRM files.
///
/// For `LocalUnknown` logs all four zones are tried; the zone (and DRM
/// file) with the smallest span mismatch wins. A perfect match requires
/// the app-log span to sit inside the DRM span within a few seconds —
/// anything else returns [`SyncError::NoMatchingDrm`].
///
/// **Tie-break** (deterministic): when several (zone, DRM) candidates
/// align equally well, the earliest-offset zone (westernmost, e.g.
/// Pacific before Eastern) wins; within one zone, the tightest
/// containing DRM file wins, then the lowest DRM index. This makes the
/// choice a pure function of the inputs instead of iteration order.
pub fn sync_log(log: &AppLog, drms: &[DrmFile]) -> Result<SyncedLog, SyncError> {
    if log.entries_ms.is_empty() {
        return Err(SyncError::EmptyLog);
    }
    let candidate_zones: Vec<Option<Timezone>> = match log.stamp {
        StampKind::LocalUnknown => Timezone::ALL.iter().map(|z| Some(*z)).collect(),
        _ => vec![None],
    };

    let mut best: Option<(CandidateKey, SyncedLog)> = None;
    for zone in candidate_zones {
        let converted: Option<Vec<SimTime>> = log
            .entries_ms
            .iter()
            .map(|ms| to_sim(*ms, log.stamp, zone))
            .collect();
        let Some(entries) = converted else { continue };
        let lo = *entries.iter().min().expect("non-empty log checked above");
        let hi = *entries.iter().max().expect("non-empty log checked above");
        for (i, drm) in drms.iter().enumerate() {
            let Some((dlo, dhi)) = drm_span(drm) else {
                continue;
            };
            let key = candidate_key(mismatch_ms(lo, hi, dlo, dhi), zone, dlo, dhi, i);
            if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                best = Some((
                    key,
                    SyncedLog {
                        test_id: log.test_id,
                        entries: entries.clone(),
                        drm_index: i,
                        inferred_zone: zone.filter(|_| log.stamp == StampKind::LocalUnknown),
                    },
                ));
            }
        }
    }

    match best {
        Some(((0, ..), synced)) => Ok(synced),
        Some(_) | None => Err(SyncError::NoMatchingDrm),
    }
}

/// Lenient variant of [`sync_log`] for **gapped** logs — drives where the
/// XCAL logger dropped out mid-test, so part of the app log has no DRM
/// coverage. Strict sync would reject the whole log; this salvages it:
/// the best (zone, DRM) candidate is chosen by the same deterministic
/// key, but scored only on the entries each candidate can cover, and the
/// uncovered entries are dropped. Returns the synced log plus the number
/// of entries dropped (`0` means the strict path succeeded).
pub fn sync_log_lenient(log: &AppLog, drms: &[DrmFile]) -> Result<(SyncedLog, usize), SyncError> {
    const SLACK_MS: u64 = 3_000;
    match sync_log(log, drms) {
        Ok(s) => return Ok((s, 0)),
        Err(SyncError::EmptyLog) => return Err(SyncError::EmptyLog),
        Err(_) => {}
    }
    let candidate_zones: Vec<Option<Timezone>> = match log.stamp {
        StampKind::LocalUnknown => Timezone::ALL.iter().map(|z| Some(*z)).collect(),
        _ => vec![None],
    };
    // Most-covered candidate wins; ties fall back to the strict key
    // (earliest zone offset, tightest DRM, lowest index).
    let mut best: Option<(usize, CandidateKey, SyncedLog)> = None;
    let total = log.entries_ms.len();
    for zone in candidate_zones {
        for (i, drm) in drms.iter().enumerate() {
            let Some((dlo, dhi)) = drm_span(drm) else {
                continue;
            };
            let keep_lo = dlo.as_millis().saturating_sub(SLACK_MS);
            let keep_hi = dhi.as_millis() + SLACK_MS;
            let entries: Vec<SimTime> = log
                .entries_ms
                .iter()
                .filter_map(|ms| to_sim(*ms, log.stamp, zone))
                .filter(|t| (keep_lo..=keep_hi).contains(&t.as_millis()))
                .collect();
            if entries.is_empty() {
                continue;
            }
            let kept = entries.len();
            let key = candidate_key(0, zone, dlo, dhi, i);
            let better = match &best {
                None => true,
                Some((bk, bkey, _)) => kept > *bk || (kept == *bk && key < *bkey),
            };
            if better {
                best = Some((
                    kept,
                    key,
                    SyncedLog {
                        test_id: log.test_id,
                        entries,
                        drm_index: i,
                        inferred_zone: zone.filter(|_| log.stamp == StampKind::LocalUnknown),
                    },
                ));
            }
        }
    }
    match best {
        Some((kept, _, synced)) => Ok((synced, total - kept)),
        None => Err(SyncError::NoMatchingDrm),
    }
}

/// Synchronize a batch of logs; returns per-log results.
pub fn sync_all(logs: &[AppLog], drms: &[DrmFile]) -> Vec<Result<SyncedLog, SyncError>> {
    logs.iter().map(|l| sync_log(l, drms)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_radio::tech::Technology;
    use wheels_ran::cells::CellId;
    use wheels_ran::operator::Operator;
    use wheels_ran::session::RanSnapshot;
    use wheels_sim_core::time::SimDuration;
    use wheels_sim_core::units::{DataRate, Db, Dbm};
    use wheels_ue::xcal::XcalLogger;

    fn snap(t: SimTime) -> RanSnapshot {
        RanSnapshot {
            t,
            operator: Operator::Verizon,
            cell: CellId(9),
            tech: Technology::LteA,
            rsrp: Dbm(-101.0),
            sinr: Db(9.0),
            blocked: false,
            in_handover: false,
            carriers: 3,
            primary_mcs: 14,
            primary_bler: 0.1,
            dl_rate: DataRate::from_mbps(80.0),
            ul_rate: DataRate::from_mbps(15.0),
            share: 0.4,
        }
    }

    /// Build a DRM file covering [start, start+secs).
    fn drm(start: SimTime, secs: u64, zone: Timezone) -> DrmFile {
        let mut l = XcalLogger::new();
        l.open_file(start, zone);
        for k in 0..secs * 2 {
            l.log(&snap(start + SimDuration::from_millis(k * 500)));
        }
        l.finish().pop().unwrap()
    }

    #[test]
    fn utc_log_syncs_to_overlapping_drm() {
        let t0 = SimTime::from_hours(12);
        let drms = vec![
            drm(SimTime::from_hours(10), 40, Timezone::Pacific),
            drm(t0, 40, Timezone::Pacific),
        ];
        let log = AppLog {
            test_id: 7,
            stamp: StampKind::Utc,
            entries_ms: (0..30)
                .map(|k| WallClock::utc_ms(t0 + SimDuration::from_secs(k)))
                .collect(),
        };
        let s = sync_log(&log, &drms).unwrap();
        assert_eq!(s.drm_index, 1);
        assert_eq!(s.entries[0], t0);
        assert_eq!(s.inferred_zone, None);
    }

    #[test]
    fn local_unknown_zone_is_inferred() {
        // Car in Mountain time; log written in local ms without zone info.
        let t0 = SimTime::from_hours(30);
        let drms = vec![drm(t0, 40, Timezone::Mountain)];
        let log = AppLog {
            test_id: 1,
            stamp: StampKind::LocalUnknown,
            entries_ms: (0..30)
                .map(|k| WallClock::local_ms(t0 + SimDuration::from_secs(k), Timezone::Mountain))
                .collect(),
        };
        let s = sync_log(&log, &drms).unwrap();
        assert_eq!(s.inferred_zone, Some(Timezone::Mountain));
        assert_eq!(s.entries[0], t0);
    }

    #[test]
    fn wrong_zone_assumption_rejected_when_no_overlap() {
        // A log whose only consistent interpretation would be hours away
        // from any DRM file.
        let t0 = SimTime::from_hours(30);
        let drms = vec![drm(t0, 40, Timezone::Mountain)];
        let log = AppLog {
            test_id: 2,
            stamp: StampKind::Utc,
            entries_ms: (0..30)
                .map(|k| {
                    WallClock::utc_ms(t0 + SimDuration::from_hours(9) + SimDuration::from_secs(k))
                })
                .collect(),
        };
        assert_eq!(sync_log(&log, &drms), Err(SyncError::NoMatchingDrm));
    }

    #[test]
    fn zone_inference_disambiguates_between_two_drms() {
        // Two DRM files 1 hour apart; a LocalUnknown log that is only
        // *inside* one of them under the correct zone. (An off-by-one-zone
        // interpretation shifts by a full hour.)
        let t0 = SimTime::from_hours(50);
        let t1 = SimTime::from_hours(51);
        let drms = vec![
            drm(t0, 60, Timezone::Central),
            drm(t1, 60, Timezone::Central),
        ];
        let log = AppLog {
            test_id: 3,
            stamp: StampKind::LocalUnknown,
            entries_ms: (0..30)
                .map(|k| WallClock::local_ms(t1 + SimDuration::from_secs(k), Timezone::Central))
                .collect(),
        };
        let s = sync_log(&log, &drms).unwrap();
        // The Central interpretation matches file 1 exactly; a Mountain
        // interpretation would land at t1+1h (outside), an Eastern one at
        // t1-1h (inside file 0!). Both are perfect containments, so the
        // earliest-offset tie-break decides: Central (UTC-5) beats
        // Eastern (UTC-4), deterministically.
        assert_eq!(s.drm_index, 1, "got {s:?}");
        assert_eq!(s.inferred_zone, Some(Timezone::Central));
    }

    #[test]
    fn tie_break_prefers_earliest_zone_offset() {
        // One DRM file long enough that *all four* zone interpretations
        // of a short LocalUnknown log land inside it — a four-way perfect
        // tie. The documented rule picks the earliest UTC offset, i.e.
        // the westernmost zone (Pacific, UTC-7).
        let t0 = SimTime::from_hours(40);
        let drms = vec![drm(t0, 4 * 3_600, Timezone::Central)];
        let log = AppLog {
            test_id: 6,
            stamp: StampKind::LocalUnknown,
            entries_ms: (0..30)
                .map(|k| {
                    WallClock::local_ms(
                        t0 + SimDuration::from_mins(90) + SimDuration::from_secs(k),
                        Timezone::Central,
                    )
                })
                .collect(),
        };
        let s = sync_log(&log, &drms).unwrap();
        assert_eq!(s.inferred_zone, Some(Timezone::Pacific));
    }

    #[test]
    fn tie_break_prefers_tightest_containing_drm() {
        // Regression: two DRM files both contain the log perfectly — a
        // wide one at index 0 and a tight one at index 1. The old code
        // kept whichever it saw first (index 0); the documented tie-break
        // picks the tightest containing file.
        let t0 = SimTime::from_hours(60);
        let drms = vec![
            drm(t0, 600, Timezone::Mountain),
            drm(t0 + SimDuration::from_secs(100), 60, Timezone::Mountain),
        ];
        let log = AppLog {
            test_id: 8,
            stamp: StampKind::Utc,
            entries_ms: (0..30)
                .map(|k| {
                    WallClock::utc_ms(t0 + SimDuration::from_secs(110) + SimDuration::from_secs(k))
                })
                .collect(),
        };
        let s = sync_log(&log, &drms).unwrap();
        assert_eq!(s.drm_index, 1, "tightest containing file must win");
    }

    #[test]
    fn lenient_sync_salvages_gapped_log() {
        // Logger gap: the app log runs past the end of DRM coverage, so
        // strict sync rejects it. Lenient sync keeps the covered prefix
        // and reports how many entries were dropped.
        let t0 = SimTime::from_hours(80);
        let drms = vec![drm(t0, 20, Timezone::Central)];
        let log = AppLog {
            test_id: 11,
            stamp: StampKind::Utc,
            entries_ms: (0..60)
                .map(|k| WallClock::utc_ms(t0 + SimDuration::from_secs(k)))
                .collect(),
        };
        assert_eq!(sync_log(&log, &drms), Err(SyncError::NoMatchingDrm));
        let (s, dropped) = sync_log_lenient(&log, &drms).unwrap();
        assert_eq!(s.drm_index, 0);
        // Entries within the DRM span plus the 3 s slack survive:
        // t0..t0+19.5s covered, slack keeps up to t0+22.5s → k = 0..=22.
        assert_eq!(s.entries.len(), 23);
        assert_eq!(dropped, 60 - 23);
        assert_eq!(s.entries[0], t0);
        // A clean log passes through lenient sync untouched.
        let clean = AppLog {
            test_id: 12,
            stamp: StampKind::Utc,
            entries_ms: (0..10)
                .map(|k| WallClock::utc_ms(t0 + SimDuration::from_secs(k)))
                .collect(),
        };
        let (s, dropped) = sync_log_lenient(&clean, &drms).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(s.entries.len(), 10);
        // A log nowhere near any DRM still fails, even leniently.
        let hopeless = AppLog {
            test_id: 13,
            stamp: StampKind::Utc,
            entries_ms: vec![WallClock::utc_ms(t0 + SimDuration::from_hours(20))],
        };
        assert_eq!(
            sync_log_lenient(&hopeless, &drms),
            Err(SyncError::NoMatchingDrm)
        );
    }

    #[test]
    fn known_local_zone_used_directly() {
        let t0 = SimTime::from_hours(70);
        let drms = vec![drm(t0, 40, Timezone::Eastern)];
        let log = AppLog {
            test_id: 4,
            stamp: StampKind::Local(Timezone::Eastern),
            entries_ms: (0..20)
                .map(|k| WallClock::local_ms(t0 + SimDuration::from_secs(k), Timezone::Eastern))
                .collect(),
        };
        let s = sync_log(&log, &drms).unwrap();
        assert_eq!(s.entries[0], t0);
        assert_eq!(s.inferred_zone, None);
    }

    #[test]
    fn empty_log_errors() {
        let drms = vec![drm(SimTime::from_hours(1), 10, Timezone::Pacific)];
        let log = AppLog {
            test_id: 5,
            stamp: StampKind::Utc,
            entries_ms: vec![],
        };
        assert_eq!(sync_log(&log, &drms), Err(SyncError::EmptyLog));
    }

    #[test]
    fn sync_all_batches() {
        let t0 = SimTime::from_hours(20);
        let drms = vec![drm(t0, 40, Timezone::Pacific)];
        let good = AppLog {
            test_id: 1,
            stamp: StampKind::Utc,
            entries_ms: vec![WallClock::utc_ms(t0 + SimDuration::from_secs(5))],
        };
        let bad = AppLog {
            test_id: 2,
            stamp: StampKind::Utc,
            entries_ms: vec![],
        };
        let results = sync_all(&[good, bad], &drms);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(SyncError::EmptyLog));
    }

    #[test]
    fn drm_filename_convention_survives_sync() {
        // The filename stamp is *not* used for matching (it is local time
        // in a zone real files do not even record); content EDT stamps
        // are. A Pacific-opened file must still sync an Eastern-trip log
        // correctly.
        let t0 = SimTime::from_hours(100);
        let f = drm(t0, 40, Timezone::Pacific);
        // Filename reads 3 hours earlier than content EDT.
        assert_eq!(f.records[0].edt_ms - f.filename_local_ms, 3 * 3_600_000);
        let log = AppLog {
            test_id: 9,
            stamp: StampKind::Utc,
            entries_ms: vec![WallClock::utc_ms(t0 + SimDuration::from_secs(3))],
        };
        let s = sync_log(&log, &[f]).unwrap();
        assert_eq!(s.drm_index, 0);
    }
}
