//! The drive-test campaign (§3).
//!
//! Three phones — one per operator — run the test suite round-robin while
//! the car drives: 30 s downlink nuttcp, 30 s uplink nuttcp, 20 s RTT,
//! then the four apps (AR and CAV each with and without compression, a 3
//! minute 360° video session, a 1 minute cloud-gaming session), then the
//! cycle repeats. Static baselines run at the city stopovers. The output
//! is the consolidated [`Dataset`].
//!
//! The three operators run **concurrently on the same clock** (the paper
//! strapped all phones into the same car), which is what makes the Fig. 6
//! operator-diversity analysis possible: for any time bin, all three
//! operators were measured at the same place under the same conditions.

use wheels_apps::arcav::{AppConfig, OffloadRun};
use wheels_apps::gaming::GamingRun;
use wheels_apps::link::LinkState;
use wheels_apps::video::VideoRun;
use wheels_geo::route::Route;
use wheels_geo::trace::{DrivePlan, DriveTrace};
use wheels_radio::tech::Direction;
use wheels_ran::cells::Deployment;
use wheels_ran::operator::Operator;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::session::{PollCtx, RanSession};
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::time::{SimDuration, SimTime};
use wheels_transport::servers::ServerFleet;

use crate::measure::{self, VehicleCtx};
use crate::records::{AppRun, Dataset, TaggedHandover, TestKind, TestRun};
use crate::staticprobe;

/// Gap between consecutive tests in a cycle.
const TEST_GAP: SimDuration = SimDuration(3_000);
/// Approximate TCP/app-layer efficiency over the radio goodput when apps
/// move data without a dedicated fluid-TCP model.
const APP_TCP_EFF: f64 = 0.85;
/// Synthetic XCAL volume per logged 500 ms record.
const LOG_BYTES_PER_SAMPLE: f64 = 2600.0;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Stop after this many round-robin cycles per operator (None = the
    /// whole trip).
    pub max_cycles: Option<usize>,
    /// Run the app tests (AR/CAV/video/gaming) in each cycle.
    pub include_apps: bool,
    /// Run the static baselines at city stopovers.
    pub include_static: bool,
    /// Start at this index into the drive trace.
    pub start_at_sample: usize,
    /// Idle gap inserted after each cycle (seconds). Zero = continuous
    /// testing (the paper's actual protocol); larger values subsample the
    /// trip uniformly, which keeps scaled-down runs spanning all four
    /// timezones.
    pub cycle_stride_s: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2022,
            max_cycles: None,
            include_apps: true,
            include_static: true,
            start_at_sample: 0,
            cycle_stride_s: 0,
        }
    }
}

/// The campaign: route, trace, per-operator deployments, servers.
pub struct Campaign {
    /// The LA→Boston route.
    pub route: Route,
    /// The 8-day drive trace.
    pub trace: DriveTrace,
    /// Deployments in `Operator::ALL` order.
    pub deployments: Vec<Deployment>,
    /// The cloud/edge server fleet.
    pub fleet: ServerFleet,
}

impl Campaign {
    /// Build the standard campaign world from a seed.
    pub fn standard(seed: u64) -> Self {
        let route = Route::standard();
        let rng = SimRng::seed(seed);
        let trace = DrivePlan::default().generate(&route, &mut rng.split("trace"));
        let deployments = Operator::ALL
            .into_iter()
            .map(|op| Deployment::generate(&route, op, &mut rng.split(op.label())))
            .collect();
        Campaign {
            route,
            trace,
            deployments,
            fleet: ServerFleet::standard(),
        }
    }

    /// The deployment of one operator.
    pub fn deployment(&self, op: Operator) -> &Deployment {
        self.deployments
            .iter()
            .find(|d| d.operator == op)
            .expect("all operators deployed")
    }

    /// Run the full campaign for all three operators (in parallel threads,
    /// all on the same simulated clock) and merge the shards.
    pub fn run(&self, cfg: &CampaignConfig) -> Dataset {
        let mut shards: Vec<Dataset> = Vec::new();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = Operator::ALL
                .iter()
                .map(|op| s.spawn(move |_| self.run_operator(*op, cfg)))
                .collect();
            for h in handles {
                shards.push(h.join().expect("operator shard panicked"));
            }
        })
        .expect("campaign scope");
        let mut out = Dataset::default();
        for shard in shards {
            out.merge(shard);
        }
        out
    }

    /// Run the campaign for one operator.
    pub fn run_operator(&self, op: Operator, cfg: &CampaignConfig) -> Dataset {
        let dep = self.deployment(op);
        let op_idx = Operator::ALL.iter().position(|o| *o == op).unwrap();
        let rng = SimRng::seed(cfg.seed).split(&format!("campaign/{}", op.label()));
        let mut runner = OpRunner {
            route: &self.route,
            trace: &self.trace,
            fleet: &self.fleet,
            session: RanSession::new(dep, TrafficDemand::BackloggedDownlink, rng.split("ran")),
            rng,
            ds: Dataset::default(),
            next_id: (op_idx as u32 + 1) * 1_000_000,
            op,
            ho_mark: 0,
        };

        // Static baselines at each city stopover.
        if cfg.include_static {
            runner.run_static_stops(dep);
        }

        // The round-robin driving campaign.
        let samples = self.trace.samples();
        if samples.is_empty() {
            return runner.ds;
        }
        let mut t = samples[cfg.start_at_sample.min(samples.len() - 1)].t;
        let trace_end = self.trace.samples().last().unwrap().t;
        let mut cycles = 0usize;
        while t < trace_end {
            if let Some(max) = cfg.max_cycles {
                if cycles >= max {
                    break;
                }
            }
            match self.trace.sample_at(t) {
                None => {
                    // Overnight gap: jump to the next active sample.
                    let idx = samples.partition_point(|s| s.t <= t);
                    if idx >= samples.len() {
                        break;
                    }
                    t = samples[idx].t;
                    continue;
                }
                Some(s) if s.static_stop => {
                    t += SimDuration::from_secs(30);
                    continue;
                }
                Some(_) => {}
            }
            t = runner.run_cycle(t, cfg.include_apps);
            t += SimDuration::from_secs(cfg.cycle_stride_s);
            cycles += 1;
        }

        // Table 1 accounting.
        runner.ds.unique_cells.push((op, runner.session.unique_cell_count()));
        let runtime_ms: u64 = runner
            .ds
            .runs
            .iter()
            .map(|r| r.end.since(r.start).as_millis())
            .sum();
        runner.ds.runtime_min.push((op, runtime_ms as f64 / 60_000.0));
        runner.ds.log_bytes +=
            (runtime_ms as f64 / measure::SAMPLE_MS as f64) * LOG_BYTES_PER_SAMPLE;
        // Tag all handovers not already attributed to a test.
        let events = runner.session.events();
        for e in &events[runner.ho_mark..] {
            runner.ds.handovers.push(TaggedHandover {
                event: *e,
                operator: op,
                test_id: None,
                direction: None,
            });
        }
        runner.ds
    }
}

/// Per-operator campaign state.
struct OpRunner<'a> {
    route: &'a Route,
    trace: &'a DriveTrace,
    fleet: &'a ServerFleet,
    session: RanSession<'a>,
    rng: SimRng,
    ds: Dataset,
    next_id: u32,
    op: Operator,
    ho_mark: usize,
}

impl<'a> OpRunner<'a> {
    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Tag handovers recorded since the last mark to `test_id`.
    fn drain_handovers(&mut self, test_id: u32, direction: Option<Direction>) -> u32 {
        let events = self.session.events();
        let new = &events[self.ho_mark..];
        let n = new.len() as u32;
        for e in new {
            self.ds.handovers.push(TaggedHandover {
                event: *e,
                operator: self.op,
                test_id: Some(test_id),
                direction,
            });
        }
        self.ho_mark = events.len();
        n
    }

    fn run_static_stops(&mut self, dep: &'a Deployment) {
        // Group static samples into per-city stops.
        let mut stops: Vec<(SimTime, f64)> = Vec::new();
        for s in self.trace.static_samples() {
            match stops.last() {
                Some((_, odo_km)) if (s.odo.as_km() - odo_km).abs() < 5.0 => {}
                _ => stops.push((s.t, s.odo.as_km())),
            }
        }
        for (i, (t, odo_km)) in stops.iter().enumerate() {
            let mut rng = self.rng.split(&format!("static/{i}"));
            staticprobe::run_city(
                dep,
                self.route,
                self.fleet,
                wheels_sim_core::units::Distance::from_km(*odo_km),
                *t,
                &mut self.next_id,
                &mut rng,
                &mut self.ds,
            );
        }
    }

    /// Run one round-robin cycle starting at `t`; returns the end time.
    fn run_cycle(&mut self, t: SimTime, include_apps: bool) -> SimTime {
        let mut t = t;
        t = self.run_tput(t, Direction::Downlink);
        t = self.run_tput(t, Direction::Uplink);
        t = self.run_rtt(t);
        if include_apps {
            for compressed in [false, true] {
                t = self.run_offload(t, TestKind::Ar, AppConfig::ar(), compressed);
                t = self.run_offload(t, TestKind::Cav, AppConfig::cav(), compressed);
            }
            t = self.run_video(t);
            t = self.run_gaming(t);
        }
        t
    }

    fn current_path(&self, t: SimTime) -> wheels_transport::servers::NetPath {
        match self.trace.sample_at(t) {
            Some(s) => self.fleet.path(self.op, self.route, s.odo),
            None => self.fleet.cloud_path(self.route, wheels_sim_core::units::Distance::ZERO),
        }
    }

    fn run_tput(&mut self, start: SimTime, dir: Direction) -> SimTime {
        let id = self.alloc_id();
        let path = self.current_path(start);
        self.session.set_demand(match dir {
            Direction::Downlink => TrafficDemand::BackloggedDownlink,
            Direction::Uplink => TrafficDemand::BackloggedUplink,
        });
        let trace = self.trace;
        let session = &mut self.session;
        let out = measure::measure_tput(
            &mut |t| {
                let s = trace.sample_at(t)?;
                session.poll(
                    t,
                    PollCtx {
                        odo: s.odo,
                        speed: s.speed,
                        zone: s.zone,
                        tz: s.tz,
                    },
                )
            },
            &mut |t| {
                trace.sample_at(t).map(|s| VehicleCtx {
                    speed_mph: s.speed.as_mph(),
                    zone: s.zone,
                    tz: s.tz,
                })
            },
            dir,
            start,
            id,
            self.op,
            path,
            true,
        );
        let end = start + measure::TPUT_TEST;
        match dir {
            Direction::Downlink => self.ds.rx_bytes += out.bytes,
            Direction::Uplink => self.ds.tx_bytes += out.bytes,
        }
        self.ds.tput.extend(out.samples);
        self.ds.coverage.extend(out.coverage);
        let hos = self.drain_handovers(id, Some(dir));
        self.ds.runs.push(TestRun {
            id,
            kind: match dir {
                Direction::Downlink => TestKind::DownlinkTput,
                Direction::Uplink => TestKind::UplinkTput,
            },
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: out.hs5g_fraction,
            handovers: hos,
            driving: true,
        });
        end + TEST_GAP
    }

    fn run_rtt(&mut self, start: SimTime) -> SimTime {
        let id = self.alloc_id();
        let path = self.current_path(start);
        self.session.set_demand(TrafficDemand::IcmpOnly);
        let trace = self.trace;
        let session = &mut self.session;
        let (samples, coverage, hs5g) = measure::measure_rtt(
            &mut |t| {
                let s = trace.sample_at(t)?;
                session.poll(
                    t,
                    PollCtx {
                        odo: s.odo,
                        speed: s.speed,
                        zone: s.zone,
                        tz: s.tz,
                    },
                )
            },
            &mut |t| {
                trace.sample_at(t).map(|s| VehicleCtx {
                    speed_mph: s.speed.as_mph(),
                    zone: s.zone,
                    tz: s.tz,
                })
            },
            start,
            id,
            self.op,
            path,
            true,
            self.rng.split(&format!("rtt/{id}")),
        );
        let end = start + measure::RTT_TEST;
        self.ds.rtt.extend(samples);
        self.ds.coverage.extend(coverage);
        let hos = self.drain_handovers(id, None);
        self.ds.runs.push(TestRun {
            id,
            kind: TestKind::Rtt,
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: hs5g,
            handovers: hos,
            driving: true,
        });
        end + TEST_GAP
    }

    /// Adapt the phone into the apps' link abstraction for one test.
    ///
    /// XCAL keeps logging during the app tests, so every 500 ms bin the
    /// sampler touches also yields a coverage row (the direction tagging
    /// follows the app's dominant traffic direction).
    fn with_sampler<R>(
        &mut self,
        path: wheels_transport::servers::NetPath,
        app_direction: Direction,
        f: impl FnOnce(&mut dyn wheels_apps::link::LinkSampler) -> R,
    ) -> R {
        let trace = self.trace;
        let session = &mut self.session;
        let op = self.op;
        let coverage = std::cell::RefCell::new(Vec::new());
        let mut last_bin: u64 = u64::MAX;
        let r = {
            let coverage = &coverage;
            let mut sampler = move |t: SimTime| -> Option<LinkState> {
                let s = trace.sample_at(t)?;
                let snap = session.poll(
                    t,
                    PollCtx {
                        odo: s.odo,
                        speed: s.speed,
                        zone: s.zone,
                        tz: s.tz,
                    },
                );
                let bin = t.as_millis() / 500;
                if bin != last_bin {
                    last_bin = bin;
                    coverage.borrow_mut().push(crate::records::CoverageSample {
                        t,
                        operator: op,
                        tech: snap.as_ref().map(|x| x.tech),
                        direction: Some(app_direction),
                        miles: s.speed.as_mph() * (500.0 / 3_600_000.0),
                        speed_mph: s.speed.as_mph(),
                        tz: s.tz,
                        zone: s.zone,
                    });
                }
                let snap = snap?;
                Some(LinkState {
                    dl: snap.dl_rate * APP_TCP_EFF,
                    ul: snap.ul_rate * APP_TCP_EFF,
                    rtt_ms: measure::base_rtt_ms(&snap, &path),
                    in_handover: snap.in_handover,
                    on_high_speed_5g: snap.tech.is_high_speed(),
                })
            };
            f(&mut sampler)
        };
        self.ds.coverage.extend(coverage.into_inner());
        r
    }

    fn run_offload(
        &mut self,
        start: SimTime,
        kind: TestKind,
        config: AppConfig,
        compressed: bool,
    ) -> SimTime {
        let id = self.alloc_id();
        let path = self.current_path(start);
        self.session.set_demand(TrafficDemand::BackloggedUplink);
        let stats = self.with_sampler(path, Direction::Uplink, |s| {
            OffloadRun::execute(&config, s, start, compressed)
        });
        let end = start + SimDuration::from_secs(config.duration_s);
        let frame_kb = if compressed {
            config.compressed_frame_kb
        } else {
            config.raw_frame_kb
        };
        self.ds.tx_bytes += stats.frames_offloaded as f64 * frame_kb * 1024.0;
        let hos = self.drain_handovers(id, Some(Direction::Uplink));
        self.ds.runs.push(TestRun {
            id,
            kind,
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: stats.high_speed_5g_fraction,
            handovers: hos,
            driving: true,
        });
        self.ds.apps.push(AppRun {
            id,
            operator: self.op,
            kind,
            server: path.kind,
            driving: true,
            offload: Some(stats),
            video: None,
            gaming: None,
        });
        end + TEST_GAP
    }

    fn run_video(&mut self, start: SimTime) -> SimTime {
        let id = self.alloc_id();
        let path = self.current_path(start);
        self.session.set_demand(TrafficDemand::BackloggedDownlink);
        let stats = self.with_sampler(path, Direction::Downlink, |s| VideoRun::execute(s, start));
        let end = start + SimDuration::from_secs(wheels_apps::video::SESSION_S);
        self.ds.rx_bytes += stats.avg_bitrate() * 1e6 / 8.0 * stats.chunks.len() as f64 * 2.0;
        let hos = self.drain_handovers(id, Some(Direction::Downlink));
        self.ds.runs.push(TestRun {
            id,
            kind: TestKind::Video,
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: stats.high_speed_5g_fraction,
            handovers: hos,
            driving: true,
        });
        self.ds.apps.push(AppRun {
            id,
            operator: self.op,
            kind: TestKind::Video,
            server: path.kind,
            driving: true,
            offload: None,
            video: Some(stats),
            gaming: None,
        });
        end + TEST_GAP
    }

    fn run_gaming(&mut self, start: SimTime) -> SimTime {
        let id = self.alloc_id();
        let path = self.current_path(start);
        self.session.set_demand(TrafficDemand::BackloggedDownlink);
        let stats = self.with_sampler(path, Direction::Downlink, |s| GamingRun::execute(s, start));
        let end = start + SimDuration::from_secs(wheels_apps::gaming::SESSION_S);
        self.ds.rx_bytes += stats
            .bitrate_mbps
            .iter()
            .map(|b| b * 1e6 / 8.0)
            .sum::<f64>();
        let hos = self.drain_handovers(id, Some(Direction::Downlink));
        self.ds.runs.push(TestRun {
            id,
            kind: TestKind::Gaming,
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: stats.high_speed_5g_fraction,
            handovers: hos,
            driving: true,
        });
        self.ds.apps.push(AppRun {
            id,
            operator: self.op,
            kind: TestKind::Gaming,
            server: path.kind,
            driving: true,
            offload: None,
            video: None,
            gaming: Some(stats),
        });
        end + TEST_GAP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn small_campaign() -> &'static (Campaign, Dataset) {
        static C: OnceLock<(Campaign, Dataset)> = OnceLock::new();
        C.get_or_init(|| {
            let c = Campaign::standard(2022);
            let cfg = CampaignConfig {
                max_cycles: Some(4),
                include_apps: true,
                include_static: false,
                start_at_sample: 30_000,
                ..CampaignConfig::default()
            };
            let ds = c.run(&cfg);
            (c, ds)
        })
    }

    #[test]
    fn all_three_operators_produce_data() {
        let (_, ds) = small_campaign();
        for op in Operator::ALL {
            let n = ds.tput_where(Some(op), None, Some(true)).count();
            assert!(n > 50, "{op:?}: {n} tput samples");
            assert!(
                ds.rtt.iter().any(|r| r.operator == op),
                "{op:?}: no rtt samples"
            );
        }
    }

    #[test]
    fn operators_share_the_clock() {
        // Concurrent measurement: the three operators' first driving DL
        // tests start at the same sim time (Fig. 6 requires this).
        let (_, ds) = small_campaign();
        let starts: Vec<SimTime> = Operator::ALL
            .iter()
            .map(|op| {
                ds.runs
                    .iter()
                    .filter(|r| r.operator == *op && r.kind == TestKind::DownlinkTput)
                    .map(|r| r.start)
                    .min()
                    .unwrap()
            })
            .collect();
        assert_eq!(starts[0], starts[1]);
        assert_eq!(starts[1], starts[2]);
    }

    #[test]
    fn cycle_produces_all_test_kinds() {
        let (_, ds) = small_campaign();
        for kind in [
            TestKind::DownlinkTput,
            TestKind::UplinkTput,
            TestKind::Rtt,
            TestKind::Ar,
            TestKind::Cav,
            TestKind::Video,
            TestKind::Gaming,
        ] {
            assert!(
                ds.runs.iter().any(|r| r.kind == kind),
                "missing {kind:?} runs"
            );
        }
        // AR and CAV each ran compressed and raw.
        let ar_runs: Vec<_> = ds
            .apps
            .iter()
            .filter(|a| a.kind == TestKind::Ar)
            .collect();
        assert!(ar_runs.iter().any(|a| a.offload.as_ref().unwrap().compressed));
        assert!(ar_runs.iter().any(|a| !a.offload.as_ref().unwrap().compressed));
    }

    #[test]
    fn accounting_totals_populated() {
        let (_, ds) = small_campaign();
        assert!(ds.rx_bytes > 1e6, "rx {}", ds.rx_bytes);
        assert!(ds.tx_bytes > 1e5, "tx {}", ds.tx_bytes);
        assert!(ds.log_bytes > 0.0);
        assert_eq!(ds.unique_cells.len(), 3);
        assert_eq!(ds.runtime_min.len(), 3);
        for (_, mins) in &ds.runtime_min {
            assert!(*mins > 10.0, "runtime {mins} min");
        }
    }

    #[test]
    fn driving_tput_mostly_below_static_peaks() {
        let (_, ds) = small_campaign();
        let driving: Vec<f64> = ds
            .tput_where(None, Some(Direction::Downlink), Some(true))
            .map(|s| s.mbps)
            .collect();
        let med = wheels_sim_core::stats::Cdf::from_samples(driving.iter().copied())
            .median()
            .unwrap();
        assert!(med < 200.0, "driving DL median {med}");
    }

    #[test]
    fn handovers_are_tagged_with_tests() {
        let (_, ds) = small_campaign();
        // At least some handovers happened over 4 cycles × 3 operators.
        assert!(!ds.handovers.is_empty(), "no handovers at all");
        assert!(
            ds.handovers.iter().any(|h| h.test_id.is_some()),
            "no handover attributed to a test"
        );
    }

    #[test]
    fn test_ids_unique_across_operators() {
        let (_, ds) = small_campaign();
        let mut ids: Vec<u32> = ds.runs.iter().map(|r| r.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn static_stops_produce_baselines() {
        // A tiny campaign with static probes only.
        let c = Campaign::standard(2022);
        let cfg = CampaignConfig {
            max_cycles: Some(0),
            include_apps: false,
            include_static: true,
            ..CampaignConfig::default()
        };
        let ds = c.run_operator(Operator::Verizon, &cfg);
        let static_runs = ds.runs.iter().filter(|r| !r.driving).count();
        assert!(static_runs >= 9, "static runs {static_runs}");
        assert!(ds.tput.iter().any(|s| !s.driving));
    }
}
