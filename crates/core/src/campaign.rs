//! The drive-test campaign (§3).
//!
//! Three phones — one per operator — run the test suite round-robin while
//! the car drives: 30 s downlink nuttcp, 30 s uplink nuttcp, 20 s RTT,
//! then the four apps (AR and CAV each with and without compression, a 3
//! minute 360° video session, a 1 minute cloud-gaming session), then the
//! cycle repeats. Static baselines run at the city stopovers. The output
//! is the consolidated [`Dataset`].
//!
//! The three operators run **concurrently on the same clock** (the paper
//! strapped all phones into the same car), which is what makes the Fig. 6
//! operator-diversity analysis possible: for any time bin, all three
//! operators were measured at the same place under the same conditions.
//!
//! # Parallel execution model
//!
//! The unit of parallelism is an **(operator × trace-segment) shard**, not
//! an operator. The cycle schedule is a pure function of (trace, config) —
//! every test has a fixed duration, so cycle start times can be computed
//! up front without running anything. The trace is partitioned at the
//! overnight gaps (one segment per drive day, optionally sub-split via
//! [`CampaignConfig::shard_cycles`]), each shard runs independently on a
//! worker pool with its own RNG stream (`campaign/{op}/{segment}`) and its
//! own test-id range, and the shard datasets **stream** into the merged
//! result in a fixed plan order: each shard normalizes itself into sorted
//! runs, and completed shards drain through a bounded reorder window
//! ([`CampaignConfig::merge_window`]) via an incremental sorted-run merge
//! ([`Dataset::merge_normalized`]) — no terminal sort, no unbounded
//! shard buffering, and the result is bit-identical at any thread count
//! and any window size.
//!
//! Each drive shard cold-starts its [`RanSession`] a [`WARMUP`] window
//! before its first cycle so the serving state (grant, A3 filter state) at
//! the segment boundary matches a session that had been driving all along;
//! warm-up KPIs and handovers are discarded.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use wheels_apps::arcav::{AppConfig, OffloadRun};
use wheels_apps::gaming::GamingRun;
use wheels_apps::link::LinkState;
use wheels_apps::video::VideoRun;
use wheels_geo::route::Route;
use wheels_geo::trace::{DrivePlan, DriveTrace};
use wheels_radio::tech::Direction;
use wheels_ran::cells::{CellId, Deployment};
use wheels_ran::operator::Operator;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::session::{PollCtx, RanSession};
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::time::{SimDuration, SimTime};
use wheels_transport::servers::ServerFleet;

use crate::checkpoint::{CheckpointError, Fingerprint, FrameSpan, Journal, JournalMetrics};
use crate::disrupt::{FaultConfig, FaultKind, FaultSchedule, RetryPolicy};
use crate::measure::{self, VehicleCtx};
use crate::records::{
    AppRun, Dataset, ShardRecords, TaggedHandover, TestAudit, TestKind, TestRun, TestStatus,
};
use crate::staticprobe;

/// Gap between consecutive tests in a cycle.
const TEST_GAP: SimDuration = SimDuration(3_000);
/// Approximate TCP/app-layer efficiency over the radio goodput when apps
/// move data without a dedicated fluid-TCP model.
const APP_TCP_EFF: f64 = 0.85;
/// Synthetic XCAL volume per logged 500 ms record.
const LOG_BYTES_PER_SAMPLE: f64 = 2600.0;
/// Session warm-up window polled (and discarded) before a drive shard's
/// first cycle, so mid-trace shards start with realistic serving state.
const WARMUP: SimDuration = SimDuration(90_000);

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Stop after this many round-robin cycles per operator (None = the
    /// whole trip).
    pub max_cycles: Option<usize>,
    /// Run the app tests (AR/CAV/video/gaming) in each cycle.
    pub include_apps: bool,
    /// Run the static baselines at city stopovers.
    pub include_static: bool,
    /// Start at this index into the drive trace.
    pub start_at_sample: usize,
    /// Idle gap inserted after each cycle (seconds). Zero = continuous
    /// testing (the paper's actual protocol); larger values subsample the
    /// trip uniformly, which keeps scaled-down runs spanning all four
    /// timezones.
    pub cycle_stride_s: u64,
    /// Worker threads for shard execution (None = one per available
    /// core). The shard plan — and therefore the output — depends only on
    /// the config, never on this.
    pub threads: Option<usize>,
    /// Sub-split each drive day into shards of at most this many cycles
    /// (None = one shard per drive day). Changing this changes the RNG
    /// stream layout, so it is part of the config, not a runtime knob.
    pub shard_cycles: Option<usize>,
    /// Reorder-window size for the streaming merge: at most this many
    /// completed shards sit in RAM waiting to drain in plan order
    /// (None = unbounded). Plain runs bound residency by backpressure
    /// (a worker more than a window ahead of the drain front waits);
    /// checkpointed runs never stall — out-of-window shards drop their
    /// RAM copy and re-read their own journal frame at drain time. Like
    /// `threads`, this is a pure runtime knob: the output is
    /// bit-identical at any window size, so it is not part of the
    /// checkpoint [`Fingerprint`].
    pub merge_window: Option<usize>,
    /// Measurement-disruption injection (default: disabled). Fault
    /// schedules are drawn from dedicated `campaign/faults/{op}/{segment}`
    /// streams, so enabling them never perturbs the simulation streams
    /// and the output stays bit-identical at any thread count.
    pub faults: FaultConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2022,
            max_cycles: None,
            include_apps: true,
            include_static: true,
            start_at_sample: 0,
            cycle_stride_s: 0,
            threads: None,
            shard_cycles: None,
            merge_window: None,
            faults: FaultConfig::default(),
        }
    }
}

/// Telemetry from one streaming campaign merge
/// ([`Campaign::run_with_stats`]): how tight the reorder window held.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Largest number of completed shards resident in RAM at once while
    /// waiting to drain — never exceeds the effective merge window.
    pub peak_resident: usize,
    /// Completed shards whose RAM copy was dropped because they landed
    /// outside the reorder window; they were re-read from their own
    /// checkpoint-journal frame at drain time (journalled runs only —
    /// plain runs bound residency by backpressure instead).
    pub spilled: usize,
}

/// Live counters a checkpointed run bumps as it goes — the campaign's
/// face of the shared `wheels-metrics` layer. Everything here is a
/// deterministic event count (shards, frames, audit-ledger rows); no
/// clock is ever read, so attaching metrics cannot perturb output
/// bytes. The `wheels-stress` soak harness polls these mid-run and
/// checks the audit-conservation invariant over the final totals.
#[derive(Debug, Default)]
pub struct CampaignMetrics {
    /// Shards freshly simulated and journalled by this run.
    pub shards_completed: wheels_metrics::Counter,
    /// Shards replayed from the journal on `--resume`.
    pub shards_replayed: wheels_metrics::Counter,
    /// Shards whose RAM copy spilled to their own journal frame.
    pub shards_spilled: wheels_metrics::Counter,
    /// Audit rows with [`TestStatus::Completed`].
    pub tests_completed: wheels_metrics::Counter,
    /// Audit rows with [`TestStatus::Partial`].
    pub tests_partial: wheels_metrics::Counter,
    /// Audit rows with [`TestStatus::Lost`].
    pub tests_lost: wheels_metrics::Counter,
    /// Audit rows that needed more than one attempt.
    pub tests_retried: wheels_metrics::Counter,
    /// Samples planned across all audit rows.
    pub samples_planned: wheels_metrics::Counter,
    /// Samples actually recorded.
    pub samples_recorded: wheels_metrics::Counter,
    /// Samples lost to disruptions.
    pub samples_lost: wheels_metrics::Counter,
    /// Journal append traffic (shared with [`Journal::attach_metrics`]).
    pub journal: std::sync::Arc<JournalMetrics>,
}

impl CampaignMetrics {
    /// Fold one shard's audit-ledger rows into the test counters.
    fn count_audits(&self, audits: &[TestAudit]) {
        for a in audits {
            match a.status {
                TestStatus::Completed => self.tests_completed.inc(),
                TestStatus::Partial => self.tests_partial.inc(),
                TestStatus::Lost => self.tests_lost.inc(),
            }
            if a.attempts > 1 {
                self.tests_retried.inc();
            }
            self.samples_planned.add(u64::from(a.planned_samples));
            self.samples_recorded.add(u64::from(a.recorded_samples));
            self.samples_lost.add(u64::from(a.lost_samples));
        }
    }

    /// The audit-ledger conservation invariant over everything counted
    /// so far: every planned sample is accounted for as recorded or
    /// lost. Only meaningful at a quiesce point (no run in flight).
    pub fn conservation_holds(&self) -> bool {
        self.samples_recorded.get() + self.samples_lost.get() == self.samples_planned.get()
    }

    /// Counters as a JSON object (for the stress report and any
    /// metrics-out dump).
    pub fn to_value(&self) -> serde::Value {
        let u = |c: &wheels_metrics::Counter| serde::Value::U64(c.get());
        serde::Value::Object(vec![
            ("shards_completed".to_string(), u(&self.shards_completed)),
            ("shards_replayed".to_string(), u(&self.shards_replayed)),
            ("shards_spilled".to_string(), u(&self.shards_spilled)),
            ("tests_completed".to_string(), u(&self.tests_completed)),
            ("tests_partial".to_string(), u(&self.tests_partial)),
            ("tests_lost".to_string(), u(&self.tests_lost)),
            ("tests_retried".to_string(), u(&self.tests_retried)),
            ("samples_planned".to_string(), u(&self.samples_planned)),
            ("samples_recorded".to_string(), u(&self.samples_recorded)),
            ("samples_lost".to_string(), u(&self.samples_lost)),
            (
                "frames_appended".to_string(),
                u(&self.journal.frames_appended),
            ),
            (
                "bytes_appended".to_string(),
                u(&self.journal.bytes_appended),
            ),
        ])
    }
}

/// Duration of one round-robin cycle, including the trailing inter-test
/// gaps — a pure function of the config, which is what lets the shard
/// planner precompute every cycle start time without simulating anything.
pub fn cycle_duration(include_apps: bool) -> SimDuration {
    let mut ms = measure::TPUT_TEST.as_millis() + TEST_GAP.as_millis(); // DL
    ms += measure::TPUT_TEST.as_millis() + TEST_GAP.as_millis(); // UL
    ms += measure::RTT_TEST.as_millis() + TEST_GAP.as_millis();
    if include_apps {
        for cfg in [AppConfig::ar(), AppConfig::cav()] {
            // Raw and compressed variants each.
            ms += 2 * (cfg.duration_s * 1000 + TEST_GAP.as_millis());
        }
        ms += wheels_apps::video::SESSION_S * 1000 + TEST_GAP.as_millis();
        ms += wheels_apps::gaming::SESSION_S * 1000 + TEST_GAP.as_millis();
    }
    SimDuration(ms)
}

/// One trace segment's worth of cycles, run as an independent shard.
#[derive(Debug, Clone)]
struct Segment {
    /// Global segment ordinal (time order) — keys the RNG stream and the
    /// shard's test-id range.
    index: usize,
    /// Precomputed cycle start times within this segment.
    starts: Vec<SimTime>,
}

/// One unit of work for the shard pool.
struct ShardJob {
    op: Operator,
    segment: Option<Segment>,
}

/// What one shard hands back for order-independent merging.
struct ShardOut {
    op: Operator,
    ds: Dataset,
    /// Cells this shard's session was served by, unioned per operator in
    /// the finalize step (Table 1's unique-cell counts must not double
    /// count a cell seen by two shards).
    cells: BTreeSet<CellId>,
}

impl ShardOut {
    /// The journal-frame form: the cell set flattens to a sorted `Vec`
    /// (its `BTreeSet` iteration order), which the vendored serde can
    /// encode.
    fn into_records(self) -> ShardRecords {
        ShardRecords {
            operator: self.op,
            dataset: self.ds,
            cells: self.cells.into_iter().collect(),
        }
    }

    /// Rehydrate a replayed journal frame.
    fn from_records(rec: ShardRecords) -> ShardOut {
        ShardOut {
            op: rec.operator,
            ds: rec.dataset,
            cells: rec.cells.into_iter().collect(),
        }
    }
}

/// One completed shard waiting in the reorder window of a journalled
/// run: in-window shards stay resident; out-of-window shards drop their
/// RAM copy — the journal frame they were just appended to *is* the
/// spill — and carry only the frame's byte span for the drain-time
/// re-read. Frames replayed by `--resume` start out spilled by
/// construction.
enum Done {
    Resident(Box<ShardOut>),
    Spilled(FrameSpan),
}

/// The streaming append-target of a campaign run: shard outputs drain
/// into it one at a time, in plan order, each folding in via the linear
/// run merge ([`Dataset::merge_normalized`]) — so the engine never holds
/// more than the reorder window of completed shards and never pays the
/// old terminal O(n log n) `normalize` sort.
struct Merger<'o> {
    ops: &'o [Operator],
    out: Dataset,
    /// Per-operator served-cell unions (Table 1's unique-cell counts
    /// must not double count a cell seen by two shards).
    cells: Vec<BTreeSet<CellId>>,
}

impl<'o> Merger<'o> {
    fn new(ops: &'o [Operator]) -> Self {
        Merger {
            ops,
            out: Dataset::default(),
            cells: vec![BTreeSet::new(); ops.len()],
        }
    }

    /// Fold the next shard (plan order) into the accumulator.
    fn drain(&mut self, shard: ShardOut) {
        if let Some(i) = self.ops.iter().position(|o| *o == shard.op) {
            self.cells[i].extend(shard.cells.iter().copied());
        }
        let mut ds = shard.ds;
        if !ds.is_normalized() {
            // Shards normalize before handing off, but a journal written
            // by an older build may still carry unsorted shard tables.
            ds.normalize();
        }
        self.out.merge_normalized(ds);
    }

    /// Post-merge Table 1 accounting (per-operator unique-cell unions,
    /// runtimes, runtime-derived XCAL log volume) and the final dataset.
    /// Byte-identical to the old merge-everything-then-`normalize` path:
    /// the incremental run merges reproduce the stable sort's
    /// permutation, and the shared accounting pass reproduces its exact
    /// f64 accumulation order.
    fn finish(mut self) -> Dataset {
        let log_base = self.out.log_bytes;
        apply_table1_accounting(&mut self.out, self.ops, &self.cells, log_base);
        debug_assert!(
            self.out.is_normalized(),
            "streaming merge left a table out of canonical order"
        );
        self.out
    }
}

/// Table 1 accounting over an assembled dataset: per-operator
/// unique-cell counts, runtimes, and the runtime-derived XCAL log
/// volume accumulated in `ops` order on top of `log_base` (the summed
/// per-shard log bytes, zero in practice). Shared by [`Merger::finish`]
/// and the incremental `DatasetView::ingest_shard` path so both
/// reproduce the exact f64 accumulation order of the pre-streaming
/// terminal merge. Replaces any aggregates already present.
pub(crate) fn apply_table1_accounting(
    ds: &mut Dataset,
    ops: &[Operator],
    cells: &[BTreeSet<CellId>],
    log_base: f64,
) {
    ds.unique_cells.clear();
    ds.runtime_min.clear();
    ds.log_bytes = log_base;
    for (i, op) in ops.iter().enumerate() {
        let runtime_ms: u64 = ds
            .runs
            .iter()
            .filter(|r| r.operator == *op)
            .map(|r| r.end.since(r.start).as_millis())
            .sum();
        ds.unique_cells.push((*op, cells[i].len()));
        ds.runtime_min.push((*op, runtime_ms as f64 / 60_000.0));
        ds.log_bytes += (runtime_ms as f64 / measure::SAMPLE_MS as f64) * LOG_BYTES_PER_SAMPLE;
    }
}

/// The campaign: route, trace, per-operator deployments, servers.
pub struct Campaign {
    /// The LA→Boston route.
    pub route: Route,
    /// The 8-day drive trace.
    pub trace: DriveTrace,
    /// Deployments in `Operator::ALL` order.
    pub deployments: Vec<Deployment>,
    /// The cloud/edge server fleet.
    pub fleet: ServerFleet,
}

impl Campaign {
    /// Build the standard campaign world from a seed.
    pub fn standard(seed: u64) -> Self {
        let route = Route::standard();
        let rng = SimRng::seed(seed);
        let trace = DrivePlan::default().generate(&route, &mut rng.split("campaign/drive-plan"));
        let deployments = Operator::ALL
            .into_iter()
            // lint: allow(rng-stream-flow, the operator display names seed the deployment streams; relabeling to an area/rest scheme would change every FNV child seed and break the published byte-identical dataset pin in EXPERIMENTS.md)
            .map(|op| Deployment::generate(&route, op, &mut rng.split(op.label())))
            .collect();
        Campaign {
            route,
            trace,
            deployments,
            fleet: ServerFleet::standard(),
        }
    }

    /// The deployment of one operator. O(1): `standard()` builds the
    /// deployments in `Operator::ALL` order, so the operator's position
    /// indexes directly; hand-assembled campaigns that ordered them
    /// differently fall back to a scan.
    pub fn deployment(&self, op: Operator) -> &Deployment {
        let idx = op.index();
        match self.deployments.get(idx) {
            Some(d) if d.operator == op => d,
            _ => self
                .deployments
                .iter()
                .find(|d| d.operator == op)
                .expect("all operators deployed"),
        }
    }

    /// Precompute every cycle start time — the same walk the runner used
    /// to take, minus the simulation: skip overnight gaps and static
    /// stops, advance by the (constant) cycle duration plus the stride.
    fn cycle_starts(&self, cfg: &CampaignConfig) -> Vec<SimTime> {
        let samples = self.trace.samples();
        let mut starts = Vec::new();
        if samples.is_empty() {
            return starts;
        }
        let step = cycle_duration(cfg.include_apps) + SimDuration::from_secs(cfg.cycle_stride_s);
        let mut t = samples[cfg.start_at_sample.min(samples.len() - 1)].t;
        let trace_end = samples.last().expect("checked non-empty above").t;
        while t < trace_end {
            if let Some(max) = cfg.max_cycles {
                if starts.len() >= max {
                    break;
                }
            }
            match self.trace.sample_at(t) {
                None => {
                    // Overnight gap: jump to the next active sample.
                    let idx = samples.partition_point(|s| s.t <= t);
                    if idx >= samples.len() {
                        break;
                    }
                    t = samples[idx].t;
                    continue;
                }
                Some(s) if s.static_stop => {
                    t += SimDuration::from_secs(30);
                    continue;
                }
                Some(_) => {}
            }
            starts.push(t);
            t += step;
        }
        starts
    }

    /// Partition the cycle schedule into shard segments: one per drive
    /// day (the overnight gaps are natural cut points — no session state
    /// survives them), sub-split to at most `shard_cycles` cycles each.
    /// The plan depends only on (trace, config), never on thread count.
    fn segments(&self, cfg: &CampaignConfig) -> Vec<Segment> {
        let cap = cfg.shard_cycles.unwrap_or(usize::MAX).max(1);
        let mut segs: Vec<Segment> = Vec::new();
        let mut cur_day: Option<u8> = None;
        for t in self.cycle_starts(cfg) {
            let day = match self.trace.sample_at(t) {
                Some(s) => s.day,
                None => continue,
            };
            let split =
                cur_day != Some(day) || segs.last().map(|s| s.starts.len() >= cap).unwrap_or(true);
            if split {
                segs.push(Segment {
                    index: segs.len(),
                    starts: Vec::new(),
                });
                cur_day = Some(day);
            }
            segs.last_mut()
                .expect("split pushed a segment on the first iteration")
                .starts
                .push(t);
        }
        segs
    }

    /// The full shard plan, in the fixed merge order.
    fn plan(&self, cfg: &CampaignConfig) -> Vec<ShardJob> {
        let segments = self.segments(cfg);
        let mut jobs = Vec::new();
        for op in Operator::ALL {
            if cfg.include_static {
                jobs.push(ShardJob { op, segment: None });
            }
            for seg in &segments {
                jobs.push(ShardJob {
                    op,
                    segment: Some(seg.clone()),
                });
            }
        }
        jobs
    }

    /// Run the full campaign: execute the shard plan on a worker pool and
    /// stream the results through the reorder window in plan order.
    /// Bit-identical at any thread count and any merge window.
    pub fn run(&self, cfg: &CampaignConfig) -> Dataset {
        self.run_with_stats(cfg).0
    }

    /// [`Campaign::run`] plus the streaming-merge telemetry — the bench
    /// harness asserts the `merge_window` residency bound through this.
    pub fn run_with_stats(&self, cfg: &CampaignConfig) -> (Dataset, MergeStats) {
        let jobs = self.plan(cfg);
        self.run_jobs(&jobs, cfg, &Operator::ALL)
    }

    /// Simulate every shard in the plan sequentially and hand back the
    /// raw per-shard records in plan order — the feed for the
    /// incremental `DatasetView::ingest_shard` pipeline and its
    /// bench/property harnesses, which deliberately need the whole plan
    /// materialized to shuffle and replay it.
    pub fn shard_records(&self, cfg: &CampaignConfig) -> Vec<ShardRecords> {
        self.plan(cfg)
            .iter()
            .map(|job| self.run_shard(job, cfg).into_records())
            .collect()
    }

    /// The identity of a checkpointed run: every config field the shard
    /// plan and shard contents depend on, plus the derived plan shape —
    /// and deliberately *not* `threads`, which the engine guarantees has
    /// no effect on output. A journal may only be resumed by a run with
    /// an equal fingerprint.
    pub fn fingerprint(&self, cfg: &CampaignConfig) -> Fingerprint {
        Fingerprint {
            seed: cfg.seed,
            max_cycles: cfg.max_cycles,
            include_apps: cfg.include_apps,
            include_static: cfg.include_static,
            start_at_sample: cfg.start_at_sample,
            cycle_stride_s: cfg.cycle_stride_s,
            shard_cycles: cfg.shard_cycles,
            faults: cfg.faults,
            segments: self.segments(cfg).len(),
            jobs: self.plan(cfg).len(),
        }
    }

    /// Run the campaign with crash-safe checkpointing: each completed
    /// shard is journalled to `dir` before its result is merged. With
    /// `resume = false` a fresh journal replaces whatever was in `dir`;
    /// with `resume = true` the existing journal is verified against this
    /// run's [`Fingerprint`], its intact frames replay as already-done
    /// shards (any torn tail from a crash is truncated away), and only
    /// the missing shards are re-simulated. Either way the merged dataset
    /// is bit-identical to [`Campaign::run`] with the same config, at any
    /// thread count.
    pub fn run_checkpointed(
        &self,
        cfg: &CampaignConfig,
        dir: &Path,
        resume: bool,
    ) -> Result<Dataset, CheckpointError> {
        Ok(self.run_checkpointed_with_stats(cfg, dir, resume)?.0)
    }

    /// [`Campaign::run_checkpointed`] plus the streaming-merge telemetry
    /// (peak resident shard count, journal spill count).
    pub fn run_checkpointed_with_stats(
        &self,
        cfg: &CampaignConfig,
        dir: &Path,
        resume: bool,
    ) -> Result<(Dataset, MergeStats), CheckpointError> {
        self.run_checkpointed_observed(cfg, dir, resume, &CampaignMetrics::default())
    }

    /// [`Campaign::run_checkpointed_with_stats`] with live
    /// [`CampaignMetrics`] attached: the run bumps shard, journal, and
    /// audit-ledger counters as it goes. Counters never feed back into
    /// the simulation, so observed and unobserved runs are
    /// byte-identical.
    pub fn run_checkpointed_observed(
        &self,
        cfg: &CampaignConfig,
        dir: &Path,
        resume: bool,
        metrics: &CampaignMetrics,
    ) -> Result<(Dataset, MergeStats), CheckpointError> {
        let fp = self.fingerprint(cfg);
        let jobs = self.plan(cfg);
        let (journal, completed) = if resume {
            Journal::resume_indexed(dir, &fp)?
        } else {
            (Journal::create(dir, &fp)?, BTreeMap::new())
        };
        // A matching fingerprint pins the plan shape, but frames still
        // assert which shard they are — check the plan bounds up front;
        // the operator cross-check happens when each frame is decoded at
        // drain time (frames are no longer eagerly materialized).
        for i in completed.keys() {
            if *i >= jobs.len() {
                return Err(CheckpointError::Invalid(format!(
                    "journal frame for shard {i} is outside the {}-job plan",
                    jobs.len()
                )));
            }
        }
        self.run_jobs_journalled(&jobs, cfg, journal, completed, metrics)
    }

    /// Run the campaign for one operator (sequentially, same shard plan —
    /// the result matches that operator's slice of [`Campaign::run`]).
    pub fn run_operator(&self, op: Operator, cfg: &CampaignConfig) -> Dataset {
        let ops = [op];
        let mut merger = Merger::new(&ops);
        if cfg.include_static {
            merger.drain(self.run_shard(&ShardJob { op, segment: None }, cfg));
        }
        for seg in self.segments(cfg) {
            merger.drain(self.run_shard(
                &ShardJob {
                    op,
                    segment: Some(seg),
                },
                cfg,
            ));
        }
        merger.finish()
    }

    /// Worker count for a plan: `cfg.threads`, defaulting to one per
    /// core, clamped to the number of jobs.
    fn worker_threads(cfg: &CampaignConfig, jobs: usize) -> usize {
        cfg.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, jobs.max(1))
    }

    /// Execute jobs on a pool of `cfg.threads` workers (default: one per
    /// core), draining completed shards into the streaming [`Merger`] in
    /// plan order through a bounded reorder window. Workers pull jobs
    /// from a shared counter but *wait* before simulating a job more
    /// than `merge_window` shards ahead of the drain front —
    /// backpressure, not buffering, bounds residency when there is no
    /// journal to spill to. The claimant of the drain-front job itself
    /// never waits, so the pool always makes progress; and because the
    /// drain order is the plan order no matter which worker ran what,
    /// the output is byte-identical at any thread count and any window.
    fn run_jobs(
        &self,
        jobs: &[ShardJob],
        cfg: &CampaignConfig,
        ops: &[Operator],
    ) -> (Dataset, MergeStats) {
        struct Reorder<'o> {
            merger: Merger<'o>,
            parked: BTreeMap<usize, ShardOut>,
            next_drain: usize,
            peak_resident: usize,
        }
        let threads = Self::worker_threads(cfg, jobs.len());
        let window = cfg.merge_window.unwrap_or(usize::MAX).max(1);
        let next_job = AtomicUsize::new(0);
        let state = Mutex::new(Reorder {
            merger: Merger::new(ops),
            parked: BTreeMap::new(),
            next_drain: 0,
            peak_resident: 0,
        });
        let in_window = Condvar::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    {
                        let mut st = state.lock().expect("reorder state mutex poisoned");
                        while i >= st.next_drain.saturating_add(window) {
                            st = in_window.wait(st).expect("reorder state mutex poisoned");
                        }
                    }
                    let out = self.run_shard(&jobs[i], cfg);
                    let mut st = state.lock().expect("reorder state mutex poisoned");
                    st.parked.insert(i, out);
                    st.peak_resident = st.peak_resident.max(st.parked.len());
                    loop {
                        let front = st.next_drain;
                        let Some(done) = st.parked.remove(&front) else {
                            break;
                        };
                        st.merger.drain(done);
                        st.next_drain += 1;
                    }
                    drop(st);
                    in_window.notify_all();
                });
            }
        });
        let st = state.into_inner().expect("reorder state mutex poisoned");
        debug_assert_eq!(st.next_drain, jobs.len(), "every shard drained");
        (
            st.merger.finish(),
            MergeStats {
                peak_resident: st.peak_resident,
                spilled: 0,
            },
        )
    }

    /// [`Campaign::run_jobs`] with a checkpoint journal attached: every
    /// freshly-run shard is appended to the journal (serialized under a
    /// lock — appends must not interleave) *before* its result counts as
    /// done, so a kill at any moment loses at most the shards still in
    /// flight. Journalled runs never stall on the reorder window:
    /// instead of backpressure, an out-of-window shard drops its RAM
    /// copy — its own just-synced journal frame is the spill — and is
    /// re-read at drain time; frames replayed by `--resume` enter the
    /// same way. A journal failure stops the pool at the next job
    /// boundary and surfaces as an error rather than silently degrading
    /// to an uncheckpointed run.
    fn run_jobs_journalled(
        &self,
        jobs: &[ShardJob],
        cfg: &CampaignConfig,
        mut journal: Journal,
        completed: BTreeMap<usize, FrameSpan>,
        metrics: &CampaignMetrics,
    ) -> Result<(Dataset, MergeStats), CheckpointError> {
        journal.attach_metrics(std::sync::Arc::clone(&metrics.journal));
        // lint: allow(lossy-cast, shard count is far below u64::MAX — usize widens exactly)
        metrics.shards_replayed.add(completed.len() as u64);
        struct Reorder<'o> {
            merger: Merger<'o>,
            parked: BTreeMap<usize, Done>,
            next_drain: usize,
            resident: usize,
            peak_resident: usize,
            spilled: usize,
        }
        let threads = Self::worker_threads(cfg, jobs.len());
        let window = cfg.merge_window.unwrap_or(usize::MAX).max(1);
        let reader = journal.reader();
        // Drain every contiguous done shard at the front of the window:
        // resident shards fold straight in, spilled ones re-read their
        // journal frame (re-verifying the operator the plan expects).
        let drain = |st: &mut Reorder| -> Result<(), CheckpointError> {
            loop {
                let front = st.next_drain;
                let Some(done) = st.parked.remove(&front) else {
                    break;
                };
                let out = match done {
                    Done::Resident(out) => {
                        st.resident -= 1;
                        *out
                    }
                    Done::Spilled(span) => {
                        let rec = reader.read_frame(span)?;
                        if rec.operator != jobs[st.next_drain].op {
                            return Err(CheckpointError::Invalid(format!(
                                "journal frame for shard {} records {}, the plan expects {}",
                                st.next_drain,
                                rec.operator.label(),
                                jobs[st.next_drain].op.label()
                            )));
                        }
                        ShardOut::from_records(rec)
                    }
                };
                st.merger.drain(out);
                st.next_drain += 1;
            }
            Ok(())
        };
        let mut init = Reorder {
            merger: Merger::new(&Operator::ALL),
            parked: BTreeMap::new(),
            next_drain: 0,
            resident: 0,
            peak_resident: 0,
            spilled: 0,
        };
        for (i, span) in completed {
            init.parked.insert(i, Done::Spilled(span));
        }
        drain(&mut init)?;
        let state = Mutex::new(init);
        let next_job = AtomicUsize::new(0);
        let journal = Mutex::new(journal);
        let failed: Mutex<Option<CheckpointError>> = Mutex::new(None);
        let fail = |e: CheckpointError| {
            let mut slot = failed.lock().expect("journal failure mutex poisoned");
            if slot.is_none() {
                *slot = Some(e);
            }
        };
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    {
                        let st = state.lock().expect("reorder state mutex poisoned");
                        if i < st.next_drain || st.parked.contains_key(&i) {
                            continue; // replayed from the journal
                        }
                    }
                    if failed
                        .lock()
                        .expect("journal failure mutex poisoned")
                        .is_some()
                    {
                        break; // the journal is broken; stop burning work
                    }
                    let rec = self.run_shard(&jobs[i], cfg).into_records();
                    let appended = journal
                        .lock()
                        .expect("journal mutex poisoned")
                        .append(i, &rec);
                    let span = match appended {
                        Ok(span) => span,
                        Err(e) => {
                            fail(e);
                            break;
                        }
                    };
                    metrics.shards_completed.inc();
                    metrics.count_audits(&rec.dataset.audits);
                    let mut st = state.lock().expect("reorder state mutex poisoned");
                    if i < st.next_drain.saturating_add(window) {
                        let parked = &mut st.parked;
                        // lint: allow(bounded-ingest, this is the reorder window itself — residency is capped at merge_window and everything past it spills to the journal branch below)
                        parked.insert(i, Done::Resident(ShardOut::from_records(rec).into()));
                        st.resident += 1;
                        st.peak_resident = st.peak_resident.max(st.resident);
                    } else {
                        st.parked.insert(i, Done::Spilled(span));
                        st.spilled += 1;
                        metrics.shards_spilled.inc();
                    }
                    if let Err(e) = drain(&mut st) {
                        drop(st);
                        fail(e);
                        break;
                    }
                });
            }
        });
        if let Some(e) = failed.into_inner().expect("journal failure mutex poisoned") {
            return Err(e);
        }
        let mut st = state.into_inner().expect("reorder state mutex poisoned");
        // A fully-replayed resume never deposits anything from a worker,
        // so the tail of the window drains here.
        drain(&mut st)?;
        debug_assert_eq!(st.next_drain, jobs.len(), "every shard drained");
        Ok((
            st.merger.finish(),
            MergeStats {
                peak_resident: st.peak_resident,
                spilled: st.spilled,
            },
        ))
    }

    /// Run one shard: the operator's static baselines (segment = None) or
    /// one trace segment of drive cycles.
    fn run_shard(&self, job: &ShardJob, cfg: &CampaignConfig) -> ShardOut {
        let op = job.op;
        let dep = self.deployment(op);
        // lint: allow(lossy-cast, operator index is 0..3, exact in u32)
        let op_idx = op.index() as u32;
        let (rng, next_id) = match &job.segment {
            // Static shard: keep the original per-operator stream and id
            // range so static baselines are unchanged by the sharding.
            None => (
                SimRng::seed(cfg.seed).split(&format!("campaign/{}", op.label())),
                (op_idx + 1) * 1_000_000,
            ),
            Some(seg) => (
                SimRng::seed(cfg.seed).split(&format!("campaign/{}/{}", op.label(), seg.index)),
                // Disjoint id ranges: 10k ids per segment, segments well
                // clear of the static ranges.
                // lint: allow(lossy-cast, segment count is bounded by trace days x shard_cycles, far below u32)
                (op_idx + 1) * 100_000_000 + seg.index as u32 * 10_000,
            ),
        };
        // Disruptions only hit the drive campaign: each drive segment
        // gets its own schedule from a dedicated stream, keyed like the
        // shard itself, spanning first cycle start → last cycle end.
        // Static shards (and disabled faults) get the empty schedule.
        let faults = match &job.segment {
            Some(seg) if cfg.faults.enabled => match (seg.starts.first(), seg.starts.last()) {
                (Some(&lo), Some(&hi)) => FaultSchedule::generate(
                    &cfg.faults,
                    cfg.seed,
                    op.label(),
                    seg.index,
                    lo,
                    hi + cycle_duration(cfg.include_apps),
                ),
                _ => FaultSchedule::default(),
            },
            _ => FaultSchedule::default(),
        };
        let mut runner = OpRunner {
            route: &self.route,
            trace: &self.trace,
            fleet: &self.fleet,
            session: RanSession::new(
                dep,
                TrafficDemand::BackloggedDownlink,
                rng.split("campaign/ran"),
            ),
            rng,
            ds: Dataset::default(),
            next_id,
            op,
            ho_mark: 0,
            faults,
            retry: cfg.faults.retry,
            day: 0,
        };
        match &job.segment {
            None => runner.run_static_stops(dep),
            Some(seg) => runner.run_segment(seg, cfg.include_apps),
        }
        // Hand each shard off as a set of sorted runs: merging
        // stably-sorted runs in plan order reproduces the permutation of
        // the old terminal stable sort over the concatenation (the
        // classic mergesort identity), which is what keeps the streaming
        // engine byte-identical to the buffering one.
        runner.ds.normalize();
        ShardOut {
            op,
            ds: runner.ds,
            cells: runner.session.unique_cells().collect(),
        }
    }
}

/// Per-operator campaign state.
struct OpRunner<'a> {
    route: &'a Route,
    trace: &'a DriveTrace,
    fleet: &'a ServerFleet,
    session: RanSession<'a>,
    rng: SimRng,
    ds: Dataset,
    next_id: u32,
    op: Operator,
    ho_mark: usize,
    /// Shard fault schedule (empty unless injection is enabled).
    faults: FaultSchedule,
    /// Retry policy for blocked test starts.
    retry: RetryPolicy,
    /// Trip day of the cycle currently running (keys the audit rows).
    day: u8,
}

impl<'a> OpRunner<'a> {
    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Tag handovers recorded since the last mark to `test_id`.
    fn drain_handovers(&mut self, test_id: u32, direction: Option<Direction>) -> u32 {
        let events = self.session.events();
        let new = &events[self.ho_mark..];
        // lint: allow(lossy-cast, handovers per test are far below u32::MAX)
        let n = new.len() as u32;
        for e in new {
            self.ds.handovers.push(TaggedHandover {
                event: *e,
                operator: self.op,
                test_id: Some(test_id),
                direction,
            });
        }
        self.ho_mark = events.len();
        n
    }

    /// Samples the fault-free schedule would record in `[start, end)` at
    /// `step_ms` cadence: one per grid point with trace coverage. A pure
    /// function of (trace, config), so it is identical whether or not
    /// faults are enabled — the baseline the audit ledger accounts
    /// against.
    fn planned_samples(&self, start: SimTime, end: SimTime, step_ms: u64) -> u32 {
        let mut n = 0u32;
        let mut t = start;
        while t < end {
            if self.trace.sample_at(t).is_some() {
                n += 1;
            }
            t += SimDuration::from_millis(step_ms);
        }
        n
    }

    /// Record one audit-ledger row for a scheduled drive test.
    #[allow(clippy::too_many_arguments)]
    fn push_audit(
        &mut self,
        test_id: u32,
        kind: TestKind,
        scheduled: SimTime,
        status: TestStatus,
        attempts: u32,
        fault: Option<FaultKind>,
        planned: u32,
        recorded: u32,
    ) {
        self.ds.audits.push(TestAudit {
            test_id,
            operator: self.op,
            kind,
            day: self.day,
            scheduled,
            status,
            attempts,
            fault,
            planned_samples: planned,
            recorded_samples: recorded,
            lost_samples: planned.saturating_sub(recorded),
        });
    }

    fn run_static_stops(&mut self, dep: &'a Deployment) {
        // Group static samples into per-city stops.
        let mut stops: Vec<(SimTime, f64)> = Vec::new();
        for s in self.trace.static_samples() {
            match stops.last() {
                Some((_, odo_km)) if (s.odo.as_km() - odo_km).abs() < 5.0 => {}
                _ => stops.push((s.t, s.odo.as_km())),
            }
        }
        for (i, (t, odo_km)) in stops.iter().enumerate() {
            let mut rng = self.rng.split(&format!("static/{i}"));
            staticprobe::run_city(
                dep,
                self.route,
                self.fleet,
                wheels_sim_core::units::Distance::from_km(*odo_km),
                *t,
                &mut self.next_id,
                &mut rng,
                &mut self.ds,
            );
        }
    }

    /// Run one trace segment: warm the session up ahead of the first
    /// cycle (KPIs and handovers discarded), run each precomputed cycle,
    /// then record leftover handovers as passive (untagged).
    fn run_segment(&mut self, seg: &Segment, include_apps: bool) {
        let Some(&first) = seg.starts.first() else {
            return;
        };
        let mut t = SimTime(first.0.saturating_sub(WARMUP.as_millis()));
        while t < first {
            if let Some(s) = self.trace.sample_at(t) {
                self.session.poll(
                    t,
                    PollCtx {
                        odo: s.odo,
                        speed: s.speed,
                        zone: s.zone,
                        tz: s.tz,
                    },
                );
            }
            t += SimDuration(measure::SAMPLE_MS);
        }
        // Warm-up handovers belong to no test and would double against
        // the neighbouring shard's — drop them.
        self.ho_mark = self.session.events().len();
        for &start in &seg.starts {
            let Some(s) = self.trace.sample_at(start) else {
                continue;
            };
            self.day = s.day;
            self.run_cycle(start, include_apps);
        }
        let events = self.session.events();
        for e in &events[self.ho_mark..] {
            self.ds.handovers.push(TaggedHandover {
                event: *e,
                operator: self.op,
                test_id: None,
                direction: None,
            });
        }
        self.ho_mark = events.len();
    }

    /// Run one round-robin cycle starting at `t`; returns the end time.
    fn run_cycle(&mut self, t: SimTime, include_apps: bool) -> SimTime {
        let mut t = t;
        t = self.run_tput(t, Direction::Downlink);
        t = self.run_tput(t, Direction::Uplink);
        t = self.run_rtt(t);
        if include_apps {
            for compressed in [false, true] {
                t = self.run_offload(t, TestKind::Ar, AppConfig::ar(), compressed);
                t = self.run_offload(t, TestKind::Cav, AppConfig::cav(), compressed);
            }
            t = self.run_video(t);
            t = self.run_gaming(t);
        }
        t
    }

    fn current_path(&self, t: SimTime) -> wheels_transport::servers::NetPath {
        match self.trace.sample_at(t) {
            Some(s) => self.fleet.path(self.op, self.route, s.odo),
            None => self
                .fleet
                .cloud_path(self.route, wheels_sim_core::units::Distance::ZERO),
        }
    }

    fn run_tput(&mut self, start: SimTime, dir: Direction) -> SimTime {
        let id = self.alloc_id();
        let kind = match dir {
            Direction::Downlink => TestKind::DownlinkTput,
            Direction::Uplink => TestKind::UplinkTput,
        };
        let sched_end = start + measure::TPUT_TEST;
        let planned = self.planned_samples(start, sched_end, measure::SAMPLE_MS);
        let plan = self.faults.plan_test(start, sched_end, &self.retry);
        let Some(begin) = plan.begin else {
            // Retries exhausted (or the slot is drift-poisoned): the
            // slot produces no data, only a ledger row. The id was
            // allocated anyway so the slot plan matches the fault-free
            // campaign.
            self.push_audit(
                id,
                kind,
                start,
                TestStatus::Lost,
                plan.attempts,
                plan.fault,
                planned,
                0,
            );
            return sched_end + TEST_GAP;
        };
        let path = self.current_path(begin);
        self.session.set_demand(match dir {
            Direction::Downlink => TrafficDemand::BackloggedDownlink,
            Direction::Uplink => TrafficDemand::BackloggedUplink,
        });
        let trace = self.trace;
        let session = &mut self.session;
        let mut out = measure::measure_tput_window(
            &mut |t| {
                let s = trace.sample_at(t)?;
                session.poll(
                    t,
                    PollCtx {
                        odo: s.odo,
                        speed: s.speed,
                        zone: s.zone,
                        tz: s.tz,
                    },
                )
            },
            &mut |t| {
                trace.sample_at(t).map(|s| VehicleCtx {
                    speed_mph: s.speed.as_mph(),
                    zone: s.zone,
                    tz: s.tz,
                })
            },
            dir,
            begin,
            plan.cut,
            id,
            self.op,
            path,
            true,
        );
        // XCAL logger gaps eat the KPI-joined rows recorded inside them.
        let mut fault = plan.fault;
        if !self.faults.is_empty() {
            let faults = &self.faults;
            let before = out.coverage.len();
            out.samples.retain(|s| !faults.in_gap(s.t));
            out.coverage.retain(|c| !faults.in_gap(c.t));
            if out.coverage.len() < before {
                fault = fault.or(Some(FaultKind::LoggerGap));
            }
        }
        // The instrument records whole 500 ms bins from `begin` to the
        // cut; that is the run's actual window.
        let end = begin
            + SimDuration::from_millis(
                plan.cut.since(begin).as_millis() / measure::SAMPLE_MS * measure::SAMPLE_MS,
            );
        // lint: allow(lossy-cast, at most 60 bins per test, exact in u32)
        let recorded = out.coverage.len() as u32;
        match dir {
            Direction::Downlink => self.ds.rx_bytes += out.bytes,
            Direction::Uplink => self.ds.tx_bytes += out.bytes,
        }
        self.ds.tput.extend(out.samples);
        self.ds.coverage.extend(out.coverage);
        let hos = self.drain_handovers(id, Some(dir));
        let partial = recorded < planned;
        self.push_audit(
            id,
            kind,
            start,
            if partial {
                TestStatus::Partial
            } else {
                TestStatus::Completed
            },
            plan.attempts,
            fault,
            planned,
            recorded,
        );
        self.ds.runs.push(TestRun {
            id,
            kind,
            operator: self.op,
            start: begin,
            end,
            miles: self.trace.distance_in_window(begin, end).as_miles(),
            tz: self
                .trace
                .sample_at(begin)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: out.hs5g_fraction,
            handovers: hos,
            driving: true,
            partial,
        });
        sched_end + TEST_GAP
    }

    fn run_rtt(&mut self, start: SimTime) -> SimTime {
        let id = self.alloc_id();
        let sched_end = start + measure::RTT_TEST;
        // Pings fire on a deterministic 200 ms cadence, so the planned
        // count is a pure trace lookup like the throughput bins.
        let planned = self.planned_samples(start, sched_end, 200);
        let plan = self.faults.plan_test(start, sched_end, &self.retry);
        let Some(begin) = plan.begin else {
            self.push_audit(
                id,
                TestKind::Rtt,
                start,
                TestStatus::Lost,
                plan.attempts,
                plan.fault,
                planned,
                0,
            );
            return sched_end + TEST_GAP;
        };
        let path = self.current_path(begin);
        self.session.set_demand(TrafficDemand::IcmpOnly);
        let trace = self.trace;
        let session = &mut self.session;
        let (samples, mut coverage, hs5g) = measure::measure_rtt_window(
            &mut |t| {
                let s = trace.sample_at(t)?;
                session.poll(
                    t,
                    PollCtx {
                        odo: s.odo,
                        speed: s.speed,
                        zone: s.zone,
                        tz: s.tz,
                    },
                )
            },
            &mut |t| {
                trace.sample_at(t).map(|s| VehicleCtx {
                    speed_mph: s.speed.as_mph(),
                    zone: s.zone,
                    tz: s.tz,
                })
            },
            begin,
            plan.cut,
            id,
            self.op,
            path,
            true,
            self.rng.split(&format!("campaign/rtt/{id}")),
        );
        // The ping log is app-layer, so logger gaps only eat the
        // XCAL-derived coverage rows, not the RTT samples.
        if !self.faults.is_empty() {
            let faults = &self.faults;
            coverage.retain(|c| !faults.in_gap(c.t));
        }
        let end = plan.cut;
        // lint: allow(lossy-cast, at most 100 pings per test, exact in u32)
        let recorded = samples.len() as u32;
        self.ds.rtt.extend(samples);
        self.ds.coverage.extend(coverage);
        let hos = self.drain_handovers(id, None);
        let partial = recorded < planned;
        self.push_audit(
            id,
            TestKind::Rtt,
            start,
            if partial {
                TestStatus::Partial
            } else {
                TestStatus::Completed
            },
            plan.attempts,
            plan.fault,
            planned,
            recorded,
        );
        self.ds.runs.push(TestRun {
            id,
            kind: TestKind::Rtt,
            operator: self.op,
            start: begin,
            end,
            miles: self.trace.distance_in_window(begin, end).as_miles(),
            tz: self
                .trace
                .sample_at(begin)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: hs5g,
            handovers: hos,
            driving: true,
            partial,
        });
        sched_end + TEST_GAP
    }

    /// Adapt the phone into the apps' link abstraction for one test.
    ///
    /// XCAL keeps logging during the app tests, so every 500 ms bin the
    /// sampler touches also yields a coverage row (the direction tagging
    /// follows the app's dominant traffic direction). Under an injected
    /// blocking fault the link reads as dead (`None`) — the modem still
    /// logs, so the coverage row is recorded first — and rows falling in
    /// logger gaps are dropped afterwards. Returns the closure's result
    /// plus (kept, gap-dropped) coverage-row counts for the audit ledger.
    fn with_sampler<R>(
        &mut self,
        path: wheels_transport::servers::NetPath,
        app_direction: Direction,
        f: impl FnOnce(&mut dyn wheels_apps::link::LinkSampler) -> R,
    ) -> (R, u32, u32) {
        let trace = self.trace;
        let session = &mut self.session;
        let op = self.op;
        let faults = &self.faults;
        let coverage = std::cell::RefCell::new(Vec::new());
        let mut last_bin: u64 = u64::MAX;
        let r = {
            let coverage = &coverage;
            let mut sampler = move |t: SimTime| -> Option<LinkState> {
                let s = trace.sample_at(t)?;
                let snap = session.poll(
                    t,
                    PollCtx {
                        odo: s.odo,
                        speed: s.speed,
                        zone: s.zone,
                        tz: s.tz,
                    },
                );
                let bin = t.as_millis() / 500;
                if bin != last_bin {
                    last_bin = bin;
                    coverage.borrow_mut().push(crate::records::CoverageSample {
                        t,
                        operator: op,
                        tech: snap.as_ref().map(|x| x.tech),
                        direction: Some(app_direction),
                        miles: s.speed.as_mph() * (500.0 / 3_600_000.0),
                        speed_mph: s.speed.as_mph(),
                        tz: s.tz,
                        zone: s.zone,
                    });
                }
                if faults.blocking_at(t).is_some() {
                    return None;
                }
                let snap = snap?;
                Some(LinkState {
                    dl: snap.dl_rate * APP_TCP_EFF,
                    ul: snap.ul_rate * APP_TCP_EFF,
                    rtt_ms: measure::base_rtt_ms(&snap, &path),
                    in_handover: snap.in_handover,
                    on_high_speed_5g: snap.tech.is_high_speed(),
                })
            };
            f(&mut sampler)
        };
        let mut rows = coverage.into_inner();
        let before = rows.len();
        if !self.faults.is_empty() {
            let faults = &self.faults;
            rows.retain(|c| !faults.in_gap(c.t));
        }
        // lint: allow(lossy-cast, bins per app run are far below u32::MAX)
        let (kept, dropped) = (rows.len() as u32, (before - rows.len()) as u32);
        self.ds.coverage.extend(rows);
        (r, kept, dropped)
    }

    /// Resolve an app slot against the fault schedule. App sessions have
    /// fixed internal durations, so a blocked start cannot be salvaged by
    /// a late begin the way a throughput test can: the slot is either run
    /// in full (mid-run faults degrade the link instead of truncating) or
    /// lost. Returns the plan when the app runs, or `None` after pushing
    /// the lost-slot audit row.
    fn plan_app(
        &mut self,
        id: u32,
        kind: TestKind,
        start: SimTime,
        sched_end: SimTime,
    ) -> Option<crate::disrupt::TestPlan> {
        let plan = self.faults.plan_test(start, sched_end, &self.retry);
        if plan.begin == Some(start) {
            return Some(plan);
        }
        self.push_audit(
            id,
            kind,
            start,
            TestStatus::Lost,
            plan.attempts,
            plan.fault,
            0,
            0,
        );
        None
    }

    /// Audit row for an app run that executed. App sampling times depend
    /// on app behaviour, so "planned" is defined as the rows the run
    /// produced plus the rows logger gaps ate — conservation holds by
    /// construction, and with faults off the row is a clean `Completed`.
    fn audit_app(
        &mut self,
        id: u32,
        kind: TestKind,
        start: SimTime,
        plan: &crate::disrupt::TestPlan,
        kept: u32,
        dropped: u32,
    ) {
        let mut fault = plan.fault;
        if dropped > 0 {
            fault = fault.or(Some(FaultKind::LoggerGap));
        }
        self.push_audit(
            id,
            kind,
            start,
            if dropped > 0 {
                TestStatus::Partial
            } else {
                TestStatus::Completed
            },
            plan.attempts,
            fault,
            kept + dropped,
            kept,
        );
    }

    fn run_offload(
        &mut self,
        start: SimTime,
        kind: TestKind,
        config: AppConfig,
        compressed: bool,
    ) -> SimTime {
        let id = self.alloc_id();
        let end = start + SimDuration::from_secs(config.duration_s);
        let Some(plan) = self.plan_app(id, kind, start, end) else {
            return end + TEST_GAP;
        };
        let path = self.current_path(start);
        self.session.set_demand(TrafficDemand::BackloggedUplink);
        let (stats, kept, dropped) = self.with_sampler(path, Direction::Uplink, |s| {
            OffloadRun::execute(&config, s, start, compressed)
        });
        let frame_kb = if compressed {
            config.compressed_frame_kb
        } else {
            config.raw_frame_kb
        };
        self.ds.tx_bytes += stats.frames_offloaded as f64 * frame_kb * 1024.0;
        let hos = self.drain_handovers(id, Some(Direction::Uplink));
        self.audit_app(id, kind, start, &plan, kept, dropped);
        self.ds.runs.push(TestRun {
            id,
            kind,
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: stats.high_speed_5g_fraction,
            handovers: hos,
            driving: true,
            partial: dropped > 0,
        });
        self.ds.apps.push(AppRun {
            id,
            operator: self.op,
            kind,
            server: path.kind,
            driving: true,
            offload: Some(stats),
            video: None,
            gaming: None,
        });
        end + TEST_GAP
    }

    fn run_video(&mut self, start: SimTime) -> SimTime {
        let id = self.alloc_id();
        let end = start + SimDuration::from_secs(wheels_apps::video::SESSION_S);
        let Some(plan) = self.plan_app(id, TestKind::Video, start, end) else {
            return end + TEST_GAP;
        };
        let path = self.current_path(start);
        self.session.set_demand(TrafficDemand::BackloggedDownlink);
        let (stats, kept, dropped) =
            self.with_sampler(path, Direction::Downlink, |s| VideoRun::execute(s, start));
        self.ds.rx_bytes += stats.avg_bitrate() * 1e6 / 8.0 * stats.chunks.len() as f64 * 2.0;
        let hos = self.drain_handovers(id, Some(Direction::Downlink));
        self.audit_app(id, TestKind::Video, start, &plan, kept, dropped);
        self.ds.runs.push(TestRun {
            id,
            kind: TestKind::Video,
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: stats.high_speed_5g_fraction,
            handovers: hos,
            driving: true,
            partial: dropped > 0,
        });
        self.ds.apps.push(AppRun {
            id,
            operator: self.op,
            kind: TestKind::Video,
            server: path.kind,
            driving: true,
            offload: None,
            video: Some(stats),
            gaming: None,
        });
        end + TEST_GAP
    }

    fn run_gaming(&mut self, start: SimTime) -> SimTime {
        let id = self.alloc_id();
        let end = start + SimDuration::from_secs(wheels_apps::gaming::SESSION_S);
        let Some(plan) = self.plan_app(id, TestKind::Gaming, start, end) else {
            return end + TEST_GAP;
        };
        let path = self.current_path(start);
        self.session.set_demand(TrafficDemand::BackloggedDownlink);
        let (stats, kept, dropped) =
            self.with_sampler(path, Direction::Downlink, |s| GamingRun::execute(s, start));
        self.ds.rx_bytes += stats
            .bitrate_mbps
            .iter()
            .map(|b| b * 1e6 / 8.0)
            .sum::<f64>();
        let hos = self.drain_handovers(id, Some(Direction::Downlink));
        self.audit_app(id, TestKind::Gaming, start, &plan, kept, dropped);
        self.ds.runs.push(TestRun {
            id,
            kind: TestKind::Gaming,
            operator: self.op,
            start,
            end,
            miles: self.trace.distance_in_window(start, end).as_miles(),
            tz: self
                .trace
                .sample_at(start)
                .map(|s| s.tz)
                .unwrap_or(wheels_sim_core::time::Timezone::Pacific),
            server: path.kind,
            hs5g_fraction: stats.high_speed_5g_fraction,
            handovers: hos,
            driving: true,
            partial: dropped > 0,
        });
        self.ds.apps.push(AppRun {
            id,
            operator: self.op,
            kind: TestKind::Gaming,
            server: path.kind,
            driving: true,
            offload: None,
            video: None,
            gaming: Some(stats),
        });
        end + TEST_GAP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn small_campaign() -> &'static (Campaign, Dataset) {
        static C: OnceLock<(Campaign, Dataset)> = OnceLock::new();
        C.get_or_init(|| {
            let c = Campaign::standard(2022);
            let cfg = CampaignConfig {
                max_cycles: Some(4),
                include_apps: true,
                include_static: false,
                start_at_sample: 30_000,
                ..CampaignConfig::default()
            };
            let ds = c.run(&cfg);
            (c, ds)
        })
    }

    #[test]
    fn all_three_operators_produce_data() {
        let (_, ds) = small_campaign();
        for op in Operator::ALL {
            let n = ds.tput_where(Some(op), None, Some(true)).count();
            assert!(n > 50, "{op:?}: {n} tput samples");
            assert!(
                ds.rtt.iter().any(|r| r.operator == op),
                "{op:?}: no rtt samples"
            );
        }
    }

    #[test]
    fn operators_share_the_clock() {
        // Concurrent measurement: the three operators' first driving DL
        // tests start at the same sim time (Fig. 6 requires this).
        let (_, ds) = small_campaign();
        let starts: Vec<SimTime> = Operator::ALL
            .iter()
            .map(|op| {
                ds.runs
                    .iter()
                    .filter(|r| r.operator == *op && r.kind == TestKind::DownlinkTput)
                    .map(|r| r.start)
                    .min()
                    .unwrap()
            })
            .collect();
        assert_eq!(starts[0], starts[1]);
        assert_eq!(starts[1], starts[2]);
    }

    #[test]
    fn cycle_produces_all_test_kinds() {
        let (_, ds) = small_campaign();
        for kind in [
            TestKind::DownlinkTput,
            TestKind::UplinkTput,
            TestKind::Rtt,
            TestKind::Ar,
            TestKind::Cav,
            TestKind::Video,
            TestKind::Gaming,
        ] {
            assert!(
                ds.runs.iter().any(|r| r.kind == kind),
                "missing {kind:?} runs"
            );
        }
        // AR and CAV each ran compressed and raw.
        let ar_runs: Vec<_> = ds.apps.iter().filter(|a| a.kind == TestKind::Ar).collect();
        assert!(ar_runs
            .iter()
            .any(|a| a.offload.as_ref().unwrap().compressed));
        assert!(ar_runs
            .iter()
            .any(|a| !a.offload.as_ref().unwrap().compressed));
    }

    #[test]
    fn accounting_totals_populated() {
        let (_, ds) = small_campaign();
        assert!(ds.rx_bytes > 1e6, "rx {}", ds.rx_bytes);
        assert!(ds.tx_bytes > 1e5, "tx {}", ds.tx_bytes);
        assert!(ds.log_bytes > 0.0);
        assert_eq!(ds.unique_cells.len(), 3);
        assert_eq!(ds.runtime_min.len(), 3);
        for (_, mins) in &ds.runtime_min {
            assert!(*mins > 10.0, "runtime {mins} min");
        }
    }

    #[test]
    fn driving_tput_mostly_below_static_peaks() {
        let (_, ds) = small_campaign();
        let driving: Vec<f64> = ds
            .tput_where(None, Some(Direction::Downlink), Some(true))
            .map(|s| s.mbps)
            .collect();
        let med = wheels_sim_core::stats::Cdf::from_samples(driving.iter().copied())
            .median()
            .unwrap();
        assert!(med < 200.0, "driving DL median {med}");
    }

    #[test]
    fn handovers_are_tagged_with_tests() {
        let (_, ds) = small_campaign();
        // At least some handovers happened over 4 cycles × 3 operators.
        assert!(!ds.handovers.is_empty(), "no handovers at all");
        assert!(
            ds.handovers.iter().any(|h| h.test_id.is_some()),
            "no handover attributed to a test"
        );
    }

    #[test]
    fn test_ids_unique_across_operators() {
        let (_, ds) = small_campaign();
        let mut ids: Vec<u32> = ds.runs.iter().map(|r| r.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn merge_window_is_a_pure_runtime_knob() {
        let c = Campaign::standard(7);
        let base = CampaignConfig {
            max_cycles: Some(2),
            include_apps: false,
            include_static: false,
            cycle_stride_s: 40_000,
            shard_cycles: Some(1),
            ..CampaignConfig::default()
        };
        let baseline = c.run(&base);
        assert!(baseline.is_normalized(), "streamed output is canonical");
        for (threads, window) in [(1, 1), (4, 1), (4, 2), (2, 3)] {
            let cfg = CampaignConfig {
                threads: Some(threads),
                merge_window: Some(window),
                ..base.clone()
            };
            let (ds, stats) = c.run_with_stats(&cfg);
            assert_eq!(
                serde_json::to_string(&ds).unwrap(),
                serde_json::to_string(&baseline).unwrap(),
                "threads {threads} window {window}"
            );
            assert!(
                stats.peak_resident <= window,
                "threads {threads} window {window}: peak resident {}",
                stats.peak_resident
            );
            assert_eq!(stats.spilled, 0, "plain runs never spill");
        }
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_resumes_complete_journals() {
        let c = Campaign::standard(7);
        let cfg = CampaignConfig {
            max_cycles: Some(2),
            include_apps: false,
            include_static: false,
            cycle_stride_s: 40_000,
            shard_cycles: Some(1),
            ..CampaignConfig::default()
        };
        let dir = std::env::temp_dir()
            .join("wheels-checkpoint-tests")
            .join("campaign_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let baseline = c.run(&cfg);
        let fresh = c.run_checkpointed(&cfg, &dir, false).unwrap();
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&baseline).unwrap()
        );
        // Every shard is journalled: a resume replays all of them and
        // must reproduce the same bytes without re-simulating anything.
        let resumed = c.run_checkpointed(&cfg, &dir, true).unwrap();
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&baseline).unwrap()
        );
        // A different seed must be refused, not merged.
        let other = CampaignConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        match c.run_checkpointed(&other, &dir, true) {
            Err(CheckpointError::Mismatch(d)) => assert!(d.contains("seed"), "{d}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn observed_runs_count_shards_and_conserve_the_audit_ledger() {
        let c = Campaign::standard(7);
        let cfg = CampaignConfig {
            max_cycles: Some(2),
            include_apps: false,
            include_static: false,
            cycle_stride_s: 40_000,
            shard_cycles: Some(1),
            faults: FaultConfig::demo(),
            ..CampaignConfig::default()
        };
        let dir = std::env::temp_dir()
            .join("wheels-checkpoint-tests")
            .join("campaign_observed");
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = c.plan(&cfg).len() as u64;

        let fresh = CampaignMetrics::default();
        let (ds, _) = c
            .run_checkpointed_observed(&cfg, &dir, false, &fresh)
            .unwrap();
        assert_eq!(fresh.shards_completed.get(), jobs);
        assert_eq!(fresh.shards_replayed.get(), 0);
        assert_eq!(fresh.journal.frames_appended.get(), jobs);
        assert!(fresh.journal.bytes_appended.get() > 0);
        let audits = ds.audits.len() as u64;
        assert_eq!(
            fresh.tests_completed.get() + fresh.tests_partial.get() + fresh.tests_lost.get(),
            audits,
            "every ledger row lands in exactly one status counter"
        );
        assert!(
            fresh.conservation_holds(),
            "recorded {} + lost {} != planned {}",
            fresh.samples_recorded.get(),
            fresh.samples_lost.get(),
            fresh.samples_planned.get()
        );

        // A full-journal resume replays everything and appends nothing.
        let resumed = CampaignMetrics::default();
        c.run_checkpointed_observed(&cfg, &dir, true, &resumed)
            .unwrap();
        assert_eq!(resumed.shards_replayed.get(), jobs);
        assert_eq!(resumed.shards_completed.get(), 0);
        assert_eq!(resumed.journal.frames_appended.get(), 0);
        assert!(resumed.conservation_holds(), "vacuous on a full replay");
    }

    #[test]
    fn static_stops_produce_baselines() {
        // A tiny campaign with static probes only.
        let c = Campaign::standard(2022);
        let cfg = CampaignConfig {
            max_cycles: Some(0),
            include_apps: false,
            include_static: true,
            ..CampaignConfig::default()
        };
        let ds = c.run_operator(Operator::Verizon, &cfg);
        let static_runs = ds.runs.iter().filter(|r| !r.driving).count();
        assert!(static_runs >= 9, "static runs {static_runs}");
        assert!(ds.tput.iter().any(|s| !s.driving));
    }
}
