//! Measurement disruptions — the paper's challenge \[C2\], injected.
//!
//! The authors' campaign was not clean: the nuttcp/ping servers fell
//! over, the UE apps crashed and had to be restarted, the XCAL logger
//! silently stopped writing, and UE clocks drifted until resynced (§3,
//! Appendix B). This module models those four disruption kinds as
//! **deterministic fault schedules**: per (operator × segment) window
//! lists drawn from config-keyed RNG streams
//! (`campaign/faults/{op}/{segment}`), so the schedule is a pure
//! function of `(FaultConfig, seed)` — independent of thread count and
//! of every other simulation stream. Faults default **off**; the empty
//! schedule reproduces the fault-free campaign bit for bit.
//!
//! The orchestrator consumes a schedule through [`FaultSchedule::plan_test`]:
//! per-test retry with exponential backoff against *blocking* faults
//! (server outages, app crash/restart windows), truncation ("salvage")
//! when a fault lands mid-test, and loss accounting for the slots that
//! never produce data. Logger gaps do not block a test — they eat the
//! XCAL-derived rows recorded during the gap. Clock-drift bursts beyond
//! the correctable threshold make a test's data unusable (log sync
//! would misplace it), so such tests are lost whole.

use serde::{Deserialize, Serialize};
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::time::{SimDuration, SimTime};

/// The four disruption kinds from the paper's campaign notes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The measurement server (nuttcp/ping endpoint) is unreachable.
    ServerOutage,
    /// The UE measurement app crashed; the window covers the crash plus
    /// the manual restart.
    AppCrash,
    /// XCAL stopped logging: KPI-derived rows in the window are lost.
    LoggerGap,
    /// UE clock drift burst until the next resync.
    ClockDrift,
}

impl FaultKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::ServerOutage => "server-outage",
            FaultKind::AppCrash => "app-crash",
            FaultKind::LoggerGap => "logger-gap",
            FaultKind::ClockDrift => "clock-drift",
        }
    }

    /// Blocking faults prevent a test from starting (and cut it short
    /// when they begin mid-test); non-blocking faults degrade its data.
    pub fn blocks(self) -> bool {
        matches!(self, FaultKind::ServerOutage | FaultKind::AppCrash)
    }
}

/// Retry-with-backoff policy for tests whose start is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = give up immediately).
    pub max_retries: u32,
    /// Delay before the first retry, in whole seconds (whole seconds
    /// keep retried starts aligned with the 500 ms / 200 ms sample
    /// grids).
    pub backoff_s: u64,
    /// Multiplier applied to the delay for each further retry.
    pub backoff_mult: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 2 retries at +5 s and +5+15 s: the slot keeps its scheduled
        // end, so late starts salvage a shortened test.
        RetryPolicy {
            max_retries: 2,
            backoff_s: 5,
            backoff_mult: 3,
        }
    }
}

/// Fault-injection knobs. Rates are mean events per *drive hour*;
/// durations are drawn uniformly from inclusive ranges in seconds.
/// `Default` disables everything (all-zero rates), which must reproduce
/// the fault-free campaign exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master switch; `false` short-circuits to an empty schedule.
    pub enabled: bool,
    /// Server outage windows per drive hour.
    pub outages_per_hour: f64,
    /// Outage duration range (seconds, inclusive).
    pub outage_secs: (u64, u64),
    /// App crashes per drive hour.
    pub crashes_per_hour: f64,
    /// Crash-plus-restart duration range (seconds, inclusive).
    pub restart_secs: (u64, u64),
    /// XCAL logger gaps per drive hour.
    pub gaps_per_hour: f64,
    /// Gap duration range (seconds, inclusive).
    pub gap_secs: (u64, u64),
    /// Clock-drift bursts per drive hour.
    pub drifts_per_hour: f64,
    /// Drift magnitude range (milliseconds, inclusive); sign is drawn.
    pub drift_ms: (u64, u64),
    /// Magnitudes at or below this are corrected by log sync; larger
    /// drifts make the affected tests unusable.
    pub drift_correctable_ms: u64,
    /// Retry policy for blocked test starts.
    pub retry: RetryPolicy,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            enabled: false,
            outages_per_hour: 0.0,
            outage_secs: (0, 0),
            crashes_per_hour: 0.0,
            restart_secs: (0, 0),
            gaps_per_hour: 0.0,
            gap_secs: (0, 0),
            drifts_per_hour: 0.0,
            drift_ms: (0, 0),
            drift_correctable_ms: 0,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultConfig {
    /// A moderately disrupted campaign, patterned on the paper's anecdotes:
    /// roughly one incident of some kind per drive hour. Used by the
    /// `--faults` CLI flag and the fault-matrix tests.
    pub fn demo() -> Self {
        FaultConfig {
            enabled: true,
            outages_per_hour: 0.35,
            outage_secs: (30, 180),
            crashes_per_hour: 0.25,
            restart_secs: (20, 90),
            gaps_per_hour: 0.3,
            gap_secs: (10, 60),
            drifts_per_hour: 0.2,
            drift_ms: (500, 120_000),
            drift_correctable_ms: 30_000,
            retry: RetryPolicy::default(),
        }
    }
}

/// One scheduled disruption window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Disruption kind.
    pub kind: FaultKind,
    /// Window start.
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Signed drift magnitude (ms); zero for non-drift kinds.
    pub drift_ms: i64,
    /// Whether log sync can correct this window's effect (always `true`
    /// for non-drift kinds, which do not corrupt timestamps).
    pub correctable: bool,
}

impl FaultWindow {
    fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    fn overlaps(&self, lo: SimTime, hi: SimTime) -> bool {
        self.start < hi && lo < self.end
    }
}

/// How one scheduled test slot plays out under a fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestPlan {
    /// Actual start after retries; `None` when the test is lost.
    pub begin: Option<SimTime>,
    /// Instrument stop time: the scheduled end, or the start of the
    /// blocking window that truncates the run.
    pub cut: SimTime,
    /// Attempts made (1 = started on schedule).
    pub attempts: u32,
    /// First fault that interfered (blocked an attempt, truncated the
    /// run, or drifted the clock during it).
    pub fault: Option<FaultKind>,
}

/// The fault windows of one (operator × segment) shard, sorted by start.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

/// Round a fractional millisecond offset to the sim grid.
fn to_ms(x: f64) -> u64 {
    x.max(0.0).round() as u64
}

impl FaultSchedule {
    /// Generate the schedule for one shard over `[lo, hi)`.
    ///
    /// Determinism contract: the schedule is derived from a dedicated
    /// stream keyed only by `(seed, operator, segment)` — never from the
    /// shard's simulation RNG — so enabling faults does not perturb any
    /// fault-free draw, and the shard plan stays core-count-independent.
    pub fn generate(
        cfg: &FaultConfig,
        seed: u64,
        op_label: &str,
        segment_index: usize,
        lo: SimTime,
        hi: SimTime,
    ) -> Self {
        if !cfg.enabled || hi <= lo {
            return FaultSchedule::default();
        }
        let mut rng =
            SimRng::seed(seed).split(&format!("campaign/faults/{op_label}/{segment_index}"));
        let mut windows = Vec::new();
        // Fixed kind order keeps the stream layout stable.
        Self::poisson_windows(
            &mut rng,
            FaultKind::ServerOutage,
            cfg.outages_per_hour,
            cfg.outage_secs,
            lo,
            hi,
            &mut windows,
        );
        Self::poisson_windows(
            &mut rng,
            FaultKind::AppCrash,
            cfg.crashes_per_hour,
            cfg.restart_secs,
            lo,
            hi,
            &mut windows,
        );
        Self::poisson_windows(
            &mut rng,
            FaultKind::LoggerGap,
            cfg.gaps_per_hour,
            cfg.gap_secs,
            lo,
            hi,
            &mut windows,
        );
        // Drift bursts carry a signed magnitude and a correctability
        // verdict; their "duration" is the time until the next resync,
        // reusing the gap machinery with a fixed 60–600 s resync lag.
        if cfg.drifts_per_hour > 0.0 {
            let mean_gap_ms = 3_600_000.0 / cfg.drifts_per_hour;
            let mut t = lo.as_millis() as f64 + rng.exponential(mean_gap_ms);
            while t < hi.as_millis() as f64 {
                let start = SimTime::EPOCH + SimDuration::from_millis(to_ms(t));
                let dur_ms = rng.uniform_u64(60_000, 600_001);
                let mag = rng.uniform_u64(cfg.drift_ms.0, cfg.drift_ms.1 + 1);
                let sign: i64 = if rng.chance(0.5) { -1 } else { 1 };
                // Ordered reads above; the window itself may be clipped.
                let end = SimTime::EPOCH + SimDuration::from_millis(to_ms(t) + dur_ms);
                let end = end.min(hi);
                // lint: allow(lossy-cast, drift magnitude is config-bounded far below i64::MAX)
                let signed_mag = sign * (mag as i64);
                windows.push(FaultWindow {
                    kind: FaultKind::ClockDrift,
                    start,
                    end,
                    drift_ms: signed_mag,
                    correctable: mag <= cfg.drift_correctable_ms,
                });
                t += dur_ms as f64 + rng.exponential(mean_gap_ms);
            }
        }
        windows.sort_by_key(|w| (w.start.as_millis(), w.end.as_millis()));
        FaultSchedule { windows }
    }

    /// Poisson arrivals with uniform durations for one window kind.
    fn poisson_windows(
        rng: &mut SimRng,
        kind: FaultKind,
        per_hour: f64,
        dur_secs: (u64, u64),
        lo: SimTime,
        hi: SimTime,
        out: &mut Vec<FaultWindow>,
    ) {
        if per_hour <= 0.0 {
            return;
        }
        let mean_gap_ms = 3_600_000.0 / per_hour;
        let mut t = lo.as_millis() as f64 + rng.exponential(mean_gap_ms);
        while t < hi.as_millis() as f64 {
            let dur_ms = rng.uniform_u64(dur_secs.0, dur_secs.1 + 1) * 1_000;
            let start = SimTime::EPOCH + SimDuration::from_millis(to_ms(t));
            let end = (SimTime::EPOCH + SimDuration::from_millis(to_ms(t) + dur_ms)).min(hi);
            out.push(FaultWindow {
                kind,
                start,
                end,
                drift_ms: 0,
                correctable: true,
            });
            t += dur_ms as f64 + rng.exponential(mean_gap_ms);
        }
    }

    /// True when no disruption is scheduled (the fault-free fast path).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All windows, sorted by start.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The blocking fault in effect at `t`, if any.
    pub fn blocking_at(&self, t: SimTime) -> Option<FaultKind> {
        self.windows
            .iter()
            .find(|w| w.kind.blocks() && w.contains(t))
            .map(|w| w.kind)
    }

    /// True when the XCAL logger is down at `t`.
    pub fn in_gap(&self, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::LoggerGap && w.contains(t))
    }

    /// Earliest blocking window starting strictly inside `(after, before)`.
    fn next_blocking_start(&self, after: SimTime, before: SimTime) -> Option<&FaultWindow> {
        self.windows
            .iter()
            .find(|w| w.kind.blocks() && w.start > after && w.start < before)
    }

    /// The worst drift burst overlapping `[lo, hi)`, preferring
    /// uncorrectable ones.
    fn drift_over(&self, lo: SimTime, hi: SimTime) -> Option<&FaultWindow> {
        let drifts = || {
            self.windows
                .iter()
                .filter(|w| w.kind == FaultKind::ClockDrift && w.overlaps(lo, hi))
        };
        drifts()
            .find(|w| !w.correctable)
            .or_else(|| drifts().next())
    }

    /// Resolve one scheduled test slot `[start, end)` against the
    /// schedule: retry blocked starts with backoff (the slot keeps its
    /// scheduled end, so late starts shorten the run), truncate at the
    /// next blocking window, and fail tests whose window is covered by
    /// an uncorrectable drift burst.
    pub fn plan_test(&self, start: SimTime, end: SimTime, retry: &RetryPolicy) -> TestPlan {
        if self.windows.is_empty() {
            return TestPlan {
                begin: Some(start),
                cut: end,
                attempts: 1,
                fault: None,
            };
        }
        // Uncorrectable clock drift poisons the whole slot: samples
        // would be recorded, but log sync cannot place them.
        if let Some(w) = self.drift_over(start, end) {
            if !w.correctable {
                return TestPlan {
                    begin: None,
                    cut: end,
                    attempts: 1,
                    fault: Some(FaultKind::ClockDrift),
                };
            }
        }
        let mut attempts: u32 = 1;
        let mut t = start;
        let mut first_fault: Option<FaultKind> = None;
        loop {
            match self.blocking_at(t) {
                None => break,
                Some(kind) => {
                    first_fault.get_or_insert(kind);
                    if attempts > retry.max_retries {
                        return TestPlan {
                            begin: None,
                            cut: end,
                            attempts,
                            fault: first_fault,
                        };
                    }
                    let delay_s = retry.backoff_s * u64::from(retry.backoff_mult).pow(attempts - 1);
                    t += SimDuration::from_secs(delay_s);
                    attempts += 1;
                    if t >= end {
                        return TestPlan {
                            begin: None,
                            cut: end,
                            attempts,
                            fault: first_fault,
                        };
                    }
                }
            }
        }
        let cut = match self.next_blocking_start(t, end) {
            Some(w) => {
                first_fault.get_or_insert(w.kind);
                w.start
            }
            None => end,
        };
        if let Some(w) = self.drift_over(t, cut) {
            first_fault.get_or_insert(w.kind);
        }
        TestPlan {
            begin: Some(t),
            cut,
            attempts,
            fault: first_fault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn one_window(kind: FaultKind, lo: u64, hi: u64) -> FaultSchedule {
        FaultSchedule {
            windows: vec![FaultWindow {
                kind,
                start: t(lo),
                end: t(hi),
                drift_ms: 0,
                correctable: true,
            }],
        }
    }

    #[test]
    fn disabled_config_generates_nothing() {
        let s = FaultSchedule::generate(&FaultConfig::default(), 2022, "vz", 0, t(0), t(36_000));
        assert!(s.is_empty());
        let plan = s.plan_test(t(100), t(130), &RetryPolicy::default());
        assert_eq!(plan.begin, Some(t(100)));
        assert_eq!(plan.cut, t(130));
        assert_eq!(plan.attempts, 1);
        assert_eq!(plan.fault, None);
    }

    #[test]
    fn generation_is_deterministic_and_stream_keyed() {
        let cfg = FaultConfig::demo();
        let a = FaultSchedule::generate(&cfg, 2022, "vz", 3, t(0), t(36_000));
        let b = FaultSchedule::generate(&cfg, 2022, "vz", 3, t(0), t(36_000));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "10 drive hours at ~1/h must draw faults");
        // Different operator, segment, or seed → different schedule.
        assert_ne!(
            a,
            FaultSchedule::generate(&cfg, 2022, "att", 3, t(0), t(36_000))
        );
        assert_ne!(
            a,
            FaultSchedule::generate(&cfg, 2022, "vz", 4, t(0), t(36_000))
        );
        assert_ne!(
            a,
            FaultSchedule::generate(&cfg, 2023, "vz", 3, t(0), t(36_000))
        );
        // Windows are clipped to the span and sorted.
        for w in a.windows() {
            assert!(w.start < w.end);
            assert!(w.end <= t(36_000));
        }
        assert!(a.windows().windows(2).all(|p| p[0].start <= p[1].start));
    }

    #[test]
    fn blocked_start_retries_with_backoff() {
        // Outage covers the scheduled start; default policy retries at
        // +5 s (still blocked) and +20 s (clear).
        let s = one_window(FaultKind::ServerOutage, 95, 110);
        let plan = s.plan_test(t(100), t(130), &RetryPolicy::default());
        assert_eq!(plan.begin, Some(t(120)));
        assert_eq!(plan.cut, t(130));
        assert_eq!(plan.attempts, 3);
        assert_eq!(plan.fault, Some(FaultKind::ServerOutage));
    }

    #[test]
    fn retries_exhausted_loses_the_test() {
        let s = one_window(FaultKind::AppCrash, 90, 200);
        let plan = s.plan_test(t(100), t(130), &RetryPolicy::default());
        assert_eq!(plan.begin, None);
        assert_eq!(plan.attempts, 3);
        assert_eq!(plan.fault, Some(FaultKind::AppCrash));
    }

    #[test]
    fn mid_test_outage_truncates() {
        let s = one_window(FaultKind::ServerOutage, 115, 140);
        let plan = s.plan_test(t(100), t(130), &RetryPolicy::default());
        assert_eq!(plan.begin, Some(t(100)));
        assert_eq!(plan.cut, t(115));
        assert_eq!(plan.attempts, 1);
        assert_eq!(plan.fault, Some(FaultKind::ServerOutage));
    }

    #[test]
    fn logger_gap_does_not_block_or_truncate() {
        let s = one_window(FaultKind::LoggerGap, 95, 140);
        let plan = s.plan_test(t(100), t(130), &RetryPolicy::default());
        assert_eq!(plan.begin, Some(t(100)));
        assert_eq!(plan.cut, t(130));
        assert_eq!(plan.fault, None);
        assert!(s.in_gap(t(120)));
        assert!(!s.in_gap(t(150)));
    }

    #[test]
    fn uncorrectable_drift_loses_the_slot() {
        let mut s = one_window(FaultKind::ClockDrift, 110, 300);
        s.windows[0].drift_ms = -90_000;
        s.windows[0].correctable = false;
        let plan = s.plan_test(t(100), t(130), &RetryPolicy::default());
        assert_eq!(plan.begin, None);
        assert_eq!(plan.attempts, 1);
        assert_eq!(plan.fault, Some(FaultKind::ClockDrift));
        // A correctable burst only annotates the plan.
        s.windows[0].correctable = true;
        let plan = s.plan_test(t(100), t(130), &RetryPolicy::default());
        assert_eq!(plan.begin, Some(t(100)));
        assert_eq!(plan.cut, t(130));
        assert_eq!(plan.fault, Some(FaultKind::ClockDrift));
    }
}
