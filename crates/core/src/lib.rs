//! # wheels-core
//!
//! The paper's measurement platform and analysis pipeline — the primary
//! contribution this workspace reproduces.
//!
//! - [`records`] — the consolidated database schema: 500 ms throughput
//!   samples with their cross-layer KPIs, RTT samples, per-test aggregates,
//!   handover events, coverage samples, and app-run records.
//! - [`logsync`] — the challenge-\[C2\] software: reconciling app logs (UTC
//!   or local time) with XCAL `.drm` files (local-time filenames, EDT
//!   contents) across four timezones into one simulation-time database.
//! - [`staticprobe`] — the §5.1 baseline: static tests facing a 5G
//!   mmWave/mid-band base station in each major city.
//! - [`disrupt`] — the challenge-\[C2\] fault model: deterministic
//!   schedules of server outages, app crashes, XCAL logger gaps, and
//!   clock-drift bursts, with per-test retry/backoff, salvage, and loss
//!   accounting. Off by default; the empty schedule is bit-identical to
//!   the fault-free campaign.
//! - [`campaign`] — the §3 drive-test campaign: three XCAL phones running
//!   throughput / RTT / app tests round-robin while three handover-logger
//!   phones record passively, producing a [`records::Dataset`].
//! - [`checkpoint`] — crash-safe campaign persistence: an append-only
//!   shard journal (length-prefixed, checksummed frames behind an
//!   atomically-created identity header) that lets a `--checkpoint` run
//!   killed at any byte resume bit-identically with `--resume`.
//! - [`analysis`] — everything §4–§7 computes: coverage-by-miles,
//!   KPI↔throughput correlations (Table 2), handover impact (ΔT₁/ΔT₂,
//!   Fig. 12), and operator diversity (Fig. 6).
//! - [`column`] — the struct-of-arrays twin of [`records::Dataset`] and
//!   the WCD1 binary file format: contiguous per-field columns the
//!   analysis kernels batch over, plus a checksummed fixed-width on-disk
//!   layout that loads without a parse step. JSON stays the pinned
//!   interchange format; WCD1 is the fast cache/transport layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
pub mod checkpoint;
pub mod column;
pub mod disrupt;
pub mod logsync;
pub mod measure;
pub mod records;
pub mod staticprobe;

pub use campaign::{Campaign, CampaignConfig};
pub use records::Dataset;
