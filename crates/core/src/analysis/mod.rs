//! The analysis pipeline behind §4–§7.
//!
//! - [`coverage`] — miles-weighted technology shares, overall and broken
//!   down by direction, timezone, and speed bin (Figs. 1–2).
//! - [`correlation`] — the Table 2 Pearson matrix between 500 ms
//!   throughput and the cross-layer KPIs.
//! - [`handover`] — handover statistics and the ΔT₁/ΔT₂ impact analysis
//!   (Figs. 11–12).
//! - [`diversity`] — operator-pair concurrent throughput differences and
//!   the HT/LT technology bins (Fig. 6).
//! - [`view`] — indexed, memoized [`view::DatasetView`] the figure
//!   modules query instead of re-scanning the flat tables.

pub mod correlation;
pub mod coverage;
pub mod diversity;
pub mod handover;
pub mod view;
