//! Coverage analysis (Figs. 1–2): miles-weighted technology shares.
//!
//! The `*_cols` kernels are the batched path: they gather technology
//! codes and miles weights from the contiguous [`CoverageColumns`]
//! slices through a position index (the view's per-operator coverage
//! index), touching exactly the two or three columns each figure needs.

use std::collections::BTreeMap;

use wheels_radio::tech::{Direction, Technology};
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::WeightedShare;
use wheels_sim_core::time::Timezone;
use wheels_sim_core::units::{Speed, SpeedBin};

use crate::analysis::view::at;
use crate::column::{self, CoverageColumns};
use crate::records::CoverageSample;

/// A coverage breakdown: for each technology (plus out-of-service), the
/// percentage of miles driven while connected to it.
#[derive(Debug, Clone, Default)]
pub struct TechShare {
    share: WeightedShare<Option<Technology>>,
}

impl TechShare {
    /// Accumulate a sample.
    pub fn add(&mut self, tech: Option<Technology>, miles: f64) {
        self.share.add(tech, miles);
    }

    /// Percentage of miles on `tech`.
    pub fn pct(&self, tech: Technology) -> f64 {
        self.share.percent(&Some(tech))
    }

    /// Percentage of miles with no service.
    pub fn pct_no_service(&self) -> f64 {
        self.share.percent(&None)
    }

    /// Percentage of miles on any 5G technology (Fig. 2a's headline).
    pub fn pct_5g(&self) -> f64 {
        Technology::ALL
            .iter()
            .filter(|t| t.is_5g())
            .map(|t| self.pct(*t))
            .sum()
    }

    /// Percentage of miles on high-speed 5G (mid + mmWave).
    pub fn pct_high_speed(&self) -> f64 {
        Technology::ALL
            .iter()
            .filter(|t| t.is_high_speed())
            .map(|t| self.pct(*t))
            .sum()
    }

    /// Total miles accumulated.
    pub fn total_miles(&self) -> f64 {
        self.share.total()
    }
}

/// Fig. 2a: per-operator overall technology share of miles driven.
pub fn overall(samples: &[CoverageSample], op: Operator) -> TechShare {
    overall_from(samples.iter().filter(|s| s.operator == op))
}

/// [`overall`] over pre-filtered samples (the dataset-view path).
pub fn overall_from<'a>(samples: impl IntoIterator<Item = &'a CoverageSample>) -> TechShare {
    let mut out = TechShare::default();
    for s in samples {
        out.add(s.tech, s.miles);
    }
    out
}

/// Fig. 2b: share split by backlogged traffic direction.
pub fn by_direction(samples: &[CoverageSample], op: Operator) -> BTreeMap<Direction, TechShare> {
    by_direction_from(samples.iter().filter(|s| s.operator == op))
}

/// [`by_direction`] over pre-filtered samples.
pub fn by_direction_from<'a>(
    samples: impl IntoIterator<Item = &'a CoverageSample>,
) -> BTreeMap<Direction, TechShare> {
    let mut out: BTreeMap<Direction, TechShare> = BTreeMap::new();
    for s in samples {
        if let Some(dir) = s.direction {
            out.entry(dir).or_default().add(s.tech, s.miles);
        }
    }
    out
}

/// Fig. 2c: share per timezone.
pub fn by_timezone(samples: &[CoverageSample], op: Operator) -> BTreeMap<Timezone, TechShare> {
    by_timezone_from(samples.iter().filter(|s| s.operator == op))
}

/// [`by_timezone`] over pre-filtered samples.
pub fn by_timezone_from<'a>(
    samples: impl IntoIterator<Item = &'a CoverageSample>,
) -> BTreeMap<Timezone, TechShare> {
    let mut out: BTreeMap<Timezone, TechShare> = BTreeMap::new();
    for s in samples {
        out.entry(s.tz).or_default().add(s.tech, s.miles);
    }
    out
}

/// Fig. 2d: share per speed bin.
pub fn by_speed_bin(samples: &[CoverageSample], op: Operator) -> BTreeMap<SpeedBin, TechShare> {
    by_speed_bin_from(samples.iter().filter(|s| s.operator == op))
}

/// [`by_speed_bin`] over pre-filtered samples.
pub fn by_speed_bin_from<'a>(
    samples: impl IntoIterator<Item = &'a CoverageSample>,
) -> BTreeMap<SpeedBin, TechShare> {
    let mut out: BTreeMap<SpeedBin, TechShare> = BTreeMap::new();
    for s in samples {
        out.entry(SpeedBin::of(Speed::from_mph(s.speed_mph)))
            .or_default()
            .add(s.tech, s.miles);
    }
    out
}

/// Decode one sentinel-coded technology byte from a view-owned column;
/// those columns were produced by `from_rows` or validated by `to_rows`,
/// so a bad code is a programming error, not an input error.
fn tech_at(cov: &CoverageColumns, i: u32) -> Option<Technology> {
    column::tech_opt_from(*at(&cov.tech, i)).expect("view columns carry validated codes")
}

/// [`overall`] over column slices: one pass gathering `(tech, miles)`
/// through the position index.
pub fn overall_cols(cov: &CoverageColumns, idx: &[u32]) -> TechShare {
    let mut out = TechShare::default();
    for &i in idx {
        out.add(tech_at(cov, i), *at(&cov.miles, i));
    }
    out
}

/// [`by_direction`] over column slices; rows without a backlogged
/// direction ([`column::NONE_CODE`]) are skipped, as in the row path.
pub fn by_direction_cols(cov: &CoverageColumns, idx: &[u32]) -> BTreeMap<Direction, TechShare> {
    let mut out: BTreeMap<Direction, TechShare> = BTreeMap::new();
    for &i in idx {
        let code = *at(&cov.direction, i);
        if code == column::NONE_CODE {
            continue;
        }
        let dir = column::dir_from(code).expect("view columns carry validated codes");
        out.entry(dir)
            .or_default()
            .add(tech_at(cov, i), *at(&cov.miles, i));
    }
    out
}

/// [`by_timezone`] over column slices.
pub fn by_timezone_cols(cov: &CoverageColumns, idx: &[u32]) -> BTreeMap<Timezone, TechShare> {
    let mut out: BTreeMap<Timezone, TechShare> = BTreeMap::new();
    for &i in idx {
        let tz = column::tz_from(*at(&cov.tz, i)).expect("view columns carry validated codes");
        out.entry(tz)
            .or_default()
            .add(tech_at(cov, i), *at(&cov.miles, i));
    }
    out
}

/// [`by_speed_bin`] over column slices.
pub fn by_speed_bin_cols(cov: &CoverageColumns, idx: &[u32]) -> BTreeMap<SpeedBin, TechShare> {
    let mut out: BTreeMap<SpeedBin, TechShare> = BTreeMap::new();
    for &i in idx {
        out.entry(SpeedBin::of(Speed::from_mph(*at(&cov.speed_mph, i))))
            .or_default()
            .add(tech_at(cov, i), *at(&cov.miles, i));
    }
    out
}

/// Fig. 1: coverage along the route as per-segment dominant technology.
/// Returns `(segment start mile, dominant tech)` for fixed-width segments.
pub fn route_profile(
    samples: &[(f64, Option<Technology>)], // (mile, tech) points in route order
    segment_miles: f64,
) -> Vec<(f64, Option<Technology>)> {
    if samples.is_empty() || segment_miles <= 0.0 {
        return Vec::new();
    }
    let max_mile = samples.iter().map(|(m, _)| *m).fold(0.0, f64::max);
    let mut out = Vec::new();
    let mut seg_start = 0.0;
    while seg_start <= max_mile {
        let seg_end = seg_start + segment_miles;
        let mut share: WeightedShare<Option<Technology>> = WeightedShare::new();
        for (m, t) in samples
            .iter()
            .filter(|(m, _)| *m >= seg_start && *m < seg_end)
        {
            let _ = m;
            share.add(*t, 1.0);
        }
        if share.total() > 0.0 {
            // Dominant = the key with the largest weight.
            let dominant = core::iter::once(None)
                .chain(Technology::ALL.iter().map(|t| Some(*t)))
                .max_by(|a, b| share.weight(a).total_cmp(&share.weight(b)))
                .expect("iterator is non-empty by construction");
            out.push((seg_start, dominant));
        }
        seg_start = seg_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::route::ZoneClass;
    use wheels_sim_core::time::SimTime;

    fn cov(
        op: Operator,
        tech: Option<Technology>,
        dir: Option<Direction>,
        tz: Timezone,
        mph: f64,
        miles: f64,
    ) -> CoverageSample {
        CoverageSample {
            t: SimTime::EPOCH,
            operator: op,
            tech,
            direction: dir,
            miles,
            speed_mph: mph,
            tz,
            zone: ZoneClass::Highway,
        }
    }

    #[test]
    fn overall_shares_sum_to_100() {
        let samples = vec![
            cov(
                Operator::Verizon,
                Some(Technology::Lte),
                None,
                Timezone::Pacific,
                60.0,
                3.0,
            ),
            cov(
                Operator::Verizon,
                Some(Technology::Nr5gMid),
                None,
                Timezone::Pacific,
                60.0,
                1.0,
            ),
            cov(Operator::Verizon, None, None, Timezone::Pacific, 60.0, 1.0),
            // Other operator ignored.
            cov(
                Operator::Att,
                Some(Technology::LteA),
                None,
                Timezone::Pacific,
                60.0,
                9.0,
            ),
        ];
        let s = overall(&samples, Operator::Verizon);
        assert!((s.pct(Technology::Lte) - 60.0).abs() < 1e-9);
        assert!((s.pct(Technology::Nr5gMid) - 20.0).abs() < 1e-9);
        assert!((s.pct_no_service() - 20.0).abs() < 1e-9);
        assert!((s.pct_5g() - 20.0).abs() < 1e-9);
        assert!((s.total_miles() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn direction_split() {
        let samples = vec![
            cov(
                Operator::TMobile,
                Some(Technology::Nr5gMid),
                Some(Direction::Downlink),
                Timezone::Central,
                60.0,
                2.0,
            ),
            cov(
                Operator::TMobile,
                Some(Technology::Lte),
                Some(Direction::Uplink),
                Timezone::Central,
                60.0,
                2.0,
            ),
            cov(
                Operator::TMobile,
                Some(Technology::Nr5gMid),
                None,
                Timezone::Central,
                60.0,
                5.0,
            ),
        ];
        let by_dir = by_direction(&samples, Operator::TMobile);
        assert!((by_dir[&Direction::Downlink].pct_high_speed() - 100.0).abs() < 1e-9);
        assert!((by_dir[&Direction::Uplink].pct_high_speed() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn timezone_and_speed_breakdowns() {
        let samples = vec![
            cov(
                Operator::Att,
                Some(Technology::LteA),
                None,
                Timezone::Mountain,
                70.0,
                1.0,
            ),
            cov(
                Operator::Att,
                Some(Technology::Nr5gLow),
                None,
                Timezone::Eastern,
                10.0,
                1.0,
            ),
        ];
        let tz = by_timezone(&samples, Operator::Att);
        assert_eq!(tz.len(), 2);
        assert!((tz[&Timezone::Eastern].pct_5g() - 100.0).abs() < 1e-9);
        let sb = by_speed_bin(&samples, Operator::Att);
        assert!((sb[&SpeedBin::High].pct(Technology::LteA) - 100.0).abs() < 1e-9);
        assert!((sb[&SpeedBin::Low].pct(Technology::Nr5gLow) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn route_profile_picks_dominant() {
        let pts = vec![
            (0.1, Some(Technology::Lte)),
            (0.2, Some(Technology::Lte)),
            (0.3, Some(Technology::Nr5gMid)),
            (10.5, Some(Technology::Nr5gMid)),
            (10.6, Some(Technology::Nr5gMid)),
        ];
        let prof = route_profile(&pts, 10.0);
        assert_eq!(prof.len(), 2);
        assert_eq!(prof[0], (0.0, Some(Technology::Lte)));
        assert_eq!(prof[1], (10.0, Some(Technology::Nr5gMid)));
    }

    #[test]
    fn route_profile_empty_inputs() {
        assert!(route_profile(&[], 10.0).is_empty());
        assert!(route_profile(&[(1.0, None)], 0.0).is_empty());
    }
}
