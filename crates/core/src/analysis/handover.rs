//! Handover analysis (§6, Figs. 11–12).
//!
//! - Handovers per mile per throughput test (Fig. 11a) and interruption
//!   durations (Fig. 11b).
//! - The throughput impact: with 500 ms samples `T1..T5` around a handover
//!   in `T3`'s bin, `ΔT₁ = T3 − (T2+T4)/2` is the drop during the handover
//!   and `ΔT₂ = (T4+T5)/2 − (T1+T2)/2` is the post-vs-pre change, broken
//!   down by handover type (4G→4G, 5G→5G, 4G→5G, 5G→4G).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_ran::session::HandoverKind;

use crate::analysis::view::at;
use crate::records::{Dataset, TestKind};

/// Per-test handover rate (Fig. 11a).
pub fn handovers_per_mile(ds: &Dataset, op: Operator, dir: Direction) -> Vec<f64> {
    let kind = match dir {
        Direction::Downlink => TestKind::DownlinkTput,
        Direction::Uplink => TestKind::UplinkTput,
    };
    ds.runs
        .iter()
        .filter(|r| r.operator == op && r.kind == kind && r.driving && r.miles > 0.05)
        .map(|r| r.handovers as f64 / r.miles)
        .collect()
}

/// Interruption durations in ms (Fig. 11b), filtered to handovers that
/// occurred during throughput tests in `dir`.
pub fn durations_ms(ds: &Dataset, op: Operator, dir: Direction) -> Vec<f64> {
    ds.handovers
        .iter()
        .filter(|h| h.operator == op && h.direction == Some(dir))
        .map(|h| h.event.duration.as_millis() as f64)
        .collect()
}

/// One handover's throughput impact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoImpact {
    /// ΔT₁ (Mbps): during-HO bin minus the mean of its neighbors.
    pub delta_t1: f64,
    /// ΔT₂ (Mbps): post-HO second minus pre-HO second.
    pub delta_t2: f64,
    /// Handover type.
    pub kind: HandoverKind,
    /// Operator.
    pub operator: Operator,
    /// Traffic direction of the test.
    pub direction: Direction,
}

/// Compute ΔT₁/ΔT₂ for every handover that happened inside a throughput
/// test with enough surrounding samples.
pub fn impacts(ds: &Dataset) -> Vec<HoImpact> {
    // Index throughput samples by test.
    let mut by_test: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (i, s) in ds.tput.iter().enumerate() {
        by_test
            .entry(s.test_id)
            .or_default()
            .push(u32::try_from(i).expect("tput table exceeds u32 rows"));
    }
    for v in by_test.values_mut() {
        v.sort_by_key(|&i| at(&ds.tput, i).t);
    }
    impacts_indexed(ds, &by_test)
}

/// Like [`impacts`], but reusing a prebuilt by-test position index whose
/// groups are time-ascending — the [`DatasetView`] path, where the index
/// is shared with the per-test figure queries.
///
/// [`DatasetView`]: crate::analysis::view::DatasetView
pub fn impacts_indexed(ds: &Dataset, by_test: &BTreeMap<u32, Vec<u32>>) -> Vec<HoImpact> {
    let mut out = Vec::new();
    for h in &ds.handovers {
        let Some(test_id) = h.test_id else { continue };
        let Some(dir) = h.direction else { continue };
        let Some(pos) = by_test.get(&test_id) else {
            continue;
        };
        // Bin containing the handover start.
        let k = pos.partition_point(|&i| at(&ds.tput, i).t <= h.event.start);
        let Some(k) = k.checked_sub(1) else { continue };
        if k < 2 || k + 2 >= pos.len() {
            continue; // not enough context around the HO
        }
        let t = |i: usize| at(&ds.tput, pos[i]).mbps;
        out.push(HoImpact {
            delta_t1: t(k) - (t(k - 1) + t(k + 1)) / 2.0,
            delta_t2: (t(k + 1) + t(k + 2)) / 2.0 - (t(k - 2) + t(k - 1)) / 2.0,
            kind: h.event.kind,
            operator: h.operator,
            direction: dir,
        });
    }
    out
}

/// Fraction of impacts with a throughput drop during the HO (ΔT₁ < 0) —
/// the paper reports ~80%.
pub fn drop_fraction(impacts: &[HoImpact]) -> f64 {
    if impacts.is_empty() {
        return 0.0;
    }
    impacts.iter().filter(|i| i.delta_t1 < 0.0).count() as f64 / impacts.len() as f64
}

/// Fraction of impacts where the post-HO throughput improved (ΔT₂ > 0) —
/// the paper reports ~55–60%.
pub fn improve_fraction(impacts: &[HoImpact]) -> f64 {
    if impacts.is_empty() {
        return 0.0;
    }
    impacts.iter().filter(|i| i.delta_t2 > 0.0).count() as f64 / impacts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::route::ZoneClass;
    use wheels_radio::tech::Technology;
    use wheels_ran::cells::CellId;
    use wheels_ran::session::HandoverEvent;
    use wheels_sim_core::time::{SimDuration, SimTime, Timezone};
    use wheels_transport::servers::ServerKind;

    use crate::records::{TaggedHandover, TestRun, TputSample};

    fn sample(test_id: u32, t: SimTime, mbps: f64) -> TputSample {
        TputSample {
            t,
            test_id,
            operator: Operator::Verizon,
            direction: Direction::Downlink,
            mbps,
            tech: Technology::LteA,
            cell: 1,
            speed_mph: 60.0,
            zone: ZoneClass::Highway,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            rsrp_dbm: -100.0,
            mcs: 15,
            bler: 0.1,
            carriers: 2,
            handovers_in_bin: 0,
            driving: true,
        }
    }

    fn ho(test_id: u32, start: SimTime, from: Technology, to: Technology) -> TaggedHandover {
        TaggedHandover {
            event: HandoverEvent {
                start,
                duration: SimDuration::from_millis(60),
                from_cell: CellId(1),
                to_cell: CellId(2),
                from_tech: from,
                to_tech: to,
                kind: wheels_ran::session::HandoverKind::classify(from, to),
            },
            operator: Operator::Verizon,
            test_id: Some(test_id),
            direction: Some(Direction::Downlink),
        }
    }

    /// Build a dataset with a known T1..T5 pattern around one HO.
    fn dataset_with_pattern(vals: [f64; 5], ho_bin: usize) -> Dataset {
        let mut ds = Dataset::default();
        for (i, v) in vals.iter().enumerate() {
            ds.tput.push(sample(1, SimTime((i as u64) * 500), *v));
        }
        ds.handovers.push(ho(
            1,
            SimTime((ho_bin as u64) * 500 + 100),
            Technology::LteA,
            Technology::Nr5gMid,
        ));
        ds
    }

    #[test]
    fn delta_t_formulas() {
        // T = [50, 40, 10, 45, 55], HO in bin 2.
        let ds = dataset_with_pattern([50.0, 40.0, 10.0, 45.0, 55.0], 2);
        let imps = impacts(&ds);
        assert_eq!(imps.len(), 1);
        let i = imps[0];
        assert!((i.delta_t1 - (10.0 - (40.0 + 45.0) / 2.0)).abs() < 1e-9);
        assert!((i.delta_t2 - ((45.0 + 55.0) / 2.0 - (50.0 + 40.0) / 2.0)).abs() < 1e-9);
        assert_eq!(i.kind, HandoverKind::Up4gTo5g);
    }

    #[test]
    fn edge_handovers_skipped() {
        // HO in bin 0: not enough context.
        let ds = dataset_with_pattern([50.0, 40.0, 10.0, 45.0, 55.0], 0);
        assert!(impacts(&ds).is_empty());
        // HO in bin 4 (last): also skipped.
        let ds = dataset_with_pattern([50.0, 40.0, 10.0, 45.0, 55.0], 4);
        assert!(impacts(&ds).is_empty());
    }

    #[test]
    fn untagged_handovers_skipped() {
        let mut ds = dataset_with_pattern([50.0, 40.0, 10.0, 45.0, 55.0], 2);
        ds.handovers[0].test_id = None;
        assert!(impacts(&ds).is_empty());
    }

    #[test]
    fn fractions() {
        let imps = vec![
            HoImpact {
                delta_t1: -5.0,
                delta_t2: 2.0,
                kind: HandoverKind::Horizontal4g,
                operator: Operator::Verizon,
                direction: Direction::Downlink,
            },
            HoImpact {
                delta_t1: -1.0,
                delta_t2: -2.0,
                kind: HandoverKind::Down5gTo4g,
                operator: Operator::Verizon,
                direction: Direction::Downlink,
            },
            HoImpact {
                delta_t1: 1.0,
                delta_t2: 4.0,
                kind: HandoverKind::Up4gTo5g,
                operator: Operator::Verizon,
                direction: Direction::Downlink,
            },
        ];
        assert!((drop_fraction(&imps) - 2.0 / 3.0).abs() < 1e-9);
        assert!((improve_fraction(&imps) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(drop_fraction(&[]), 0.0);
    }

    #[test]
    fn per_mile_uses_matching_runs_only() {
        let mut ds = Dataset::default();
        ds.runs.push(TestRun {
            id: 1,
            kind: TestKind::DownlinkTput,
            operator: Operator::Verizon,
            start: SimTime::EPOCH,
            end: SimTime::from_secs(30),
            miles: 0.5,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            hs5g_fraction: 0.0,
            handovers: 2,
            driving: true,
            partial: false,
        });
        ds.runs.push(TestRun {
            id: 2,
            kind: TestKind::UplinkTput,
            operator: Operator::Verizon,
            start: SimTime::EPOCH,
            end: SimTime::from_secs(30),
            miles: 0.5,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            hs5g_fraction: 0.0,
            handovers: 6,
            driving: true,
            partial: false,
        });
        let dl = handovers_per_mile(&ds, Operator::Verizon, Direction::Downlink);
        assert_eq!(dl, vec![4.0]);
        let ul = handovers_per_mile(&ds, Operator::Verizon, Direction::Uplink);
        assert_eq!(ul, vec![12.0]);
        assert!(handovers_per_mile(&ds, Operator::Att, Direction::Downlink).is_empty());
    }

    #[test]
    fn durations_filtered_by_direction() {
        let mut ds = Dataset::default();
        ds.handovers
            .push(ho(1, SimTime::EPOCH, Technology::Lte, Technology::Lte));
        let mut ul = ho(2, SimTime::EPOCH, Technology::Lte, Technology::Lte);
        ul.direction = Some(Direction::Uplink);
        ds.handovers.push(ul);
        assert_eq!(
            durations_ms(&ds, Operator::Verizon, Direction::Downlink).len(),
            1
        );
        assert_eq!(
            durations_ms(&ds, Operator::Verizon, Direction::Uplink).len(),
            1
        );
        assert!(durations_ms(&ds, Operator::TMobile, Direction::Downlink).is_empty());
    }
}
