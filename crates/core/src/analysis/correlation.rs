//! Table 2: Pearson correlation between 500 ms throughput and the KPIs.
//!
//! Each `TputSample` already carries its bin's RSRP, MCS, CA count, BLER,
//! speed, and handover count, so the correlation is a direct column-wise
//! Pearson over the filtered sample set — exactly what the paper computes
//! after joining XCAL KPI logs with throughput logs.
//!
//! The batched kernel is [`correlate_cols`]: it gathers each KPI from
//! the contiguous [`TputColumns`] slices through a position index, one
//! column at a time, instead of striding over row structs six times. The
//! row-based entry points remain as thin shims that columnarize first.

use serde::{Deserialize, Serialize};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::{pearson, spearman};

use crate::analysis::view::at;
use crate::column::TputColumns;
use crate::records::TputSample;

/// The KPI columns of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kpi {
    /// Primary cell RSRP.
    Rsrp,
    /// Primary cell MCS.
    Mcs,
    /// Carrier aggregation (number of carriers).
    Ca,
    /// Primary cell BLER.
    Bler,
    /// Vehicle speed.
    Speed,
    /// Handovers in the bin.
    Handovers,
}

impl Kpi {
    /// Table 2 column order.
    pub const ALL: [Kpi; 6] = [
        Kpi::Rsrp,
        Kpi::Mcs,
        Kpi::Ca,
        Kpi::Bler,
        Kpi::Speed,
        Kpi::Handovers,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Kpi::Rsrp => "RSRP",
            Kpi::Mcs => "MCS",
            Kpi::Ca => "CA",
            Kpi::Bler => "BLER",
            Kpi::Speed => "Speed",
            Kpi::Handovers => "HO",
        }
    }

    /// Extract the KPI value from a sample.
    pub fn value(self, s: &TputSample) -> f64 {
        match self {
            Kpi::Rsrp => s.rsrp_dbm,
            Kpi::Mcs => s.mcs as f64,
            Kpi::Ca => s.carriers as f64,
            Kpi::Bler => s.bler,
            Kpi::Speed => s.speed_mph,
            Kpi::Handovers => s.handovers_in_bin as f64,
        }
    }

    /// Gather this KPI for the indexed positions from the column slices
    /// — one contiguous source column per call, matching
    /// [`Kpi::value`]'s per-row conversions exactly (`u8` widens
    /// losslessly to `f64`).
    pub fn gather(self, t: &TputColumns, idx: &[u32]) -> Vec<f64> {
        fn take(col: &[f64], idx: &[u32]) -> Vec<f64> {
            idx.iter().map(|&i| *at(col, i)).collect()
        }
        fn widen(col: &[u8], idx: &[u32]) -> Vec<f64> {
            idx.iter().map(|&i| f64::from(*at(col, i))).collect()
        }
        match self {
            Kpi::Rsrp => take(&t.rsrp_dbm, idx),
            Kpi::Mcs => widen(&t.mcs, idx),
            Kpi::Ca => widen(&t.carriers, idx),
            Kpi::Bler => take(&t.bler, idx),
            Kpi::Speed => take(&t.speed_mph, idx),
            Kpi::Handovers => widen(&t.handovers_in_bin, idx),
        }
    }
}

/// One row of Table 2: operator × direction → r per KPI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationRow {
    /// Operator.
    pub operator: Operator,
    /// Direction.
    pub direction: Direction,
    /// `(kpi, Pearson r)` pairs; `None` when undefined (constant column).
    pub r: Vec<(Kpi, Option<f64>)>,
    /// `(kpi, Spearman rho)` pairs — the rank-based robustness companion
    /// (throughput is heavy-tailed, so rank correlation is the sanity
    /// check on every Pearson cell).
    pub rho: Vec<(Kpi, Option<f64>)>,
    /// Number of samples used.
    pub n: usize,
}

/// Compute one row from driving throughput samples.
pub fn correlate(
    samples: &[TputSample],
    operator: Operator,
    direction: Direction,
) -> CorrelationRow {
    correlate_rows(
        samples
            .iter()
            .filter(|s| s.operator == operator && s.direction == direction && s.driving),
        operator,
        direction,
    )
}

/// [`correlate`] over pre-filtered samples: a compat shim that
/// columnarizes the rows once and runs the batched kernel, so every
/// entry point shares [`correlate_cols`]'s column-slice math.
pub fn correlate_rows<'a>(
    samples: impl IntoIterator<Item = &'a TputSample>,
    operator: Operator,
    direction: Direction,
) -> CorrelationRow {
    let mut cols = TputColumns::default();
    for s in samples {
        cols.push(s);
    }
    let idx: Vec<u32> = (0..u32::try_from(cols.len()).expect("table exceeds u32 rows")).collect();
    correlate_cols(&cols, &idx, operator, direction)
}

/// The batched Table-2 kernel: correlate `mbps` against every KPI over
/// the positions in `idx`, gathering each input from one contiguous
/// column slice (the `DatasetView` partitions feed their permutation
/// indices straight in here).
pub fn correlate_cols(
    t: &TputColumns,
    idx: &[u32],
    operator: Operator,
    direction: Direction,
) -> CorrelationRow {
    let tput: Vec<f64> = idx.iter().map(|&i| *at(&t.mbps, i)).collect();
    let mut r = Vec::with_capacity(Kpi::ALL.len());
    let mut rho = Vec::with_capacity(Kpi::ALL.len());
    for k in Kpi::ALL {
        let xs = k.gather(t, idx);
        r.push((k, pearson(&xs, &tput)));
        rho.push((k, spearman(&xs, &tput)));
    }
    CorrelationRow {
        operator,
        direction,
        r,
        rho,
        n: idx.len(),
    }
}

/// The full Table 2 (3 operators × 2 directions).
pub fn table2(samples: &[TputSample]) -> Vec<CorrelationRow> {
    let mut out = Vec::new();
    for op in Operator::ALL {
        for dir in Direction::ALL {
            out.push(correlate(samples, op, dir));
        }
    }
    out
}

impl CorrelationRow {
    /// Look up Pearson r for one KPI.
    pub fn get(&self, kpi: Kpi) -> Option<f64> {
        self.r.iter().find(|(k, _)| *k == kpi).and_then(|(_, v)| *v)
    }

    /// Look up Spearman rho for one KPI.
    pub fn get_rho(&self, kpi: Kpi) -> Option<f64> {
        self.rho
            .iter()
            .find(|(k, _)| *k == kpi)
            .and_then(|(_, v)| *v)
    }

    /// The paper's headline check: no KPI strongly correlates with
    /// throughput (|r| below `threshold` for every column).
    pub fn no_strong_correlation(&self, threshold: f64) -> bool {
        self.r
            .iter()
            .all(|(_, v)| v.is_none_or(|x| x.abs() < threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::route::ZoneClass;
    use wheels_radio::tech::Technology;
    use wheels_sim_core::time::{SimTime, Timezone};
    use wheels_transport::servers::ServerKind;

    fn sample(mbps: f64, rsrp: f64, mcs: u8, speed: f64) -> TputSample {
        TputSample {
            t: SimTime::EPOCH,
            test_id: 0,
            operator: Operator::Verizon,
            direction: Direction::Downlink,
            mbps,
            tech: Technology::LteA,
            cell: 1,
            speed_mph: speed,
            zone: ZoneClass::Highway,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            rsrp_dbm: rsrp,
            mcs,
            bler: 0.1,
            carriers: 2,
            handovers_in_bin: 0,
            driving: true,
        }
    }

    #[test]
    fn perfect_mcs_correlation_detected() {
        let samples: Vec<TputSample> = (0..50)
            .map(|i| sample(i as f64 * 2.0, -100.0 + i as f64 * 0.0, i as u8 % 29, 60.0))
            .collect();
        // mbps = 2 * i, mcs = i (mod 29 wraps at 29; keep i < 29)
        let samples: Vec<TputSample> = samples.into_iter().take(28).collect();
        let row = correlate(&samples, Operator::Verizon, Direction::Downlink);
        let r_mcs = row.get(Kpi::Mcs).unwrap();
        assert!(r_mcs > 0.99, "r {r_mcs}");
        // RSRP constant → undefined.
        assert_eq!(row.get(Kpi::Rsrp), None);
        assert_eq!(row.n, 28);
    }

    #[test]
    fn wrong_operator_direction_excluded() {
        let samples = vec![sample(10.0, -90.0, 10, 60.0)];
        let row = correlate(&samples, Operator::Att, Direction::Downlink);
        assert_eq!(row.n, 0);
        assert!(row.r.iter().all(|(_, v)| v.is_none()));
    }

    #[test]
    fn table2_has_six_rows() {
        let samples: Vec<TputSample> = (0..30)
            .map(|i| sample(i as f64, -110.0 + i as f64, (i % 28) as u8, 50.0 + i as f64))
            .collect();
        let t = table2(&samples);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn no_strong_correlation_helper() {
        let samples: Vec<TputSample> = (0..100)
            .map(|i| {
                // Throughput unrelated to the KPIs.
                sample(
                    ((i * 37) % 100) as f64,
                    -110.0 + (i % 40) as f64,
                    (i % 28) as u8,
                    (i % 80) as f64,
                )
            })
            .collect();
        let row = correlate(&samples, Operator::Verizon, Direction::Downlink);
        assert!(row.no_strong_correlation(0.7));
    }
}
