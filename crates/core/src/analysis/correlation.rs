//! Table 2: Pearson correlation between 500 ms throughput and the KPIs.
//!
//! Each `TputSample` already carries its bin's RSRP, MCS, CA count, BLER,
//! speed, and handover count, so the correlation is a direct column-wise
//! Pearson over the filtered sample set — exactly what the paper computes
//! after joining XCAL KPI logs with throughput logs.

use serde::{Deserialize, Serialize};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::{pearson, spearman};

use crate::records::TputSample;

/// The KPI columns of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kpi {
    /// Primary cell RSRP.
    Rsrp,
    /// Primary cell MCS.
    Mcs,
    /// Carrier aggregation (number of carriers).
    Ca,
    /// Primary cell BLER.
    Bler,
    /// Vehicle speed.
    Speed,
    /// Handovers in the bin.
    Handovers,
}

impl Kpi {
    /// Table 2 column order.
    pub const ALL: [Kpi; 6] = [
        Kpi::Rsrp,
        Kpi::Mcs,
        Kpi::Ca,
        Kpi::Bler,
        Kpi::Speed,
        Kpi::Handovers,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Kpi::Rsrp => "RSRP",
            Kpi::Mcs => "MCS",
            Kpi::Ca => "CA",
            Kpi::Bler => "BLER",
            Kpi::Speed => "Speed",
            Kpi::Handovers => "HO",
        }
    }

    /// Extract the KPI value from a sample.
    pub fn value(self, s: &TputSample) -> f64 {
        match self {
            Kpi::Rsrp => s.rsrp_dbm,
            Kpi::Mcs => s.mcs as f64,
            Kpi::Ca => s.carriers as f64,
            Kpi::Bler => s.bler,
            Kpi::Speed => s.speed_mph,
            Kpi::Handovers => s.handovers_in_bin as f64,
        }
    }
}

/// One row of Table 2: operator × direction → r per KPI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationRow {
    /// Operator.
    pub operator: Operator,
    /// Direction.
    pub direction: Direction,
    /// `(kpi, Pearson r)` pairs; `None` when undefined (constant column).
    pub r: Vec<(Kpi, Option<f64>)>,
    /// `(kpi, Spearman rho)` pairs — the rank-based robustness companion
    /// (throughput is heavy-tailed, so rank correlation is the sanity
    /// check on every Pearson cell).
    pub rho: Vec<(Kpi, Option<f64>)>,
    /// Number of samples used.
    pub n: usize,
}

/// Compute one row from driving throughput samples.
pub fn correlate(
    samples: &[TputSample],
    operator: Operator,
    direction: Direction,
) -> CorrelationRow {
    correlate_rows(
        samples
            .iter()
            .filter(|s| s.operator == operator && s.direction == direction && s.driving),
        operator,
        direction,
    )
}

/// [`correlate`] over pre-filtered samples (the dataset-view path): the
/// caller guarantees every sample already matches `(operator, direction,
/// driving)`.
pub fn correlate_rows<'a>(
    samples: impl IntoIterator<Item = &'a TputSample>,
    operator: Operator,
    direction: Direction,
) -> CorrelationRow {
    let rows: Vec<&TputSample> = samples.into_iter().collect();
    let tput: Vec<f64> = rows.iter().map(|s| s.mbps).collect();
    let mut r = Vec::with_capacity(Kpi::ALL.len());
    let mut rho = Vec::with_capacity(Kpi::ALL.len());
    for k in Kpi::ALL {
        let xs: Vec<f64> = rows.iter().map(|s| k.value(s)).collect();
        r.push((k, pearson(&xs, &tput)));
        rho.push((k, spearman(&xs, &tput)));
    }
    CorrelationRow {
        operator,
        direction,
        r,
        rho,
        n: rows.len(),
    }
}

/// The full Table 2 (3 operators × 2 directions).
pub fn table2(samples: &[TputSample]) -> Vec<CorrelationRow> {
    let mut out = Vec::new();
    for op in Operator::ALL {
        for dir in Direction::ALL {
            out.push(correlate(samples, op, dir));
        }
    }
    out
}

impl CorrelationRow {
    /// Look up Pearson r for one KPI.
    pub fn get(&self, kpi: Kpi) -> Option<f64> {
        self.r.iter().find(|(k, _)| *k == kpi).and_then(|(_, v)| *v)
    }

    /// Look up Spearman rho for one KPI.
    pub fn get_rho(&self, kpi: Kpi) -> Option<f64> {
        self.rho
            .iter()
            .find(|(k, _)| *k == kpi)
            .and_then(|(_, v)| *v)
    }

    /// The paper's headline check: no KPI strongly correlates with
    /// throughput (|r| below `threshold` for every column).
    pub fn no_strong_correlation(&self, threshold: f64) -> bool {
        self.r
            .iter()
            .all(|(_, v)| v.is_none_or(|x| x.abs() < threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::route::ZoneClass;
    use wheels_radio::tech::Technology;
    use wheels_sim_core::time::{SimTime, Timezone};
    use wheels_transport::servers::ServerKind;

    fn sample(mbps: f64, rsrp: f64, mcs: u8, speed: f64) -> TputSample {
        TputSample {
            t: SimTime::EPOCH,
            test_id: 0,
            operator: Operator::Verizon,
            direction: Direction::Downlink,
            mbps,
            tech: Technology::LteA,
            cell: 1,
            speed_mph: speed,
            zone: ZoneClass::Highway,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            rsrp_dbm: rsrp,
            mcs,
            bler: 0.1,
            carriers: 2,
            handovers_in_bin: 0,
            driving: true,
        }
    }

    #[test]
    fn perfect_mcs_correlation_detected() {
        let samples: Vec<TputSample> = (0..50)
            .map(|i| sample(i as f64 * 2.0, -100.0 + i as f64 * 0.0, i as u8 % 29, 60.0))
            .collect();
        // mbps = 2 * i, mcs = i (mod 29 wraps at 29; keep i < 29)
        let samples: Vec<TputSample> = samples.into_iter().take(28).collect();
        let row = correlate(&samples, Operator::Verizon, Direction::Downlink);
        let r_mcs = row.get(Kpi::Mcs).unwrap();
        assert!(r_mcs > 0.99, "r {r_mcs}");
        // RSRP constant → undefined.
        assert_eq!(row.get(Kpi::Rsrp), None);
        assert_eq!(row.n, 28);
    }

    #[test]
    fn wrong_operator_direction_excluded() {
        let samples = vec![sample(10.0, -90.0, 10, 60.0)];
        let row = correlate(&samples, Operator::Att, Direction::Downlink);
        assert_eq!(row.n, 0);
        assert!(row.r.iter().all(|(_, v)| v.is_none()));
    }

    #[test]
    fn table2_has_six_rows() {
        let samples: Vec<TputSample> = (0..30)
            .map(|i| sample(i as f64, -110.0 + i as f64, (i % 28) as u8, 50.0 + i as f64))
            .collect();
        let t = table2(&samples);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn no_strong_correlation_helper() {
        let samples: Vec<TputSample> = (0..100)
            .map(|i| {
                // Throughput unrelated to the KPIs.
                sample(
                    ((i * 37) % 100) as f64,
                    -110.0 + (i % 40) as f64,
                    (i % 28) as u8,
                    (i % 80) as f64,
                )
            })
            .collect();
        let row = correlate(&samples, Operator::Verizon, Direction::Downlink);
        assert!(row.no_strong_correlation(0.7));
    }
}
