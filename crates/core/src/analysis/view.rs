//! Indexed, memoized views over a normalized [`Dataset`].
//!
//! Every figure module filters the same flat tables by the same handful
//! of dimensions (operator × direction × driving, then technology /
//! timezone / speed bin below that) and then sorts the surviving samples
//! into a fresh [`Cdf`]. On a Standard/Full campaign that is dozens of
//! full-table scans and re-sorts per `repro` run. A [`DatasetView`] is
//! built once per world: it partitions each table by those dimensions
//! into permutation indices (positions into the owned tables, ascending,
//! so iteration order is exactly the order a linear `*_where` scan would
//! visit), and memoizes per-query sorted-sample [`Cdf`]s so quantile and
//! summary queries are O(1) after a single shared sort.
//!
//! Figure values are unchanged: the view yields the same samples in the
//! same order as [`Dataset::tput_where`]/[`Dataset::rtt_where`] on the
//! normalized dataset, and the memoized Cdfs hold the identical sorted
//! multiset `Cdf::from_samples` would produce (a property test in
//! `crates/core/tests/view_properties.rs` pins both claims against the
//! brute-force filters on shuffled inserts).
//!
//! The view is `Sync` (plain tables plus `OnceLock` memo slots), so one
//! instance can back the parallel experiment runner without locking.
//!
//! Since the columnar refactor the view owns *both* layouts: the row
//! tables (the public iterator API hands out `&TputSample` etc.) and
//! their [`ColumnarDataset`] twin. Index building and every bulk numeric
//! gather (sorted-sample Cdf runs, correlation inputs, coverage shares)
//! scan the contiguous column slices; the enum-code columns are the
//! `index()` values the partition math wants, so the build loop never
//! touches a row struct.
//!
//! # Incremental ingest
//!
//! [`DatasetView::ingest_shard`] folds one completed campaign shard
//! into a live view without a rebuild: the big sample tables (tput,
//! rtt, coverage) are *appended* to the raw storage and every affected
//! permutation index is extended by a binary-splice merge of the
//! shard's pre-sorted position run — so the raw tables end up in
//! arrival order while every indexed accessor keeps yielding canonical
//! `normalize` order, and `OnceLock` memos are re-armed only for the
//! partitions and combos the shard actually touched. The small tables
//! (runs, handovers, apps, audits) stay *physically* canonical (the
//! handover-impact kernel and the figure code iterate them raw), which
//! is cheap because they are thousands of times smaller than the
//! sample tables. [`DatasetView::from_journal`] replays a checkpoint
//! journal frame-by-frame through the same path, so `run_checkpointed`,
//! `--resume`, and a future `wheels-serve` share one pipeline.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::OnceLock;

use wheels_radio::tech::{Direction, Technology};
use wheels_ran::cells::CellId;
use wheels_ran::operator::Operator;
use wheels_sim_core::stats::Cdf;
use wheels_sim_core::time::Timezone;
use wheels_sim_core::units::{Speed, SpeedBin};

use crate::analysis::correlation::{self, CorrelationRow};
use crate::analysis::coverage::{self, TechShare};
use crate::analysis::handover::{self, HoImpact};
use crate::campaign::apply_table1_accounting;
use crate::checkpoint::{self, CheckpointError, Fingerprint, TailState};
use crate::column::{
    op_code, AppColumns, AuditColumns, ColumnError, ColumnarDataset, HandoverColumns, RunColumns,
};
use crate::records::{
    merge_sorted_by_key, CoverageSample, Dataset, RttSample, ShardRecords, TputSample,
};

const OPS: usize = Operator::ALL.len();
const DIRS: usize = Direction::ALL.len();
const TECHS: usize = Technology::ALL.len();
const TZS: usize = Timezone::ALL.len();
const BINS: usize = SpeedBin::ALL.len();

/// Fully-specified throughput partitions: operator × direction × driving.
const TPUT_PARTS: usize = OPS * DIRS * 2;
/// Throughput query combos including wildcard (`None`) dimensions.
const TPUT_COMBOS: usize = (OPS + 1) * (DIRS + 1) * 3;
/// Fully-specified RTT partitions: operator × driving.
const RTT_PARTS: usize = OPS * 2;
/// RTT query combos including wildcards.
const RTT_COMBOS: usize = (OPS + 1) * 3;

/// Index a table by a u32 position produced at view-build time.
#[inline]
pub(crate) fn at<T>(table: &[T], pos: u32) -> &T {
    // lint: allow(lossy-cast, u32 position to usize is widening on every supported target)
    &table[pos as usize]
}

fn dir_index(d: Direction) -> usize {
    match d {
        Direction::Downlink => 0,
        Direction::Uplink => 1,
    }
}

fn tz_index(tz: Timezone) -> usize {
    Timezone::ALL
        .iter()
        .position(|&t| t == tz)
        .expect("Timezone::ALL covers every variant")
}

fn bin_index(b: SpeedBin) -> usize {
    match b {
        SpeedBin::Low => 0,
        SpeedBin::Mid => 1,
        SpeedBin::High => 2,
    }
}

fn tpart(op: usize, dir: usize, driving: usize) -> usize {
    (op * DIRS + dir) * 2 + driving
}

fn rpart(op: usize, driving: usize) -> usize {
    op * 2 + driving
}

/// Combo slot for a (possibly wildcard) throughput query; wildcards take
/// the one-past-the-end index of their dimension.
fn tcombo(op: Option<Operator>, dir: Option<Direction>, driving: Option<bool>) -> usize {
    let o = op.map_or(OPS, Operator::index);
    let d = dir.map_or(DIRS, dir_index);
    let dr = driving.map_or(2, usize::from);
    (o * (DIRS + 1) + d) * 3 + dr
}

fn rcombo(op: Option<Operator>, driving: Option<bool>) -> usize {
    let o = op.map_or(OPS, Operator::index);
    let dr = driving.map_or(2, usize::from);
    o * 3 + dr
}

/// Partition ids whose (operator, direction, driving) match the filter.
fn tput_part_ids(
    op: Option<Operator>,
    dir: Option<Direction>,
    driving: Option<bool>,
) -> Vec<usize> {
    let mut out = Vec::new();
    for o in 0..OPS {
        if op.is_some_and(|x| x.index() != o) {
            continue;
        }
        for d in 0..DIRS {
            if dir.is_some_and(|x| dir_index(x) != d) {
                continue;
            }
            for dr in 0..2 {
                if driving.is_some_and(|x| usize::from(x) != dr) {
                    continue;
                }
                out.push(tpart(o, d, dr));
            }
        }
    }
    out
}

fn rtt_part_ids(op: Option<Operator>, driving: Option<bool>) -> Vec<usize> {
    let mut out = Vec::new();
    for o in 0..OPS {
        if op.is_some_and(|x| x.index() != o) {
            continue;
        }
        for dr in 0..2 {
            if driving.is_some_and(|x| usize::from(x) != dr) {
                continue;
            }
            out.push(rpart(o, dr));
        }
    }
    out
}

/// K-way merge of ascending (`f64::total_cmp`) runs into one ascending
/// vector — the identical sorted multiset a fresh sort would produce.
fn merge_sorted(runs: &[&[f64]]) -> Vec<f64> {
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
    let mut cursors = vec![0usize; runs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            let Some(&x) = run.get(cursors[i]) else {
                continue;
            };
            best = match best {
                Some(b) if runs[b][cursors[b]].total_cmp(&x).is_le() => Some(b),
                _ => Some(i),
            };
        }
        let Some(b) = best else { break };
        out.push(runs[b][cursors[b]]);
        cursors[b] += 1;
    }
    out
}

fn push_pos(list: &mut Vec<u32>, i: usize) {
    list.push(u32::try_from(i).expect("table exceeds u32 rows"));
}

/// Merge a canonical-key-ascending run of `new` positions into the
/// canonical-key-ascending index `idx`, existing entries first on ties
/// — exactly the permutation a stable re-sort of the whole partition
/// would produce. Binary splice: everything before the first affected
/// slot is untouched, only the tail is merged, and a shard whose keys
/// sort entirely after the index (the common in-order arrival) is a
/// plain `extend`.
fn merge_positions<K: Ord>(idx: &mut Vec<u32>, new: &[u32], key: impl Fn(u32) -> K) {
    if new.is_empty() {
        return;
    }
    let first = key(new[0]);
    if idx.last().is_none_or(|&l| key(l) <= first) {
        idx.extend_from_slice(new);
        return;
    }
    let lo = idx.partition_point(|&i| key(i) <= first);
    let tail = idx.split_off(lo);
    idx.reserve(tail.len() + new.len());
    let mut a = tail.into_iter().peekable();
    let mut b = new.iter().copied().peekable();
    while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
        if key(x) <= key(y) {
            idx.push(x);
            a.next();
        } else {
            idx.push(y);
            b.next();
        }
    }
    idx.extend(a);
    idx.extend(b);
}

/// K-way merge of canonical-key-ascending position runs, ties broken by
/// position. On a canonically-ordered dataset (positions ascending with
/// the key) this reproduces the plain position sort the wildcard memos
/// used before incremental ingest existed; on an ingested view it keeps
/// the merged index in canonical key order even though raw positions
/// are arrival-ordered.
fn merge_indices<K: Ord>(runs: &[&[u32]], key: impl Fn(u32) -> K) -> Vec<u32> {
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
    let mut cursors = vec![0usize; runs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            let Some(&x) = run.get(cursors[i]) else {
                continue;
            };
            best = match best {
                Some(b) => {
                    let y = runs[b][cursors[b]];
                    if (key(y), y) <= (key(x), x) {
                        Some(b)
                    } else {
                        Some(i)
                    }
                }
                None => Some(i),
            };
        }
        let Some(b) = best else { break };
        out.push(runs[b][cursors[b]]);
        cursors[b] += 1;
    }
    out
}

#[derive(Default)]
struct TputPart {
    /// Positions into `Dataset::tput`, ascending.
    idx: Vec<u32>,
    by_tech: [Vec<u32>; TECHS],
    by_tz: [Vec<u32>; TZS],
    by_bin_tech: [[Vec<u32>; TECHS]; BINS],
    /// Finite `mbps` values of this partition, sorted ascending.
    sorted_mbps: OnceLock<Vec<f64>>,
}

impl TputPart {
    /// Gather this partition's finite `mbps` values from the contiguous
    /// column and sort once, shared by every Cdf that merges it.
    fn sorted_mbps(&self, mbps: &[f64]) -> &[f64] {
        self.sorted_mbps.get_or_init(|| {
            let mut v: Vec<f64> = self
                .idx
                .iter()
                .map(|&i| *at(mbps, i))
                .filter(|x| x.is_finite())
                .collect();
            v.sort_by(f64::total_cmp);
            v
        })
    }
}

#[derive(Default)]
struct RttPart {
    /// Positions into `Dataset::rtt` (lost pings included), ascending.
    idx: Vec<u32>,
    by_tech: [Vec<u32>; TECHS],
    by_bin_tech: [[Vec<u32>; TECHS]; BINS],
    /// Finite valid RTT values of this partition, sorted ascending.
    sorted_ms: OnceLock<Vec<f64>>,
}

impl RttPart {
    /// Gather this partition's finite valid RTT values from the validity
    /// and value columns and sort once.
    fn sorted_ms(&self, rtt_valid: &[u8], rtt_ms: &[f64]) -> &[f64] {
        self.sorted_ms.get_or_init(|| {
            let mut v: Vec<f64> = self
                .idx
                .iter()
                .filter(|&&i| *at(rtt_valid, i) == 1)
                .map(|&i| *at(rtt_ms, i))
                .filter(|x| x.is_finite())
                .collect();
            v.sort_by(f64::total_cmp);
            v
        })
    }
}

/// Indexed view over an owned, normalized [`Dataset`]. See the module
/// docs for the guarantees.
pub struct DatasetView {
    ds: Dataset,
    /// Struct-of-arrays twin of `ds`, row-aligned position for position;
    /// all bulk numeric gathers go through these columns.
    cols: ColumnarDataset,
    tput_parts: Vec<TputPart>,
    rtt_parts: Vec<RttPart>,
    cov_idx: [Vec<u32>; OPS],
    /// Per-test positions into `tput`, time-ascending (normalize sorts by
    /// `(t, test_id)` and a test's samples share one `test_id`).
    tput_by_test: BTreeMap<u32, Vec<u32>>,
    rtt_by_test: BTreeMap<u32, Vec<u32>>,
    /// Memoized merged indices for wildcard combos.
    tput_merged: [OnceLock<Vec<u32>>; TPUT_COMBOS],
    rtt_merged: [OnceLock<Vec<u32>>; RTT_COMBOS],
    /// Memoized per-combo Cdfs (throughput Mbps / valid RTT ms).
    tput_cdfs: [OnceLock<Cdf>; TPUT_COMBOS],
    rtt_cdfs: [OnceLock<Cdf>; RTT_COMBOS],
    /// Memoized handover impact rows (Fig. 12, findings).
    impacts: OnceLock<Vec<HoImpact>>,
    /// Per-operator served-cell unions accumulated by `ingest_shard`
    /// (`Operator::ALL` order). Finalized datasets store only counts,
    /// so the streaming path has to carry the sets itself to keep
    /// Table 1's unique-cell column from double counting.
    cell_sets: Vec<BTreeSet<CellId>>,
    /// Sum of the ingested shards' own `log_bytes` — the base the
    /// runtime-derived XCAL volume accumulates on top of (zero in
    /// practice; shards derive no log volume of their own).
    log_base: f64,
}

impl DatasetView {
    /// Normalize `ds` (idempotent) and build all eager indices. Lazy
    /// memos (sorted runs, merged combos, Cdfs, impacts) fill on first
    /// use.
    pub fn new(mut ds: Dataset) -> DatasetView {
        ds.normalize();
        let cols = ColumnarDataset::from_rows(&ds);
        // Satellite invariant: columnarization must preserve dataset
        // order, or every figure multiset would silently reorder.
        debug_assert!(
            cols.is_normalized(),
            "from_rows reordered a normalized dataset"
        );
        Self::build(ds, cols)
    }

    /// Build a view directly from a decoded [`ColumnarDataset`] (the
    /// binary-load path): reconstruct the row tables for the iterator
    /// API and index straight off the columns, skipping the normalize
    /// sort a row-side build pays — WCD1 files store canonical order.
    pub fn from_columns(cols: ColumnarDataset) -> Result<DatasetView, ColumnError> {
        let mut ds = cols.to_rows()?;
        debug_assert!(
            cols.is_normalized(),
            "columnar dataset left canonical order on disk"
        );
        if !cols.is_normalized() {
            // Foreign/hand-built files may be unsorted; fall back to the
            // full normalize + rebuild so the order guarantee holds.
            ds.normalize();
            return Ok(Self::new(ds));
        }
        Ok(Self::build(ds, cols))
    }

    /// Index builder over the column slices. `ds` and `cols` must be the
    /// same normalized dataset, row-aligned position for position.
    fn build(ds: Dataset, cols: ColumnarDataset) -> DatasetView {
        let t = &cols.tput;
        let mut tput_parts: Vec<TputPart> = (0..TPUT_PARTS).map(|_| TputPart::default()).collect();
        let mut tput_by_test: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for i in 0..t.len() {
            let tech = usize::from(t.tech[i]);
            let p = &mut tput_parts[tpart(
                usize::from(t.operator[i]),
                usize::from(t.direction[i]),
                usize::from(t.driving[i]),
            )];
            push_pos(&mut p.idx, i);
            push_pos(&mut p.by_tech[tech], i);
            push_pos(&mut p.by_tz[usize::from(t.tz[i])], i);
            let b = bin_index(SpeedBin::of(Speed::from_mph(t.speed_mph[i])));
            push_pos(&mut p.by_bin_tech[b][tech], i);
            push_pos(tput_by_test.entry(t.test_id[i]).or_default(), i);
        }

        let r = &cols.rtt;
        let mut rtt_parts: Vec<RttPart> = (0..RTT_PARTS).map(|_| RttPart::default()).collect();
        let mut rtt_by_test: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for i in 0..r.len() {
            let tech = usize::from(r.tech[i]);
            let p = &mut rtt_parts[rpart(usize::from(r.operator[i]), usize::from(r.driving[i]))];
            push_pos(&mut p.idx, i);
            push_pos(&mut p.by_tech[tech], i);
            let b = bin_index(SpeedBin::of(Speed::from_mph(r.speed_mph[i])));
            push_pos(&mut p.by_bin_tech[b][tech], i);
            push_pos(rtt_by_test.entry(r.test_id[i]).or_default(), i);
        }

        let mut cov_idx: [Vec<u32>; OPS] = Default::default();
        for (i, &op) in cols.coverage.operator.iter().enumerate() {
            push_pos(&mut cov_idx[usize::from(op)], i);
        }

        DatasetView {
            ds,
            cols,
            tput_parts,
            rtt_parts,
            cov_idx,
            tput_by_test,
            rtt_by_test,
            tput_merged: std::array::from_fn(|_| OnceLock::new()),
            rtt_merged: std::array::from_fn(|_| OnceLock::new()),
            tput_cdfs: std::array::from_fn(|_| OnceLock::new()),
            rtt_cdfs: std::array::from_fn(|_| OnceLock::new()),
            impacts: OnceLock::new(),
            cell_sets: vec![BTreeSet::new(); OPS],
            log_base: 0.0,
        }
    }

    /// The owned, normalized dataset (for tables the view does not index:
    /// runs, handovers, apps, Table-1 aggregates).
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// The columnar twin, row-aligned with [`DatasetView::dataset`] —
    /// what the batched kernels scan and what the WCD1 writer persists.
    pub fn columns(&self) -> &ColumnarDataset {
        &self.cols
    }

    /// Positions matching the filter, in dataset (time) order — the same
    /// visit order as a linear `tput_where` scan.
    fn tput_index(
        &self,
        op: Option<Operator>,
        dir: Option<Direction>,
        driving: Option<bool>,
    ) -> &[u32] {
        if let (Some(o), Some(d), Some(dr)) = (op, dir, driving) {
            return &self.tput_parts[tpart(o.index(), dir_index(d), usize::from(dr))].idx;
        }
        self.tput_merged[tcombo(op, dir, driving)].get_or_init(|| {
            let t = &self.cols.tput;
            let runs: Vec<&[u32]> = tput_part_ids(op, dir, driving)
                .into_iter()
                .map(|p| self.tput_parts[p].idx.as_slice())
                .collect();
            merge_indices(&runs, |i| (*at(&t.t_ms, i), *at(&t.test_id, i)))
        })
    }

    fn rtt_index(&self, op: Option<Operator>, driving: Option<bool>) -> &[u32] {
        if let (Some(o), Some(dr)) = (op, driving) {
            return &self.rtt_parts[rpart(o.index(), usize::from(dr))].idx;
        }
        self.rtt_merged[rcombo(op, driving)].get_or_init(|| {
            let r = &self.cols.rtt;
            let runs: Vec<&[u32]> = rtt_part_ids(op, driving)
                .into_iter()
                .map(|p| self.rtt_parts[p].idx.as_slice())
                .collect();
            merge_indices(&runs, |i| (*at(&r.t_ms, i), *at(&r.test_id, i)))
        })
    }

    /// Equivalent of [`Dataset::tput_where`]: same samples, same order,
    /// without the full-table scan.
    pub fn tput_iter(
        &self,
        op: Option<Operator>,
        dir: Option<Direction>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = &TputSample> {
        self.tput_index(op, dir, driving)
            .iter()
            .map(|&i| at(&self.ds.tput, i))
    }

    /// Memoized Cdf of `mbps` over the filter — the sorted multiset
    /// `Cdf::from_samples` would build, shared across callers.
    pub fn tput_cdf(
        &self,
        op: Option<Operator>,
        dir: Option<Direction>,
        driving: Option<bool>,
    ) -> &Cdf {
        self.tput_cdfs[tcombo(op, dir, driving)].get_or_init(|| {
            let runs: Vec<&[f64]> = tput_part_ids(op, dir, driving)
                .into_iter()
                .map(|p| self.tput_parts[p].sorted_mbps(&self.cols.tput.mbps))
                .collect();
            Cdf::from_sorted(merge_sorted(&runs))
        })
    }

    /// Throughput samples of one partition on one technology (Fig. 4).
    pub fn tput_tech(
        &self,
        op: Operator,
        dir: Direction,
        driving: bool,
        tech: Technology,
    ) -> impl Iterator<Item = &TputSample> {
        self.tput_parts[tpart(op.index(), dir_index(dir), usize::from(driving))].by_tech
            [tech.index()]
        .iter()
        .map(|&i| at(&self.ds.tput, i))
    }

    /// Throughput samples of one partition in one timezone (Fig. 5).
    pub fn tput_tz(
        &self,
        op: Operator,
        dir: Direction,
        driving: bool,
        tz: Timezone,
    ) -> impl Iterator<Item = &TputSample> {
        self.tput_parts[tpart(op.index(), dir_index(dir), usize::from(driving))].by_tz[tz_index(tz)]
            .iter()
            .map(|&i| at(&self.ds.tput, i))
    }

    /// Throughput samples of one partition in one speed bin on one
    /// technology (Figs. 7–8).
    pub fn tput_bin_tech(
        &self,
        op: Operator,
        dir: Direction,
        driving: bool,
        bin: SpeedBin,
        tech: Technology,
    ) -> impl Iterator<Item = &TputSample> {
        self.tput_parts[tpart(op.index(), dir_index(dir), usize::from(driving))].by_bin_tech
            [bin_index(bin)][tech.index()]
        .iter()
        .map(|&i| at(&self.ds.tput, i))
    }

    /// Per-test throughput sample groups matching the filter, keyed by
    /// test id, each group in time order (Figs. 9–10). A test's operator,
    /// direction and driving flag are constant by construction, so the
    /// filter checks the group's first sample.
    pub fn tput_tests(
        &self,
        op: Option<Operator>,
        dir: Option<Direction>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = (u32, impl Iterator<Item = &TputSample>)> {
        self.tput_by_test.iter().filter_map(move |(&id, pos)| {
            let first = at(&self.ds.tput, *pos.first()?);
            let keep = op.is_none_or(|o| first.operator == o)
                && dir.is_none_or(|d| first.direction == d)
                && driving.is_none_or(|dr| first.driving == dr);
            keep.then(|| (id, pos.iter().map(|&i| at(&self.ds.tput, i))))
        })
    }

    /// Equivalent of iterating `Dataset::rtt` with the `rtt_where`
    /// filters but keeping whole samples (lost pings included).
    pub fn rtt_iter(
        &self,
        op: Option<Operator>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = &RttSample> {
        self.rtt_index(op, driving)
            .iter()
            .map(|&i| at(&self.ds.rtt, i))
    }

    /// Equivalent of [`Dataset::rtt_where`]: valid RTT values in dataset
    /// order.
    pub fn rtt_values(
        &self,
        op: Option<Operator>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = f64> + '_ {
        self.rtt_iter(op, driving).filter_map(|s| s.rtt_ms)
    }

    /// Memoized Cdf of valid RTT ms over the filter.
    pub fn rtt_cdf(&self, op: Option<Operator>, driving: Option<bool>) -> &Cdf {
        self.rtt_cdfs[rcombo(op, driving)].get_or_init(|| {
            let runs: Vec<&[f64]> = rtt_part_ids(op, driving)
                .into_iter()
                .map(|p| {
                    self.rtt_parts[p].sorted_ms(&self.cols.rtt.rtt_valid, &self.cols.rtt.rtt_ms)
                })
                .collect();
            Cdf::from_sorted(merge_sorted(&runs))
        })
    }

    /// RTT samples of one partition on one technology (Fig. 4).
    pub fn rtt_tech(
        &self,
        op: Operator,
        driving: bool,
        tech: Technology,
    ) -> impl Iterator<Item = &RttSample> {
        self.rtt_parts[rpart(op.index(), usize::from(driving))].by_tech[tech.index()]
            .iter()
            .map(|&i| at(&self.ds.rtt, i))
    }

    /// RTT samples of one partition in one speed bin on one technology
    /// (Fig. 8).
    pub fn rtt_bin_tech(
        &self,
        op: Operator,
        driving: bool,
        bin: SpeedBin,
        tech: Technology,
    ) -> impl Iterator<Item = &RttSample> {
        self.rtt_parts[rpart(op.index(), usize::from(driving))].by_bin_tech[bin_index(bin)]
            [tech.index()]
        .iter()
        .map(|&i| at(&self.ds.rtt, i))
    }

    /// Per-test RTT sample groups matching the filter (Fig. 9).
    pub fn rtt_tests(
        &self,
        op: Option<Operator>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = (u32, impl Iterator<Item = &RttSample>)> {
        self.rtt_by_test.iter().filter_map(move |(&id, pos)| {
            let first = at(&self.ds.rtt, *pos.first()?);
            let keep = op.is_none_or(|o| first.operator == o)
                && driving.is_none_or(|dr| first.driving == dr);
            keep.then(|| (id, pos.iter().map(|&i| at(&self.ds.rtt, i))))
        })
    }

    /// Coverage samples of one operator, in dataset order (Figs. 1–2).
    pub fn coverage_for(&self, op: Operator) -> impl Iterator<Item = &CoverageSample> {
        self.cov_idx[op.index()]
            .iter()
            .map(|&i| at(&self.ds.coverage, i))
    }

    /// Memoized handover throughput impacts (Fig. 12, findings), computed
    /// once over the shared by-test index.
    pub fn impacts(&self) -> &[HoImpact] {
        self.impacts
            .get_or_init(|| handover::impacts_indexed(&self.ds, &self.tput_by_test))
    }

    /// One Table-2 row via the batched columnar kernel: the partition's
    /// permutation index gathers `mbps` and each KPI from contiguous
    /// column slices (same samples, same order as the row path).
    pub fn tput_correlation(&self, op: Operator, dir: Direction, driving: bool) -> CorrelationRow {
        let idx = &self.tput_parts[tpart(op.index(), dir_index(dir), usize::from(driving))].idx;
        correlation::correlate_cols(&self.cols.tput, idx, op, dir)
    }

    /// Fig. 2a technology share via the columnar kernel.
    pub fn coverage_share(&self, op: Operator) -> TechShare {
        coverage::overall_cols(&self.cols.coverage, &self.cov_idx[op.index()])
    }

    /// Fig. 2b share split by backlogged direction via the columnar kernel.
    pub fn coverage_share_by_direction(&self, op: Operator) -> BTreeMap<Direction, TechShare> {
        coverage::by_direction_cols(&self.cols.coverage, &self.cov_idx[op.index()])
    }

    /// Fig. 2c share per timezone via the columnar kernel.
    pub fn coverage_share_by_timezone(&self, op: Operator) -> BTreeMap<Timezone, TechShare> {
        coverage::by_timezone_cols(&self.cols.coverage, &self.cov_idx[op.index()])
    }

    /// Fig. 2d share per speed bin via the columnar kernel.
    pub fn coverage_share_by_speed_bin(&self, op: Operator) -> BTreeMap<SpeedBin, TechShare> {
        coverage::by_speed_bin_cols(&self.cols.coverage, &self.cov_idx[op.index()])
    }

    /// Fold one completed campaign shard into the view incrementally —
    /// µs per shard instead of the full rebuild `DatasetView::new`
    /// pays. The sample tables are appended in arrival order and every
    /// affected permutation index is extended by a binary-splice run
    /// merge, so all indexed accessors keep yielding exactly what a
    /// rebuild over the union would yield; memoized sorted runs, merged
    /// combos and Cdfs are re-armed only where the shard actually
    /// landed. The small tables stay physically canonical (the raw-scan
    /// consumers need them so), and Table 1 accounting is recomputed
    /// with the same f64 accumulation order as the campaign merger.
    ///
    /// Preconditions (both guaranteed by the simulator): each shard is
    /// ingested at most once, and shard canonical keys (test ids,
    /// coverage/handover instants) never collide across shards — the
    /// equality with a full rebuild is then independent of arrival
    /// order. A view seeded from an already-finalized dataset keeps
    /// exact runtimes but its unique-cell counts cover only ingested
    /// shards (finalized datasets store counts, not the sets).
    pub fn ingest_shard(&mut self, rec: ShardRecords) {
        let ShardRecords {
            operator,
            dataset: mut sd,
            cells,
        } = rec;
        if !sd.is_normalized() {
            // Shards normalize before handing off, but a journal
            // written by an older build may carry unsorted tables.
            sd.normalize();
        }

        let tput_touched = self.ingest_tput(std::mem::take(&mut sd.tput));
        let rtt_touched = self.ingest_rtt(std::mem::take(&mut sd.rtt));
        self.ingest_coverage(std::mem::take(&mut sd.coverage));
        self.ingest_small_tables(&mut sd);

        // Re-arm every memo whose partition set intersects the shard:
        // wildcard slots merge multiple partitions, so one landed
        // partition can dirty several combos. Fully-specified slots
        // only carry a Cdf (their index is the partition itself).
        let mut op_opts: Vec<Option<Operator>> = Operator::ALL.iter().copied().map(Some).collect();
        op_opts.push(None);
        let mut dir_opts: Vec<Option<Direction>> =
            Direction::ALL.iter().copied().map(Some).collect();
        dir_opts.push(None);
        const DRV: [Option<bool>; 3] = [Some(false), Some(true), None];
        for &o in &op_opts {
            for &dr in &DRV {
                for &d in &dir_opts {
                    if tput_part_ids(o, d, dr).iter().any(|&p| tput_touched[p]) {
                        let c = tcombo(o, d, dr);
                        self.tput_merged[c] = OnceLock::new();
                        self.tput_cdfs[c] = OnceLock::new();
                    }
                }
                if rtt_part_ids(o, dr).iter().any(|&p| rtt_touched[p]) {
                    let c = rcombo(o, dr);
                    self.rtt_merged[c] = OnceLock::new();
                    self.rtt_cdfs[c] = OnceLock::new();
                }
            }
        }
        self.impacts = OnceLock::new();

        // Table 1 accounting, identical accumulation order to the
        // campaign merger's finish pass.
        self.cell_sets[operator.index()].extend(cells.iter().copied());
        self.log_base += sd.log_bytes;
        self.ds.rx_bytes += sd.rx_bytes;
        self.ds.tx_bytes += sd.tx_bytes;
        apply_table1_accounting(&mut self.ds, &Operator::ALL, &self.cell_sets, self.log_base);
        self.cols.rx_bytes = self.ds.rx_bytes;
        self.cols.tx_bytes = self.ds.tx_bytes;
        self.cols.log_bytes = self.ds.log_bytes;
        self.cols.cells_operator.clear();
        self.cols.cells_count.clear();
        for &(op, n) in &self.ds.unique_cells {
            self.cols.cells_operator.push(op_code(op));
            self.cols
                .cells_count
                .push(u64::try_from(n).expect("usize fits u64 on every supported target"));
        }
        self.cols.runtime_operator.clear();
        self.cols.runtime_min.clear();
        for &(op, min) in &self.ds.runtime_min {
            self.cols.runtime_operator.push(op_code(op));
            self.cols.runtime_min.push(min);
        }
    }

    /// Append the shard's throughput run and splice-merge each touched
    /// partition index; returns the touched-partition mask.
    fn ingest_tput(&mut self, rows: Vec<TputSample>) -> [bool; TPUT_PARTS] {
        let mut touched = [false; TPUT_PARTS];
        if rows.is_empty() {
            return touched;
        }
        let base = self.ds.tput.len();
        let mut add: Vec<TputPart> = (0..TPUT_PARTS).map(|_| TputPart::default()).collect();
        for (j, s) in rows.iter().enumerate() {
            let i = base + j;
            self.cols.tput.push(s);
            let tech = s.tech.index();
            let p = &mut add[tpart(
                s.operator.index(),
                dir_index(s.direction),
                usize::from(s.driving),
            )];
            push_pos(&mut p.idx, i);
            push_pos(&mut p.by_tech[tech], i);
            push_pos(&mut p.by_tz[tz_index(s.tz)], i);
            let b = bin_index(SpeedBin::of(Speed::from_mph(s.speed_mph)));
            push_pos(&mut p.by_bin_tech[b][tech], i);
            push_pos(self.tput_by_test.entry(s.test_id).or_default(), i);
        }
        self.ds.tput.extend(rows);

        let t_ms = &self.cols.tput.t_ms;
        let test_id = &self.cols.tput.test_id;
        let key = |i: u32| (*at(t_ms, i), *at(test_id, i));
        for (p, new) in add.iter().enumerate() {
            if new.idx.is_empty() {
                continue;
            }
            touched[p] = true;
            let part = &mut self.tput_parts[p];
            merge_positions(&mut part.idx, &new.idx, key);
            for (list, run) in part.by_tech.iter_mut().zip(&new.by_tech) {
                merge_positions(list, run, key);
            }
            for (list, run) in part.by_tz.iter_mut().zip(&new.by_tz) {
                merge_positions(list, run, key);
            }
            for (bin, new_bin) in part.by_bin_tech.iter_mut().zip(&new.by_bin_tech) {
                for (list, run) in bin.iter_mut().zip(new_bin) {
                    merge_positions(list, run, key);
                }
            }
            part.sorted_mbps = OnceLock::new();
        }
        touched
    }

    /// RTT twin of [`DatasetView::ingest_tput`].
    fn ingest_rtt(&mut self, rows: Vec<RttSample>) -> [bool; RTT_PARTS] {
        let mut touched = [false; RTT_PARTS];
        if rows.is_empty() {
            return touched;
        }
        let base = self.ds.rtt.len();
        let mut add: Vec<RttPart> = (0..RTT_PARTS).map(|_| RttPart::default()).collect();
        for (j, s) in rows.iter().enumerate() {
            let i = base + j;
            self.cols.rtt.push(s);
            let tech = s.tech.index();
            let p = &mut add[rpart(s.operator.index(), usize::from(s.driving))];
            push_pos(&mut p.idx, i);
            push_pos(&mut p.by_tech[tech], i);
            let b = bin_index(SpeedBin::of(Speed::from_mph(s.speed_mph)));
            push_pos(&mut p.by_bin_tech[b][tech], i);
            push_pos(self.rtt_by_test.entry(s.test_id).or_default(), i);
        }
        self.ds.rtt.extend(rows);

        let t_ms = &self.cols.rtt.t_ms;
        let test_id = &self.cols.rtt.test_id;
        let key = |i: u32| (*at(t_ms, i), *at(test_id, i));
        for (p, new) in add.iter().enumerate() {
            if new.idx.is_empty() {
                continue;
            }
            touched[p] = true;
            let part = &mut self.rtt_parts[p];
            merge_positions(&mut part.idx, &new.idx, key);
            for (list, run) in part.by_tech.iter_mut().zip(&new.by_tech) {
                merge_positions(list, run, key);
            }
            for (bin, new_bin) in part.by_bin_tech.iter_mut().zip(&new.by_bin_tech) {
                for (list, run) in bin.iter_mut().zip(new_bin) {
                    merge_positions(list, run, key);
                }
            }
            part.sorted_ms = OnceLock::new();
        }
        touched
    }

    /// Coverage twin: per-operator index splice (coverage has no lazy
    /// memos — the share kernels scan the index on every call).
    fn ingest_coverage(&mut self, rows: Vec<CoverageSample>) {
        if rows.is_empty() {
            return;
        }
        let base = self.ds.coverage.len();
        let mut add: [Vec<u32>; OPS] = Default::default();
        for (j, s) in rows.iter().enumerate() {
            self.cols.coverage.push(s);
            push_pos(&mut add[s.operator.index()], base + j);
        }
        self.ds.coverage.extend(rows);

        let t_ms = &self.cols.coverage.t_ms;
        let op = &self.cols.coverage.operator;
        let key = |i: u32| (*at(t_ms, i), *at(op, i));
        for (list, run) in self.cov_idx.iter_mut().zip(&add) {
            merge_positions(list, run, key);
        }
    }

    /// Physically merge the shard's small tables into canonical order
    /// (raw-order consumers: the handover kernels and the figure code)
    /// and rebuild their column bundles — thousands of times smaller
    /// than the sample tables, so the rebuild is noise.
    fn ingest_small_tables(&mut self, sd: &mut Dataset) {
        merge_sorted_by_key(&mut self.ds.runs, std::mem::take(&mut sd.runs), |r| {
            (r.start.as_millis(), r.id)
        });
        merge_sorted_by_key(
            &mut self.ds.handovers,
            std::mem::take(&mut sd.handovers),
            |h| {
                (
                    h.event.start.as_millis(),
                    h.operator.index(),
                    h.event.to_cell,
                )
            },
        );
        merge_sorted_by_key(&mut self.ds.apps, std::mem::take(&mut sd.apps), |a| a.id);
        merge_sorted_by_key(&mut self.ds.audits, std::mem::take(&mut sd.audits), |a| {
            (a.scheduled.as_millis(), a.test_id)
        });

        self.cols.runs = RunColumns::default();
        for r in &self.ds.runs {
            self.cols.runs.push(r);
        }
        self.cols.handovers = HandoverColumns::default();
        for h in &self.ds.handovers {
            self.cols.handovers.push(h);
        }
        self.cols.apps = AppColumns::default();
        for a in &self.ds.apps {
            self.cols.apps.push(a);
        }
        self.cols.audits = AuditColumns::default();
        for a in &self.ds.audits {
            self.cols.audits.push(a);
        }
    }

    /// Rebuild a view by replaying a checkpoint journal frame-by-frame
    /// through [`DatasetView::ingest_shard`] — the one incremental
    /// pipeline `run_checkpointed`, `--resume` and `wheels-serve`
    /// share. Strictly read-only (`checkpoint::tail` stops at a torn
    /// tail without truncating it); returns the view and the
    /// [`TailState`] resume cursor, so a live follower can keep
    /// polling from `TailState::next_offset` via
    /// `checkpoint::tail_from` without re-reading the replayed prefix.
    pub fn from_journal(
        dir: &Path,
        fp: &Fingerprint,
    ) -> Result<(DatasetView, TailState), CheckpointError> {
        let mut view = DatasetView::new(Dataset::default());
        let state = checkpoint::tail(dir, fp, |_, rec| {
            view.ingest_shard(rec);
            Ok(())
        })?;
        Ok((view, state))
    }

    /// Surrender the dataset, restoring physical canonical order first
    /// (ingest leaves the sample tables arrival-ordered). The stable
    /// re-sort makes the export byte-identical to a plan-order campaign
    /// merge whenever canonical keys are shard-unique — which the
    /// simulator guarantees.
    pub fn into_dataset(mut self) -> Dataset {
        self.ds.normalize();
        self.ds
    }
}
