//! Operator diversity (§5.4, Fig. 6).
//!
//! All three phones measured concurrently, so for any 500 ms bin where two
//! operators both have a driving throughput sample in the same direction
//! we can compute their difference. Each pair-sample is classified by the
//! technologies in use: HT (high-throughput: 5G mid/mmWave) vs LT
//! (everything else), giving the HT-HT / HT-LT / LT-HT / LT-LT bins of
//! Fig. 6b–d.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;

use crate::records::TputSample;

/// Technology-class bin of a concurrent pair (first operator's class
/// first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PairBin {
    /// Both on high-throughput technologies.
    HtHt,
    /// First HT, second LT.
    HtLt,
    /// First LT, second HT.
    LtHt,
    /// Both LT.
    LtLt,
}

impl PairBin {
    /// All bins in Fig. 6's order.
    pub const ALL: [PairBin; 4] = [PairBin::HtHt, PairBin::HtLt, PairBin::LtHt, PairBin::LtLt];

    /// Label as in the figure.
    pub fn label(self) -> &'static str {
        match self {
            PairBin::HtHt => "HT-HT",
            PairBin::HtLt => "HT-LT",
            PairBin::LtHt => "LT-HT",
            PairBin::LtLt => "LT-LT",
        }
    }

    fn of(a_ht: bool, b_ht: bool) -> PairBin {
        match (a_ht, b_ht) {
            (true, true) => PairBin::HtHt,
            (true, false) => PairBin::HtLt,
            (false, true) => PairBin::LtHt,
            (false, false) => PairBin::LtLt,
        }
    }
}

/// One concurrent pair-sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairSample {
    /// Throughput difference `a − b` (Mbps).
    pub diff_mbps: f64,
    /// Technology-class bin.
    pub bin: PairBin,
}

/// The operator pairs Fig. 6 plots, in its order.
pub const PAIRS: [(Operator, Operator); 3] = [
    (Operator::Verizon, Operator::TMobile),
    (Operator::TMobile, Operator::Att),
    (Operator::Att, Operator::Verizon),
];

/// Join two operators' driving samples on the 500 ms grid and compute
/// differences.
pub fn pair_samples(
    samples: &[TputSample],
    a: Operator,
    b: Operator,
    dir: Direction,
) -> Vec<PairSample> {
    pair_samples_joined(
        samples
            .iter()
            .filter(|s| s.operator == a && s.direction == dir && s.driving),
        samples
            .iter()
            .filter(|s| s.operator == b && s.direction == dir && s.driving),
    )
}

/// [`pair_samples`] over two pre-filtered sample streams (the
/// dataset-view path: each stream is one (operator, direction, driving)
/// partition).
pub fn pair_samples_joined<'a>(
    a: impl IntoIterator<Item = &'a TputSample>,
    b: impl IntoIterator<Item = &'a TputSample>,
) -> Vec<PairSample> {
    // BTreeMap so the join below walks bins in time order — with a hash
    // map, ties in `diff_mbps` would land in input-dependent order.
    fn index<'a>(it: impl IntoIterator<Item = &'a TputSample>) -> BTreeMap<u64, &'a TputSample> {
        it.into_iter().map(|s| (s.t.as_millis() / 500, s)).collect()
    }
    let ia = index(a);
    let ib = index(b);
    let mut out: Vec<PairSample> = ia
        .iter()
        .filter_map(|(bin, sa)| {
            let sb = ib.get(bin)?;
            Some(PairSample {
                diff_mbps: sa.mbps - sb.mbps,
                bin: PairBin::of(sa.tech.is_high_speed(), sb.tech.is_high_speed()),
            })
        })
        .collect();
    out.sort_by(|x, y| x.diff_mbps.total_cmp(&y.diff_mbps));
    out
}

/// Fig. 6b: fraction of pair-samples in each bin.
pub fn bin_distribution(samples: &[PairSample]) -> Vec<(PairBin, f64)> {
    let n = samples.len().max(1) as f64;
    PairBin::ALL
        .iter()
        .map(|b| {
            (
                *b,
                samples.iter().filter(|s| s.bin == *b).count() as f64 / n,
            )
        })
        .collect()
}

/// Differences belonging to one bin (Figs. 6c–d).
pub fn diffs_in_bin(samples: &[PairSample], bin: PairBin) -> Vec<f64> {
    samples
        .iter()
        .filter(|s| s.bin == bin)
        .map(|s| s.diff_mbps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::route::ZoneClass;
    use wheels_radio::tech::Technology;
    use wheels_sim_core::time::{SimTime, Timezone};
    use wheels_transport::servers::ServerKind;

    fn sample(op: Operator, t_ms: u64, mbps: f64, tech: Technology) -> TputSample {
        TputSample {
            t: SimTime(t_ms),
            test_id: 0,
            operator: op,
            direction: Direction::Downlink,
            mbps,
            tech,
            cell: 1,
            speed_mph: 60.0,
            zone: ZoneClass::Highway,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            rsrp_dbm: -100.0,
            mcs: 15,
            bler: 0.1,
            carriers: 2,
            handovers_in_bin: 0,
            driving: true,
        }
    }

    #[test]
    fn joins_only_matching_bins() {
        let samples = vec![
            sample(Operator::Verizon, 0, 100.0, Technology::Nr5gMmWave),
            sample(Operator::TMobile, 0, 40.0, Technology::Lte),
            sample(Operator::Verizon, 500, 90.0, Technology::Nr5gMmWave),
            // T-Mobile has no sample at 500 ms.
            sample(Operator::TMobile, 1000, 10.0, Technology::Nr5gMid),
        ];
        let pairs = pair_samples(
            &samples,
            Operator::Verizon,
            Operator::TMobile,
            Direction::Downlink,
        );
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].diff_mbps - 60.0).abs() < 1e-9);
        assert_eq!(pairs[0].bin, PairBin::HtLt);
    }

    #[test]
    fn bin_classification() {
        let samples = vec![
            sample(Operator::Verizon, 0, 10.0, Technology::Lte),
            sample(Operator::TMobile, 0, 20.0, Technology::Nr5gMid),
            sample(Operator::Verizon, 500, 10.0, Technology::Nr5gMid),
            sample(Operator::TMobile, 500, 20.0, Technology::Nr5gMmWave),
            sample(Operator::Verizon, 1000, 10.0, Technology::LteA),
            sample(Operator::TMobile, 1000, 20.0, Technology::Nr5gLow),
        ];
        let pairs = pair_samples(
            &samples,
            Operator::Verizon,
            Operator::TMobile,
            Direction::Downlink,
        );
        let dist = bin_distribution(&pairs);
        let get = |b: PairBin| dist.iter().find(|(x, _)| *x == b).unwrap().1;
        assert!((get(PairBin::LtHt) - 1.0 / 3.0).abs() < 1e-9);
        assert!((get(PairBin::HtHt) - 1.0 / 3.0).abs() < 1e-9);
        assert!((get(PairBin::LtLt) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(get(PairBin::HtLt), 0.0);
    }

    #[test]
    fn diffs_sorted_and_filtered() {
        let samples = vec![
            sample(Operator::Verizon, 0, 50.0, Technology::Lte),
            sample(Operator::TMobile, 0, 20.0, Technology::Lte),
            sample(Operator::Verizon, 500, 5.0, Technology::Lte),
            sample(Operator::TMobile, 500, 25.0, Technology::Lte),
        ];
        let pairs = pair_samples(
            &samples,
            Operator::Verizon,
            Operator::TMobile,
            Direction::Downlink,
        );
        let diffs = diffs_in_bin(&pairs, PairBin::LtLt);
        assert_eq!(diffs, vec![-20.0, 30.0]);
        assert!(diffs_in_bin(&pairs, PairBin::HtHt).is_empty());
    }

    #[test]
    fn empty_distribution_is_zeroes() {
        let dist = bin_distribution(&[]);
        assert!(dist.iter().all(|(_, f)| *f == 0.0));
    }
}
