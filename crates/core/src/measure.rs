//! The measurement instruments: one function per test type.
//!
//! These are the §3/§5 test procedures, factored out so that the driving
//! campaign, the static baselines, and the experiment ablations all run
//! the *same* instrument over different link sources.
//!
//! Each instrument consumes a "poller" — a closure advancing the modem to
//! a given time — and a context closure describing the vehicle state, and
//! produces typed records for the consolidated dataset.

use wheels_geo::route::ZoneClass;
use wheels_radio::tech::Direction;
use wheels_ran::operator::Operator;
use wheels_ran::session::RanSnapshot;
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::time::{SimDuration, SimTime, Timezone};
use wheels_sim_core::units::DataRate;
use wheels_transport::ping::PingSession;
use wheels_transport::servers::NetPath;
use wheels_transport::tcp::CubicFlow;

use crate::records::{CoverageSample, RttSample, TputSample};

/// Vehicle context at a poll instant.
#[derive(Debug, Clone, Copy)]
pub struct VehicleCtx {
    /// Speed in mph.
    pub speed_mph: f64,
    /// Road zone.
    pub zone: ZoneClass,
    /// Timezone.
    pub tz: Timezone,
}

/// Closure types used by the instruments.
pub type Poller<'p> = dyn FnMut(SimTime) -> Option<RanSnapshot> + 'p;
/// Context provider (None = vehicle inactive).
pub type CtxOf<'p> = dyn FnMut(SimTime) -> Option<VehicleCtx> + 'p;

/// Throughput test duration (the paper used 30–35 s).
pub const TPUT_TEST: SimDuration = SimDuration(30_000);
/// RTT test duration (20 s).
pub const RTT_TEST: SimDuration = SimDuration(20_000);
/// XCAL throughput sampling period.
pub const SAMPLE_MS: u64 = 500;
/// TCP fluid tick.
const TCP_TICK_MS: u64 = 10;
/// RAN poll period during tests.
const POLL_MS: u64 = 100;

/// Result of one throughput test.
#[derive(Debug, Clone, Default)]
pub struct TputTestOut {
    /// 500 ms samples.
    pub samples: Vec<TputSample>,
    /// Coverage rows (one per 500 ms bin, connected or not).
    pub coverage: Vec<CoverageSample>,
    /// Application bytes moved.
    pub bytes: f64,
    /// Fraction of polls on high-speed 5G.
    pub hs5g_fraction: f64,
}

/// Base RTT (ms) for a path given the serving technology.
pub fn base_rtt_ms(snap: &RanSnapshot, path: &NetPath) -> f64 {
    2.0 * snap.tech.ran_latency_ms() + 2.0 * path.core_owd_ms
}

/// Run one backlogged TCP throughput test over the full scheduled window.
#[allow(clippy::too_many_arguments)]
pub fn measure_tput(
    poll: &mut Poller,
    ctx_of: &mut CtxOf,
    dir: Direction,
    start: SimTime,
    test_id: u32,
    operator: Operator,
    path: NetPath,
    driving: bool,
) -> TputTestOut {
    measure_tput_window(
        poll,
        ctx_of,
        dir,
        start,
        start + TPUT_TEST,
        test_id,
        operator,
        path,
        driving,
    )
}

/// Run a (possibly truncated) backlogged TCP throughput test over
/// `[start, cut)`. Only **complete** 500 ms bins are recorded — a run
/// cut short mid-bin salvages its finished samples and discards the
/// partial bin, the paper's "keep what the disruption left us" rule.
/// With `cut = start + TPUT_TEST` this is exactly [`measure_tput`].
#[allow(clippy::too_many_arguments)]
pub fn measure_tput_window(
    poll: &mut Poller,
    ctx_of: &mut CtxOf,
    dir: Direction,
    start: SimTime,
    cut: SimTime,
    test_id: u32,
    operator: Operator,
    path: NetPath,
    driving: bool,
) -> TputTestOut {
    // Clip to whole bins: the fluid loop below closes a bin only when it
    // is full, so stopping on a bin boundary discards nothing extra.
    let whole_bins = cut.since(start).as_millis() / SAMPLE_MS;
    let end = start + SimDuration::from_millis(whole_bins * SAMPLE_MS);
    let mut flow = CubicFlow::new();
    let mut out = TputTestOut::default();
    let mut t = start;
    let mut last_snap: Option<RanSnapshot> = None;
    let mut bin_bytes = 0.0;
    let mut bin_start = start;
    let mut hs5g_polls = 0u32;
    let mut polls = 0u32;
    let mut bin_ho_start = 0usize;
    let mut ho_count_probe = 0usize;

    while t < end {
        if t.as_millis().is_multiple_of(POLL_MS) {
            last_snap = poll(t);
            if let Some(s) = &last_snap {
                polls += 1;
                if s.tech.is_high_speed() {
                    hs5g_polls += 1;
                }
                // Track handover onsets via the in_handover edge.
                if s.in_handover {
                    ho_count_probe += 1;
                }
            }
        }
        let rate = match &last_snap {
            Some(s) => match dir {
                Direction::Downlink => s.dl_rate,
                Direction::Uplink => s.ul_rate,
            },
            None => DataRate::ZERO,
        };
        let rtt = last_snap
            .as_ref()
            .map(|s| base_rtt_ms(s, &path))
            .unwrap_or(100.0);
        let tick = flow.advance(TCP_TICK_MS as f64, rate, rtt);
        bin_bytes += tick.delivered_bytes;

        t += SimDuration::from_millis(TCP_TICK_MS);

        if t.since(bin_start).as_millis() >= SAMPLE_MS {
            let ctx = ctx_of(bin_start);
            let mbps = bin_bytes * 8.0 / 1e6 / (SAMPLE_MS as f64 / 1000.0);
            out.bytes += bin_bytes;
            if let (Some(s), Some(c)) = (&last_snap, ctx) {
                out.samples.push(TputSample {
                    t: bin_start,
                    test_id,
                    operator,
                    direction: dir,
                    mbps,
                    tech: s.tech,
                    cell: s.cell.0,
                    speed_mph: c.speed_mph,
                    zone: c.zone,
                    tz: c.tz,
                    server: path.kind,
                    rsrp_dbm: s.rsrp.0,
                    mcs: s.primary_mcs,
                    bler: s.primary_bler,
                    carriers: s.carriers,
                    // lint: allow(lossy-cast, clamped to 255 on the previous call)
                    handovers_in_bin: (ho_count_probe - bin_ho_start).min(255) as u8,
                    driving,
                });
            }
            if let Some(c) = ctx {
                out.coverage.push(CoverageSample {
                    t: bin_start,
                    operator,
                    tech: last_snap.as_ref().map(|s| s.tech),
                    direction: Some(dir),
                    miles: c.speed_mph * (SAMPLE_MS as f64 / 3_600_000.0),
                    speed_mph: c.speed_mph,
                    tz: c.tz,
                    zone: c.zone,
                });
            }
            bin_bytes = 0.0;
            bin_start = t;
            bin_ho_start = ho_count_probe;
        }
    }
    out.hs5g_fraction = if polls == 0 {
        0.0
    } else {
        hs5g_polls as f64 / polls as f64
    };
    out
}

/// Run one RTT test (20 s of 200 ms pings).
#[allow(clippy::too_many_arguments)]
pub fn measure_rtt(
    poll: &mut Poller,
    ctx_of: &mut CtxOf,
    start: SimTime,
    test_id: u32,
    operator: Operator,
    path: NetPath,
    driving: bool,
    rng: SimRng,
) -> (Vec<RttSample>, Vec<CoverageSample>, f64) {
    measure_rtt_window(
        poll,
        ctx_of,
        start,
        start + RTT_TEST,
        test_id,
        operator,
        path,
        driving,
        rng,
    )
}

/// Run a (possibly truncated) RTT test over `[start, cut)`: pings keep
/// their deterministic 200 ms cadence and simply stop at the cut. With
/// `cut = start + RTT_TEST` this is exactly [`measure_rtt`].
#[allow(clippy::too_many_arguments)]
pub fn measure_rtt_window(
    poll: &mut Poller,
    ctx_of: &mut CtxOf,
    start: SimTime,
    cut: SimTime,
    test_id: u32,
    operator: Operator,
    path: NetPath,
    driving: bool,
    rng: SimRng,
) -> (Vec<RttSample>, Vec<CoverageSample>, f64) {
    let end = cut;
    let mut ping = PingSession::new(start, rng);
    let mut samples = Vec::new();
    let mut coverage = Vec::new();
    let mut hs5g = 0u32;
    let mut n = 0u32;
    while ping.next_due() < end {
        let t = ping.next_due();
        let snap = poll(t);
        let Some(c) = ctx_of(t) else {
            let _ = ping.fire(None, &path, 0.0);
            continue;
        };
        if let Some(s) = &snap {
            n += 1;
            if s.tech.is_high_speed() {
                hs5g += 1;
            }
        }
        let res = ping.fire(snap.as_ref(), &path, 0.0);
        samples.push(RttSample {
            t,
            test_id,
            operator,
            rtt_ms: res.rtt_ms,
            tech: snap
                .map(|s| s.tech)
                .unwrap_or(wheels_radio::tech::Technology::Lte),
            speed_mph: c.speed_mph,
            tz: c.tz,
            server: path.kind,
            driving,
        });
        // Coverage rows at 500 ms cadence (every 2nd-3rd ping boundary).
        if t.as_millis().is_multiple_of(600) {
            coverage.push(CoverageSample {
                t,
                operator,
                tech: samples.last().and_then(|r| {
                    if r.rtt_ms.is_some() {
                        Some(r.tech)
                    } else {
                        None
                    }
                }),
                direction: None,
                miles: c.speed_mph * (600.0 / 3_600_000.0),
                speed_mph: c.speed_mph,
                tz: c.tz,
                zone: c.zone,
            });
        }
    }
    let frac = if n == 0 { 0.0 } else { hs5g as f64 / n as f64 };
    (samples, coverage, frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_radio::tech::Technology;
    use wheels_ran::cells::CellId;
    use wheels_sim_core::units::{Db, Dbm};
    use wheels_transport::servers::ServerKind;

    fn snap(t: SimTime, dl: f64, ul: f64, tech: Technology) -> RanSnapshot {
        RanSnapshot {
            t,
            operator: Operator::TMobile,
            cell: CellId(3),
            tech,
            rsrp: Dbm(-100.0),
            sinr: Db(12.0),
            blocked: false,
            in_handover: false,
            carriers: 2,
            primary_mcs: 16,
            primary_bler: 0.09,
            dl_rate: DataRate::from_mbps(dl),
            ul_rate: DataRate::from_mbps(ul),
            share: 0.5,
        }
    }

    fn ctx() -> VehicleCtx {
        VehicleCtx {
            speed_mph: 65.0,
            zone: ZoneClass::Highway,
            tz: Timezone::Central,
        }
    }

    #[test]
    fn tput_test_produces_60_samples() {
        let mut poll = |t: SimTime| Some(snap(t, 80.0, 15.0, Technology::Nr5gMid));
        let mut c = |_t: SimTime| Some(ctx());
        let out = measure_tput(
            &mut poll,
            &mut c,
            Direction::Downlink,
            SimTime::EPOCH,
            1,
            Operator::TMobile,
            NetPath {
                kind: ServerKind::Cloud,
                core_owd_ms: 20.0,
            },
            true,
        );
        assert_eq!(out.samples.len(), 60);
        assert_eq!(out.coverage.len(), 60);
        // Steady 80 Mbps link: later samples should approach it.
        let tail_mean = out.samples[40..].iter().map(|s| s.mbps).sum::<f64>() / 20.0;
        assert!(tail_mean > 60.0, "tail mean {tail_mean}");
        assert!(out.hs5g_fraction > 0.99);
        assert!(out.bytes > 0.0);
    }

    #[test]
    fn tput_uses_direction_rate() {
        let mut poll = |t: SimTime| Some(snap(t, 100.0, 5.0, Technology::LteA));
        let mut c = |_t: SimTime| Some(ctx());
        let out = measure_tput(
            &mut poll,
            &mut c,
            Direction::Uplink,
            SimTime::EPOCH,
            2,
            Operator::TMobile,
            NetPath {
                kind: ServerKind::Cloud,
                core_owd_ms: 20.0,
            },
            true,
        );
        let tail = out.samples[40..].iter().map(|s| s.mbps).sum::<f64>() / 20.0;
        assert!(tail < 6.0, "uplink tail {tail}");
        assert!(out.hs5g_fraction < 0.01);
    }

    #[test]
    fn no_coverage_yields_coverage_rows_without_samples() {
        let mut poll = |_t: SimTime| None;
        let mut c = |_t: SimTime| Some(ctx());
        let out = measure_tput(
            &mut poll,
            &mut c,
            Direction::Downlink,
            SimTime::EPOCH,
            3,
            Operator::Att,
            NetPath {
                kind: ServerKind::Cloud,
                core_owd_ms: 25.0,
            },
            true,
        );
        assert!(out.samples.is_empty());
        assert_eq!(out.coverage.len(), 60);
        assert!(out.coverage.iter().all(|c| c.tech.is_none()));
    }

    #[test]
    fn rtt_test_fires_100_pings() {
        let mut poll = |t: SimTime| Some(snap(t, 50.0, 10.0, Technology::LteA));
        let mut c = |_t: SimTime| Some(ctx());
        let (samples, _cov, _f) = measure_rtt(
            &mut poll,
            &mut c,
            SimTime::EPOCH,
            4,
            Operator::TMobile,
            NetPath {
                kind: ServerKind::Cloud,
                core_owd_ms: 20.0,
            },
            true,
            SimRng::seed(1),
        );
        assert_eq!(samples.len(), 100);
        let ok = samples.iter().filter(|s| s.rtt_ms.is_some()).count();
        assert!(ok > 90, "ok {ok}");
    }

    #[test]
    fn truncated_tput_keeps_only_complete_bins() {
        let mut poll = |t: SimTime| Some(snap(t, 80.0, 15.0, Technology::Nr5gMid));
        let mut c = |_t: SimTime| Some(ctx());
        // Cut mid-bin at 10.25 s: 20 complete 500 ms bins survive, the
        // half-filled 21st is discarded.
        let out = measure_tput_window(
            &mut poll,
            &mut c,
            Direction::Downlink,
            SimTime::EPOCH,
            SimTime::EPOCH + SimDuration::from_millis(10_250),
            5,
            Operator::TMobile,
            NetPath {
                kind: ServerKind::Cloud,
                core_owd_ms: 20.0,
            },
            true,
        );
        assert_eq!(out.samples.len(), 20);
        assert_eq!(out.coverage.len(), 20);
        assert!(out.bytes > 0.0);
    }

    #[test]
    fn truncated_rtt_stops_at_cut() {
        let mut poll = |t: SimTime| Some(snap(t, 50.0, 10.0, Technology::LteA));
        let mut c = |_t: SimTime| Some(ctx());
        let (samples, _cov, _f) = measure_rtt_window(
            &mut poll,
            &mut c,
            SimTime::EPOCH,
            SimTime::EPOCH + SimDuration::from_millis(10_100),
            6,
            Operator::TMobile,
            NetPath {
                kind: ServerKind::Cloud,
                core_owd_ms: 20.0,
            },
            true,
            SimRng::seed(1),
        );
        // Pings at 0, 200, …, 10_000 ms — 51 of the full run's 100.
        assert_eq!(samples.len(), 51);
    }

    #[test]
    fn base_rtt_combines_ran_and_core() {
        let s = snap(SimTime::EPOCH, 1.0, 1.0, Technology::Nr5gMmWave);
        let p = NetPath {
            kind: ServerKind::Edge,
            core_owd_ms: 1.8,
        };
        let r = base_rtt_ms(&s, &p);
        assert!((r - (2.0 * 4.0 + 3.6)).abs() < 1e-9);
    }
}
