//! Static baseline tests (§5.1).
//!
//! In each major city the authors parked facing a 5G mmWave base station
//! (falling back to mid-band where no mmWave could be found, and skipping
//! operator-city combinations with neither) and ran the same throughput
//! and RTT tests. We reproduce that: find the best high-speed-5G cell near
//! the city center, park the (virtual) UE at that cell's route position —
//! distance = the cell's lateral offset, i.e. "facing the BS" — and run
//! the instruments with a stationary context.

use wheels_geo::route::{Route, ZoneClass};
use wheels_radio::ca::aggregate;
use wheels_radio::channel::LinkChannel;
use wheels_radio::tech::{Direction, Technology};
use wheels_ran::cells::{Cell, Deployment};
use wheels_ran::load::LoadModel;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::session::{local_hour, typical_allocation, PollCtx, RanSession, RanSnapshot};
use wheels_sim_core::rng::SimRng;
use wheels_sim_core::time::{SimDuration, SimTime, Timezone};
use wheels_sim_core::units::{Db, Distance, Speed};
use wheels_transport::servers::ServerFleet;

use crate::measure::{self, VehicleCtx};
use crate::records::{Dataset, TestKind, TestRun};

/// Search radius around a city center for a high-speed-5G cell.
const CITY_SEARCH_KM: f64 = 8.0;

/// Find the best static test target near `city_odo`: an mmWave cell if
/// any, else a mid-band cell, else `None` (the paper omitted those
/// combinations).
pub fn find_target(dep: &Deployment, city_odo: Distance) -> Option<Cell> {
    for tech in [Technology::Nr5gMmWave, Technology::Nr5gMid] {
        let best = dep
            .cells()
            .iter()
            .filter(|c| c.tech == tech)
            .filter(|c| (c.odo.as_km() - city_odo.as_km()).abs() <= CITY_SEARCH_KM)
            .min_by(|a, b| {
                (a.odo.as_km() - city_odo.as_km())
                    .abs()
                    .total_cmp(&(b.odo.as_km() - city_odo.as_km()).abs())
            });
        if let Some(c) = best {
            return Some(*c);
        }
    }
    None
}

/// A link pinned to the static test's target cell: the tester stands in
/// front of the BS, so no cell selection, no policy dice, no handovers —
/// only the channel, the cell's load, and the device limits. This matches
/// the paper's procedure of parking *facing* a chosen 5G base station.
struct PinnedLink {
    cell: Cell,
    channel: LinkChannel,
    alloc: wheels_radio::ca::CarrierAllocation,
    load: LoadModel,
    tz: Timezone,
}

impl PinnedLink {
    fn new(dep: &Deployment, cell: Cell, tz: Timezone, rng: &mut SimRng) -> Self {
        let beam = if cell.tech == Technology::Nr5gMmWave {
            dep.operator.beam_profile()
        } else {
            wheels_radio::linkbudget::BeamProfile::neutral()
        };
        PinnedLink {
            cell,
            channel: LinkChannel::new(cell.tech, beam, &mut rng.split("probe/chan"))
                .with_static_los(),
            alloc: typical_allocation(dep.operator, cell.tech, &mut rng.split("probe/ca")),
            load: LoadModel::new(rng.split("probe/cell-load")),
            tz,
        }
    }

    fn poll(
        &mut self,
        t: SimTime,
        op: wheels_ran::operator::Operator,
        rng: &mut SimRng,
    ) -> RanSnapshot {
        // Facing the BS: the tester walks toward it, so the distance is
        // the cell's lateral offset capped at ~90 m.
        let facing = Distance::from_m(self.cell.lateral.as_m().min(90.0));
        let sample = self
            .channel
            .sample(rng, facing, Distance::ZERO, 100, Speed::ZERO);
        let sinr = Db(sample.snr.0 - 3.0);
        let share = self
            .load
            .share(self.cell.id, ZoneClass::City, t, local_hour(t, self.tz));
        let dl = aggregate(&self.alloc, Direction::Downlink, sinr, share);
        let ul = aggregate(&self.alloc, Direction::Uplink, sinr, share);
        RanSnapshot {
            t,
            operator: op,
            cell: self.cell.id,
            tech: self.cell.tech,
            rsrp: sample.rsrp,
            sinr,
            blocked: sample.blocked,
            in_handover: false,
            carriers: dl.carriers,
            primary_mcs: dl.primary_mcs,
            primary_bler: dl.primary_bler,
            dl_rate: dl.rate,
            ul_rate: ul.rate,
            share,
        }
    }
}

/// Run the static test suite (DL tput, UL tput, RTT) for one operator in
/// one city, appending to `ds`. Returns `false` when the city has no
/// high-speed 5G for this operator (tests skipped, as in the paper).
#[allow(clippy::too_many_arguments)]
pub fn run_city(
    dep: &Deployment,
    route: &Route,
    fleet: &ServerFleet,
    city_odo: Distance,
    start: SimTime,
    next_test_id: &mut u32,
    rng: &mut SimRng,
    ds: &mut Dataset,
) -> bool {
    let Some(target) = find_target(dep, city_odo) else {
        return false;
    };
    // Park at the cell's route position: the link distance is just the
    // lateral offset ("facing the BS").
    let ue_odo = target.odo;
    let tz = route.timezone_at(ue_odo);
    let path = fleet.path(dep.operator, route, ue_odo);

    let mut pinned = PinnedLink::new(dep, target, tz, &mut rng.split("probe/stand"));
    let mut pin_rng = rng.split("probe/pin-noise");
    let mut session = RanSession::new(dep, TrafficDemand::IcmpOnly, rng.split("probe/static"));
    let ctx = PollCtx {
        odo: ue_odo,
        speed: Speed::ZERO,
        zone: ZoneClass::City,
        tz,
    };
    let vctx = VehicleCtx {
        speed_mph: 0.0,
        zone: ZoneClass::City,
        tz,
    };

    let mut t = start;
    for (kind, dir) in [
        (TestKind::DownlinkTput, Some(Direction::Downlink)),
        (TestKind::UplinkTput, Some(Direction::Uplink)),
        (TestKind::Rtt, None),
    ] {
        let id = *next_test_id;
        *next_test_id += 1;
        let (end, hs5g) = match dir {
            Some(d) => {
                let op = dep.operator;
                let out = measure::measure_tput(
                    &mut |pt| Some(pinned.poll(pt, op, &mut pin_rng)),
                    &mut |_| Some(vctx),
                    d,
                    t,
                    id,
                    dep.operator,
                    path,
                    false,
                );
                match d {
                    Direction::Downlink => ds.rx_bytes += out.bytes,
                    Direction::Uplink => ds.tx_bytes += out.bytes,
                }
                ds.tput.extend(out.samples);
                // Static coverage rows carry no miles; skip them.
                (t + measure::TPUT_TEST, out.hs5g_fraction)
            }
            None => {
                // RTT tests carry only ICMP traffic; the operator decides
                // the technology (often LTE — the paper's AT&T observation
                // in §5.1), so this goes through the normal session.
                let (samples, _cov, hs5g) = measure::measure_rtt(
                    &mut |pt| session.poll(pt, ctx),
                    &mut |_| Some(vctx),
                    t,
                    id,
                    dep.operator,
                    path,
                    false,
                    rng.split(&format!("probe/rtt/{id}")),
                );
                ds.rtt.extend(samples);
                (t + measure::RTT_TEST, hs5g)
            }
        };
        ds.runs.push(TestRun {
            id,
            kind,
            operator: dep.operator,
            start: t,
            end,
            miles: 0.0,
            tz,
            server: path.kind,
            hs5g_fraction: hs5g,
            handovers: 0,
            driving: false,
            partial: false,
        });
        t = end + SimDuration::from_secs(5);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use wheels_ran::operator::Operator;
    use wheels_sim_core::stats::Cdf;

    struct Fix {
        route: Route,
        deps: Vec<Deployment>,
        fleet: ServerFleet,
    }

    fn fix() -> &'static Fix {
        static F: OnceLock<Fix> = OnceLock::new();
        F.get_or_init(|| {
            let route = Route::standard();
            let rng = SimRng::seed(42);
            let deps = Operator::ALL
                .into_iter()
                .map(|op| Deployment::generate(&route, op, &mut rng.split(op.label())))
                .collect();
            Fix {
                route,
                deps,
                fleet: ServerFleet::standard(),
            }
        })
    }

    fn run_all_cities(op_idx: usize, seed: u64) -> Dataset {
        let f = fix();
        let mut ds = Dataset::default();
        let mut id = 0;
        let rng = SimRng::seed(seed);
        for (i, (wi, odo)) in f.route.major_cities().into_iter().enumerate() {
            let _ = wi;
            run_city(
                &f.deps[op_idx],
                &f.route,
                &f.fleet,
                odo,
                SimTime::from_hours(10 + i as u64 * 24),
                &mut id,
                &mut rng.split(&format!("city{i}")),
                &mut ds,
            );
        }
        ds
    }

    #[test]
    fn verizon_finds_mmwave_in_most_cities() {
        let f = fix();
        let mut mmwave = 0;
        for (_, odo) in f.route.major_cities() {
            if let Some(c) = find_target(&f.deps[0], odo) {
                if c.tech == Technology::Nr5gMmWave {
                    mmwave += 1;
                }
            }
        }
        assert!(mmwave >= 6, "mmWave cities {mmwave}");
    }

    #[test]
    fn static_dl_far_exceeds_typical_driving() {
        // Fig. 3a vs 3b: static city 5G downlink medians are hundreds of
        // Mbps to Gbps.
        let ds = run_all_cities(0, 1);
        let dl: Vec<f64> = ds
            .tput_where(
                Some(Operator::Verizon),
                Some(Direction::Downlink),
                Some(false),
            )
            .map(|s| s.mbps)
            .collect();
        assert!(dl.len() > 100, "samples {}", dl.len());
        let med = Cdf::from_samples(dl).median().unwrap();
        assert!(med > 200.0, "static DL median {med}");
    }

    #[test]
    fn static_ul_order_of_magnitude_below_dl() {
        let ds = run_all_cities(0, 2);
        let med = |d: Direction| {
            Cdf::from_samples(
                ds.tput_where(Some(Operator::Verizon), Some(d), Some(false))
                    .map(|s| s.mbps),
            )
            .median()
            .unwrap()
        };
        let dl = med(Direction::Downlink);
        let ul = med(Direction::Uplink);
        assert!(dl / ul > 3.0, "dl {dl} ul {ul}");
    }

    #[test]
    fn static_runs_are_marked_non_driving() {
        let ds = run_all_cities(1, 3);
        assert!(!ds.runs.is_empty());
        for r in &ds.runs {
            assert!(!r.driving);
            assert_eq!(r.miles, 0.0);
        }
        assert!(ds.tput.iter().all(|s| !s.driving));
    }

    #[test]
    fn skips_cities_without_high_speed_5g() {
        // AT&T (index 2) should skip at least one city (3% high-speed 5G).
        let f = fix();
        let mut found = 0;
        for (_, odo) in f.route.major_cities() {
            if find_target(&f.deps[2], odo).is_some() {
                found += 1;
            }
        }
        assert!(found < 10, "AT&T found targets in all {found} cities");
        assert!(found >= 1, "AT&T should find at least one");
    }

    #[test]
    fn static_rtt_samples_recorded() {
        let ds = run_all_cities(0, 4);
        let rtts: Vec<f64> = ds.rtt_where(Some(Operator::Verizon), Some(false)).collect();
        assert!(rtts.len() > 200, "rtt samples {}", rtts.len());
        let med = Cdf::from_samples(rtts).median().unwrap();
        assert!((5.0..120.0).contains(&med), "median {med}");
    }
}
