//! The consolidated database.
//!
//! Everything the analysis needs, in flat typed tables. This is the
//! synthetic equivalent of the paper's "consolidated database, which
//! includes both the XCAL and the app layer data" (§3).

use crate::disrupt::FaultKind;
use serde::{Deserialize, Serialize};
use wheels_apps::arcav::OffloadStats;
use wheels_apps::gaming::GamingStats;
use wheels_apps::video::VideoStats;
use wheels_geo::route::ZoneClass;
use wheels_radio::tech::{Direction, Technology};
use wheels_ran::operator::Operator;
use wheels_ran::session::HandoverEvent;
use wheels_sim_core::time::{SimTime, Timezone};
use wheels_transport::servers::ServerKind;

/// The kind of test a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestKind {
    /// Backlogged TCP downlink (nuttcp).
    DownlinkTput,
    /// Backlogged TCP uplink (nuttcp).
    UplinkTput,
    /// ICMP RTT test.
    Rtt,
    /// AR offload run.
    Ar,
    /// CAV offload run.
    Cav,
    /// 360° video session.
    Video,
    /// Cloud gaming session.
    Gaming,
}

impl TestKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TestKind::DownlinkTput => "tput-dl",
            TestKind::UplinkTput => "tput-ul",
            TestKind::Rtt => "rtt",
            TestKind::Ar => "ar",
            TestKind::Cav => "cav",
            TestKind::Video => "video",
            TestKind::Gaming => "gaming",
        }
    }
}

/// One 500 ms application-layer throughput sample joined with its KPIs —
/// the row type behind Figs. 3–10 and Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TputSample {
    /// Sample time (start of the 500 ms bin).
    pub t: SimTime,
    /// Test id this sample belongs to.
    pub test_id: u32,
    /// Operator.
    pub operator: Operator,
    /// Traffic direction.
    pub direction: Direction,
    /// Application-layer goodput (Mbps) over the bin.
    pub mbps: f64,
    /// Serving technology during the bin.
    pub tech: Technology,
    /// Serving cell id.
    pub cell: u32,
    /// Vehicle speed (mph).
    pub speed_mph: f64,
    /// Road zone.
    pub zone: ZoneClass,
    /// Timezone.
    pub tz: Timezone,
    /// Edge or cloud server.
    pub server: ServerKind,
    /// Primary-cell RSRP (dBm).
    pub rsrp_dbm: f64,
    /// Primary-cell MCS.
    pub mcs: u8,
    /// Primary-cell BLER.
    pub bler: f64,
    /// Component carriers.
    pub carriers: u8,
    /// Handovers that *started* during this bin.
    pub handovers_in_bin: u8,
    /// True while driving (false = static baseline).
    pub driving: bool,
}

/// One RTT sample (Figs. 3, 4, 8, 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttSample {
    /// Ping send time.
    pub t: SimTime,
    /// Test id.
    pub test_id: u32,
    /// Operator.
    pub operator: Operator,
    /// Measured RTT, `None` for lost pings.
    pub rtt_ms: Option<f64>,
    /// Serving technology at send time.
    pub tech: Technology,
    /// Vehicle speed (mph).
    pub speed_mph: f64,
    /// Timezone.
    pub tz: Timezone,
    /// Edge or cloud server.
    pub server: ServerKind,
    /// True while driving.
    pub driving: bool,
}

/// One coverage sample: 500 ms of connectivity weighted by miles driven —
/// the row type behind Figs. 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageSample {
    /// Sample time.
    pub t: SimTime,
    /// Operator.
    pub operator: Operator,
    /// Serving technology, `None` when out of service.
    pub tech: Option<Technology>,
    /// Direction of the test backlogging the network at this moment
    /// (`None` for ICMP-only periods).
    pub direction: Option<Direction>,
    /// Miles covered during this sample.
    pub miles: f64,
    /// Speed (mph).
    pub speed_mph: f64,
    /// Timezone.
    pub tz: Timezone,
    /// Zone class.
    pub zone: ZoneClass,
}

/// Per-test aggregate (Figs. 9–11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestRun {
    /// Unique test id (joins samples).
    pub id: u32,
    /// Test kind.
    pub kind: TestKind,
    /// Operator.
    pub operator: Operator,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Miles driven during the test.
    pub miles: f64,
    /// Timezone at start.
    pub tz: Timezone,
    /// Edge or cloud.
    pub server: ServerKind,
    /// Fraction of test time on high-speed 5G.
    pub hs5g_fraction: f64,
    /// Handovers during the test.
    pub handovers: u32,
    /// True while driving.
    pub driving: bool,
    /// True when the test was truncated by a disruption and salvaged:
    /// the run keeps its completed 500 ms samples but covers less than
    /// the scheduled window. Always `false` with faults off.
    pub partial: bool,
}

/// A handover event tagged with its operator and test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaggedHandover {
    /// The event.
    pub event: HandoverEvent,
    /// Operator.
    pub operator: Operator,
    /// Test during which it happened (if any).
    pub test_id: Option<u32>,
    /// Direction of the backlogged traffic at the time (if any).
    pub direction: Option<Direction>,
}

/// One application run's metrics (§7 figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Test id.
    pub id: u32,
    /// Operator.
    pub operator: Operator,
    /// Which app.
    pub kind: TestKind,
    /// Edge or cloud server.
    pub server: ServerKind,
    /// True while driving.
    pub driving: bool,
    /// AR/CAV runs (with/without compression pairs are separate runs).
    pub offload: Option<OffloadStats>,
    /// Video session stats.
    pub video: Option<VideoStats>,
    /// Gaming session stats.
    pub gaming: Option<GamingStats>,
}

/// Outcome of one scheduled drive test, for the data-quality ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestStatus {
    /// Every planned sample was recorded.
    Completed,
    /// The test ran but lost samples to a disruption (salvaged).
    Partial,
    /// The test never produced data (retries exhausted or window gone).
    Lost,
}

impl TestStatus {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TestStatus::Completed => "completed",
            TestStatus::Partial => "partial",
            TestStatus::Lost => "lost",
        }
    }
}

/// One row of the disruption ledger: what a scheduled drive test was
/// supposed to record vs what survived. With faults off, every audit is
/// `Completed` with one attempt and zero loss; the quality report
/// aggregates these per operator × day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestAudit {
    /// Test id (allocated even when the test is lost, so the slot plan
    /// stays identical with faults on or off).
    pub test_id: u32,
    /// Operator.
    pub operator: Operator,
    /// Test kind.
    pub kind: TestKind,
    /// 0-based trip day the test was scheduled on.
    pub day: u8,
    /// Originally scheduled start (before any retry backoff).
    pub scheduled: SimTime,
    /// Outcome.
    pub status: TestStatus,
    /// Attempts made (1 = no retry).
    pub attempts: u32,
    /// First disruption that interfered, if any.
    pub fault: Option<FaultKind>,
    /// Samples the fault-free schedule would have recorded in this slot
    /// (a pure function of trace and config, so it is identical with
    /// faults on or off).
    pub planned_samples: u32,
    /// Samples actually recorded.
    pub recorded_samples: u32,
    /// `planned_samples - recorded_samples`.
    pub lost_samples: u32,
}

/// The full consolidated dataset of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// 500 ms throughput samples.
    pub tput: Vec<TputSample>,
    /// RTT samples.
    pub rtt: Vec<RttSample>,
    /// Coverage samples (active tests).
    pub coverage: Vec<CoverageSample>,
    /// Per-test aggregates.
    pub runs: Vec<TestRun>,
    /// All handovers observed during tests.
    pub handovers: Vec<TaggedHandover>,
    /// Application runs.
    pub apps: Vec<AppRun>,
    /// Disruption ledger: one row per scheduled drive test.
    pub audits: Vec<TestAudit>,
    /// Total bytes received over cellular (Table 1).
    pub rx_bytes: f64,
    /// Total bytes transmitted over cellular (Table 1).
    pub tx_bytes: f64,
    /// Synthetic XCAL log volume in bytes (Table 1).
    pub log_bytes: f64,
    /// Per-operator unique cells connected (Table 1).
    pub unique_cells: Vec<(Operator, usize)>,
    /// Per-operator cumulative experiment runtime in minutes (Table 1).
    pub runtime_min: Vec<(Operator, f64)>,
}

/// Everything one completed campaign shard contributes to the merged
/// dataset — the payload of one checkpoint-journal frame. The served-cell
/// set travels as a sorted `Vec` (the canonical order of the engine's
/// `BTreeSet`) so the frame encoding is order-stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRecords {
    /// Operator the shard simulated.
    pub operator: Operator,
    /// The shard's slice of the dataset (tables un-normalized, incl. its
    /// `TestAudit` ledger rows).
    pub dataset: Dataset,
    /// Cells served during the shard, ascending.
    pub cells: Vec<wheels_ran::cells::CellId>,
}

impl Dataset {
    /// Merge another dataset (used to combine per-operator shards).
    pub fn merge(&mut self, other: Dataset) {
        self.tput.extend(other.tput);
        self.rtt.extend(other.rtt);
        self.coverage.extend(other.coverage);
        self.runs.extend(other.runs);
        self.handovers.extend(other.handovers);
        self.apps.extend(other.apps);
        self.audits.extend(other.audits);
        self.rx_bytes += other.rx_bytes;
        self.tx_bytes += other.tx_bytes;
        self.log_bytes += other.log_bytes;
        self.unique_cells.extend(other.unique_cells);
        self.runtime_min.extend(other.runtime_min);
    }

    /// Bring every table into a canonical order so the dataset is
    /// independent of the order its shards were merged in. All sorts are
    /// stable and keyed on values that are themselves deterministic
    /// (times, test ids, operators).
    pub fn normalize(&mut self) {
        self.tput.sort_by_key(|s| (s.t.as_millis(), s.test_id));
        self.rtt.sort_by_key(|s| (s.t.as_millis(), s.test_id));
        self.coverage
            .sort_by_key(|s| (s.t.as_millis(), s.operator.index()));
        self.runs.sort_by_key(|r| (r.start.as_millis(), r.id));
        self.handovers.sort_by_key(|h| {
            (
                h.event.start.as_millis(),
                h.operator.index(),
                h.event.to_cell,
            )
        });
        self.apps.sort_by_key(|a| a.id);
        self.audits
            .sort_by_key(|a| (a.scheduled.as_millis(), a.test_id));
        self.unique_cells.sort_by_key(|(op, _)| op.index());
        self.runtime_min.sort_by_key(|(op, _)| op.index());
    }

    /// Throughput samples filtered the way most figures need.
    pub fn tput_where(
        &self,
        operator: Option<Operator>,
        direction: Option<Direction>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = &TputSample> {
        self.tput.iter().filter(move |s| {
            operator.is_none_or(|o| s.operator == o)
                && direction.is_none_or(|d| s.direction == d)
                && driving.is_none_or(|dr| s.driving == dr)
        })
    }

    /// Valid (non-lost) RTT values matching the filters.
    pub fn rtt_where(
        &self,
        operator: Option<Operator>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = f64> + '_ {
        self.rtt.iter().filter_map(move |s| {
            if operator.is_none_or(|o| s.operator == o) && driving.is_none_or(|dr| s.driving == dr)
            {
                s.rtt_ms
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Dataset {
            rx_bytes: 10.0,
            ..Default::default()
        };
        let b = Dataset {
            rx_bytes: 5.0,
            unique_cells: vec![(Operator::Att, 3)],
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.rx_bytes, 15.0);
        assert_eq!(a.unique_cells.len(), 1);
    }

    #[test]
    fn filters_work() {
        let mut d = Dataset::default();
        let mk = |op, dir, driving, mbps| TputSample {
            t: SimTime::EPOCH,
            test_id: 0,
            operator: op,
            direction: dir,
            mbps,
            tech: Technology::Lte,
            cell: 1,
            speed_mph: 60.0,
            zone: ZoneClass::Highway,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            rsrp_dbm: -100.0,
            mcs: 10,
            bler: 0.1,
            carriers: 1,
            handovers_in_bin: 0,
            driving,
        };
        d.tput
            .push(mk(Operator::Verizon, Direction::Downlink, true, 50.0));
        d.tput
            .push(mk(Operator::Verizon, Direction::Uplink, true, 5.0));
        d.tput
            .push(mk(Operator::Att, Direction::Downlink, false, 700.0));
        assert_eq!(d.tput_where(Some(Operator::Verizon), None, None).count(), 2);
        assert_eq!(
            d.tput_where(None, Some(Direction::Downlink), Some(true))
                .count(),
            1
        );
        d.rtt.push(RttSample {
            t: SimTime::EPOCH,
            test_id: 1,
            operator: Operator::Verizon,
            rtt_ms: Some(64.0),
            tech: Technology::LteA,
            speed_mph: 60.0,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            driving: true,
        });
        d.rtt.push(RttSample {
            t: SimTime::EPOCH,
            test_id: 1,
            operator: Operator::Verizon,
            rtt_ms: None,
            tech: Technology::LteA,
            speed_mph: 60.0,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            driving: true,
        });
        let vals: Vec<f64> = d.rtt_where(Some(Operator::Verizon), Some(true)).collect();
        assert_eq!(vals, vec![64.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Dataset::default();
        let s = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&s).unwrap();
        assert_eq!(back.tput.len(), 0);
    }
}
