//! The consolidated database.
//!
//! Everything the analysis needs, in flat typed tables. This is the
//! synthetic equivalent of the paper's "consolidated database, which
//! includes both the XCAL and the app layer data" (§3).

use crate::disrupt::FaultKind;
use serde::{Deserialize, Serialize};
use wheels_apps::arcav::OffloadStats;
use wheels_apps::gaming::GamingStats;
use wheels_apps::video::VideoStats;
use wheels_geo::route::ZoneClass;
use wheels_radio::tech::{Direction, Technology};
use wheels_ran::operator::Operator;
use wheels_ran::session::HandoverEvent;
use wheels_sim_core::time::{SimTime, Timezone};
use wheels_transport::servers::ServerKind;

/// The kind of test a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestKind {
    /// Backlogged TCP downlink (nuttcp).
    DownlinkTput,
    /// Backlogged TCP uplink (nuttcp).
    UplinkTput,
    /// ICMP RTT test.
    Rtt,
    /// AR offload run.
    Ar,
    /// CAV offload run.
    Cav,
    /// 360° video session.
    Video,
    /// Cloud gaming session.
    Gaming,
}

impl TestKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TestKind::DownlinkTput => "tput-dl",
            TestKind::UplinkTput => "tput-ul",
            TestKind::Rtt => "rtt",
            TestKind::Ar => "ar",
            TestKind::Cav => "cav",
            TestKind::Video => "video",
            TestKind::Gaming => "gaming",
        }
    }
}

/// One 500 ms application-layer throughput sample joined with its KPIs —
/// the row type behind Figs. 3–10 and Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TputSample {
    /// Sample time (start of the 500 ms bin).
    pub t: SimTime,
    /// Test id this sample belongs to.
    pub test_id: u32,
    /// Operator.
    pub operator: Operator,
    /// Traffic direction.
    pub direction: Direction,
    /// Application-layer goodput (Mbps) over the bin.
    pub mbps: f64,
    /// Serving technology during the bin.
    pub tech: Technology,
    /// Serving cell id.
    pub cell: u32,
    /// Vehicle speed (mph).
    pub speed_mph: f64,
    /// Road zone.
    pub zone: ZoneClass,
    /// Timezone.
    pub tz: Timezone,
    /// Edge or cloud server.
    pub server: ServerKind,
    /// Primary-cell RSRP (dBm).
    pub rsrp_dbm: f64,
    /// Primary-cell MCS.
    pub mcs: u8,
    /// Primary-cell BLER.
    pub bler: f64,
    /// Component carriers.
    pub carriers: u8,
    /// Handovers that *started* during this bin.
    pub handovers_in_bin: u8,
    /// True while driving (false = static baseline).
    pub driving: bool,
}

/// One RTT sample (Figs. 3, 4, 8, 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttSample {
    /// Ping send time.
    pub t: SimTime,
    /// Test id.
    pub test_id: u32,
    /// Operator.
    pub operator: Operator,
    /// Measured RTT, `None` for lost pings.
    pub rtt_ms: Option<f64>,
    /// Serving technology at send time.
    pub tech: Technology,
    /// Vehicle speed (mph).
    pub speed_mph: f64,
    /// Timezone.
    pub tz: Timezone,
    /// Edge or cloud server.
    pub server: ServerKind,
    /// True while driving.
    pub driving: bool,
}

/// One coverage sample: 500 ms of connectivity weighted by miles driven —
/// the row type behind Figs. 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageSample {
    /// Sample time.
    pub t: SimTime,
    /// Operator.
    pub operator: Operator,
    /// Serving technology, `None` when out of service.
    pub tech: Option<Technology>,
    /// Direction of the test backlogging the network at this moment
    /// (`None` for ICMP-only periods).
    pub direction: Option<Direction>,
    /// Miles covered during this sample.
    pub miles: f64,
    /// Speed (mph).
    pub speed_mph: f64,
    /// Timezone.
    pub tz: Timezone,
    /// Zone class.
    pub zone: ZoneClass,
}

/// Per-test aggregate (Figs. 9–11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestRun {
    /// Unique test id (joins samples).
    pub id: u32,
    /// Test kind.
    pub kind: TestKind,
    /// Operator.
    pub operator: Operator,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Miles driven during the test.
    pub miles: f64,
    /// Timezone at start.
    pub tz: Timezone,
    /// Edge or cloud.
    pub server: ServerKind,
    /// Fraction of test time on high-speed 5G.
    pub hs5g_fraction: f64,
    /// Handovers during the test.
    pub handovers: u32,
    /// True while driving.
    pub driving: bool,
    /// True when the test was truncated by a disruption and salvaged:
    /// the run keeps its completed 500 ms samples but covers less than
    /// the scheduled window. Always `false` with faults off.
    pub partial: bool,
}

/// A handover event tagged with its operator and test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaggedHandover {
    /// The event.
    pub event: HandoverEvent,
    /// Operator.
    pub operator: Operator,
    /// Test during which it happened (if any).
    pub test_id: Option<u32>,
    /// Direction of the backlogged traffic at the time (if any).
    pub direction: Option<Direction>,
}

/// One application run's metrics (§7 figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Test id.
    pub id: u32,
    /// Operator.
    pub operator: Operator,
    /// Which app.
    pub kind: TestKind,
    /// Edge or cloud server.
    pub server: ServerKind,
    /// True while driving.
    pub driving: bool,
    /// AR/CAV runs (with/without compression pairs are separate runs).
    pub offload: Option<OffloadStats>,
    /// Video session stats.
    pub video: Option<VideoStats>,
    /// Gaming session stats.
    pub gaming: Option<GamingStats>,
}

/// Outcome of one scheduled drive test, for the data-quality ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestStatus {
    /// Every planned sample was recorded.
    Completed,
    /// The test ran but lost samples to a disruption (salvaged).
    Partial,
    /// The test never produced data (retries exhausted or window gone).
    Lost,
}

impl TestStatus {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TestStatus::Completed => "completed",
            TestStatus::Partial => "partial",
            TestStatus::Lost => "lost",
        }
    }
}

/// One row of the disruption ledger: what a scheduled drive test was
/// supposed to record vs what survived. With faults off, every audit is
/// `Completed` with one attempt and zero loss; the quality report
/// aggregates these per operator × day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestAudit {
    /// Test id (allocated even when the test is lost, so the slot plan
    /// stays identical with faults on or off).
    pub test_id: u32,
    /// Operator.
    pub operator: Operator,
    /// Test kind.
    pub kind: TestKind,
    /// 0-based trip day the test was scheduled on.
    pub day: u8,
    /// Originally scheduled start (before any retry backoff).
    pub scheduled: SimTime,
    /// Outcome.
    pub status: TestStatus,
    /// Attempts made (1 = no retry).
    pub attempts: u32,
    /// First disruption that interfered, if any.
    pub fault: Option<FaultKind>,
    /// Samples the fault-free schedule would have recorded in this slot
    /// (a pure function of trace and config, so it is identical with
    /// faults on or off).
    pub planned_samples: u32,
    /// Samples actually recorded.
    pub recorded_samples: u32,
    /// `planned_samples - recorded_samples`.
    pub lost_samples: u32,
}

/// The full consolidated dataset of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// 500 ms throughput samples.
    pub tput: Vec<TputSample>,
    /// RTT samples.
    pub rtt: Vec<RttSample>,
    /// Coverage samples (active tests).
    pub coverage: Vec<CoverageSample>,
    /// Per-test aggregates.
    pub runs: Vec<TestRun>,
    /// All handovers observed during tests.
    pub handovers: Vec<TaggedHandover>,
    /// Application runs.
    pub apps: Vec<AppRun>,
    /// Disruption ledger: one row per scheduled drive test.
    pub audits: Vec<TestAudit>,
    /// Total bytes received over cellular (Table 1).
    pub rx_bytes: f64,
    /// Total bytes transmitted over cellular (Table 1).
    pub tx_bytes: f64,
    /// Synthetic XCAL log volume in bytes (Table 1).
    pub log_bytes: f64,
    /// Per-operator unique cells connected (Table 1).
    pub unique_cells: Vec<(Operator, usize)>,
    /// Per-operator cumulative experiment runtime in minutes (Table 1).
    pub runtime_min: Vec<(Operator, f64)>,
}

/// Everything one completed campaign shard contributes to the merged
/// dataset — the payload of one checkpoint-journal frame. The served-cell
/// set travels as a sorted `Vec` (the canonical order of the engine's
/// `BTreeSet`) so the frame encoding is order-stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRecords {
    /// Operator the shard simulated.
    pub operator: Operator,
    /// The shard's slice of the dataset (tables un-normalized, incl. its
    /// `TestAudit` ledger rows).
    pub dataset: Dataset,
    /// Cells served during the shard, ascending.
    pub cells: Vec<wheels_ran::cells::CellId>,
}

/// Merge a sorted run `src` into the sorted `dst`, keyed by `key`, with
/// `dst`'s elements winning ties. This is exactly the permutation a
/// stable sort of `dst ++ src` would produce, so repeatedly merging
/// shard runs in plan order reproduces the old concatenate-then-
/// `normalize` bytes without the terminal O(n log n) sort.
pub(crate) fn merge_sorted_by_key<T, K: Ord>(dst: &mut Vec<T>, src: Vec<T>, key: impl Fn(&T) -> K) {
    if src.is_empty() {
        return;
    }
    // Fast path: the incoming run sorts entirely after the existing one
    // (common when shards cover disjoint ascending time windows).
    if dst.last().is_none_or(|d| key(d) <= key(&src[0])) {
        dst.extend(src);
        return;
    }
    let old = std::mem::take(dst);
    dst.reserve(old.len() + src.len());
    let (mut a, mut b) = (old.into_iter(), src.into_iter());
    let (mut x, mut y) = (a.next(), b.next());
    while let (Some(xv), Some(yv)) = (x.as_ref(), y.as_ref()) {
        if key(xv) <= key(yv) {
            dst.extend(x.take());
            x = a.next();
        } else {
            dst.extend(y.take());
            y = b.next();
        }
    }
    dst.extend(x);
    dst.extend(a);
    dst.extend(y);
    dst.extend(b);
}

/// True when `v` is sorted (non-strictly) by `key`.
fn sorted_by_key<T, K: Ord>(v: &[T], key: impl Fn(&T) -> K) -> bool {
    v.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

impl Dataset {
    /// Merge another dataset (used to combine per-operator shards).
    pub fn merge(&mut self, other: Dataset) {
        self.tput.extend(other.tput);
        self.rtt.extend(other.rtt);
        self.coverage.extend(other.coverage);
        self.runs.extend(other.runs);
        self.handovers.extend(other.handovers);
        self.apps.extend(other.apps);
        self.audits.extend(other.audits);
        self.rx_bytes += other.rx_bytes;
        self.tx_bytes += other.tx_bytes;
        self.log_bytes += other.log_bytes;
        self.unique_cells.extend(other.unique_cells);
        self.runtime_min.extend(other.runtime_min);
    }

    /// Bring every table into a canonical order so the dataset is
    /// independent of the order its shards were merged in. All sorts are
    /// stable and keyed on values that are themselves deterministic
    /// (times, test ids, operators).
    pub fn normalize(&mut self) {
        self.tput.sort_by_key(|s| (s.t.as_millis(), s.test_id));
        self.rtt.sort_by_key(|s| (s.t.as_millis(), s.test_id));
        self.coverage
            .sort_by_key(|s| (s.t.as_millis(), s.operator.index()));
        self.runs.sort_by_key(|r| (r.start.as_millis(), r.id));
        self.handovers.sort_by_key(|h| {
            (
                h.event.start.as_millis(),
                h.operator.index(),
                h.event.to_cell,
            )
        });
        self.apps.sort_by_key(|a| a.id);
        self.audits
            .sort_by_key(|a| (a.scheduled.as_millis(), a.test_id));
        self.unique_cells.sort_by_key(|(op, _)| op.index());
        self.runtime_min.sort_by_key(|(op, _)| op.index());
    }

    /// Merge another **normalized** dataset into this **normalized**
    /// one while keeping every table in canonical order. Equivalent to
    /// [`Dataset::merge`] followed by [`Dataset::normalize`] — the run
    /// merge keeps `self`'s rows first on ties, exactly like the stable
    /// sort — but costs one linear pass per table instead of a full
    /// re-sort, which is what lets the campaign engine drain shards
    /// incrementally instead of sorting at the end.
    pub fn merge_normalized(&mut self, other: Dataset) {
        merge_sorted_by_key(&mut self.tput, other.tput, |s| (s.t.as_millis(), s.test_id));
        merge_sorted_by_key(&mut self.rtt, other.rtt, |s| (s.t.as_millis(), s.test_id));
        merge_sorted_by_key(&mut self.coverage, other.coverage, |s| {
            (s.t.as_millis(), s.operator.index())
        });
        merge_sorted_by_key(&mut self.runs, other.runs, |r| (r.start.as_millis(), r.id));
        merge_sorted_by_key(&mut self.handovers, other.handovers, |h| {
            (
                h.event.start.as_millis(),
                h.operator.index(),
                h.event.to_cell,
            )
        });
        merge_sorted_by_key(&mut self.apps, other.apps, |a| a.id);
        merge_sorted_by_key(&mut self.audits, other.audits, |a| {
            (a.scheduled.as_millis(), a.test_id)
        });
        self.rx_bytes += other.rx_bytes;
        self.tx_bytes += other.tx_bytes;
        self.log_bytes += other.log_bytes;
        merge_sorted_by_key(&mut self.unique_cells, other.unique_cells, |(op, _)| {
            op.index()
        });
        merge_sorted_by_key(&mut self.runtime_min, other.runtime_min, |(op, _)| {
            op.index()
        });
    }

    /// True when every table is already in [`Dataset::normalize`]'s
    /// canonical order (so `normalize` would be a no-op permutation).
    pub fn is_normalized(&self) -> bool {
        sorted_by_key(&self.tput, |s| (s.t.as_millis(), s.test_id))
            && sorted_by_key(&self.rtt, |s| (s.t.as_millis(), s.test_id))
            && sorted_by_key(&self.coverage, |s| (s.t.as_millis(), s.operator.index()))
            && sorted_by_key(&self.runs, |r| (r.start.as_millis(), r.id))
            && sorted_by_key(&self.handovers, |h| {
                (
                    h.event.start.as_millis(),
                    h.operator.index(),
                    h.event.to_cell,
                )
            })
            && sorted_by_key(&self.apps, |a| a.id)
            && sorted_by_key(&self.audits, |a| (a.scheduled.as_millis(), a.test_id))
            && sorted_by_key(&self.unique_cells, |(op, _)| op.index())
            && sorted_by_key(&self.runtime_min, |(op, _)| op.index())
    }

    /// Throughput samples filtered the way most figures need.
    pub fn tput_where(
        &self,
        operator: Option<Operator>,
        direction: Option<Direction>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = &TputSample> {
        self.tput.iter().filter(move |s| {
            operator.is_none_or(|o| s.operator == o)
                && direction.is_none_or(|d| s.direction == d)
                && driving.is_none_or(|dr| s.driving == dr)
        })
    }

    /// Valid (non-lost) RTT values matching the filters.
    pub fn rtt_where(
        &self,
        operator: Option<Operator>,
        driving: Option<bool>,
    ) -> impl Iterator<Item = f64> + '_ {
        self.rtt.iter().filter_map(move |s| {
            if operator.is_none_or(|o| s.operator == o) && driving.is_none_or(|dr| s.driving == dr)
            {
                s.rtt_ms
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Dataset {
            rx_bytes: 10.0,
            ..Default::default()
        };
        let b = Dataset {
            rx_bytes: 5.0,
            unique_cells: vec![(Operator::Att, 3)],
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.rx_bytes, 15.0);
        assert_eq!(a.unique_cells.len(), 1);
    }

    #[test]
    fn filters_work() {
        let mut d = Dataset::default();
        let mk = |op, dir, driving, mbps| TputSample {
            t: SimTime::EPOCH,
            test_id: 0,
            operator: op,
            direction: dir,
            mbps,
            tech: Technology::Lte,
            cell: 1,
            speed_mph: 60.0,
            zone: ZoneClass::Highway,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            rsrp_dbm: -100.0,
            mcs: 10,
            bler: 0.1,
            carriers: 1,
            handovers_in_bin: 0,
            driving,
        };
        d.tput
            .push(mk(Operator::Verizon, Direction::Downlink, true, 50.0));
        d.tput
            .push(mk(Operator::Verizon, Direction::Uplink, true, 5.0));
        d.tput
            .push(mk(Operator::Att, Direction::Downlink, false, 700.0));
        assert_eq!(d.tput_where(Some(Operator::Verizon), None, None).count(), 2);
        assert_eq!(
            d.tput_where(None, Some(Direction::Downlink), Some(true))
                .count(),
            1
        );
        d.rtt.push(RttSample {
            t: SimTime::EPOCH,
            test_id: 1,
            operator: Operator::Verizon,
            rtt_ms: Some(64.0),
            tech: Technology::LteA,
            speed_mph: 60.0,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            driving: true,
        });
        d.rtt.push(RttSample {
            t: SimTime::EPOCH,
            test_id: 1,
            operator: Operator::Verizon,
            rtt_ms: None,
            tech: Technology::LteA,
            speed_mph: 60.0,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            driving: true,
        });
        let vals: Vec<f64> = d.rtt_where(Some(Operator::Verizon), Some(true)).collect();
        assert_eq!(vals, vec![64.0]);
    }

    #[test]
    fn merge_normalized_matches_merge_then_normalize() {
        let mk = |t_ms: u64, id: u32| RttSample {
            t: SimTime(t_ms),
            test_id: id,
            operator: Operator::Verizon,
            rtt_ms: Some(40.0),
            tech: Technology::Lte,
            speed_mph: 60.0,
            tz: Timezone::Central,
            server: ServerKind::Cloud,
            driving: true,
        };
        let mut a = Dataset {
            rtt: vec![mk(0, 1), mk(500, 1), mk(2_000, 7)],
            rx_bytes: 3.0,
            ..Default::default()
        };
        let b = Dataset {
            rtt: vec![mk(500, 1), mk(500, 2), mk(9_000, 3)],
            rx_bytes: 4.0,
            ..Default::default()
        };
        assert!(a.is_normalized() && b.is_normalized());
        let mut plain = a.clone();
        plain.merge(b.clone());
        plain.normalize();
        a.merge_normalized(b);
        assert_eq!(a, plain);
        assert!(a.is_normalized());
        assert_eq!(a.rx_bytes, 7.0);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Dataset::default();
        let s = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&s).unwrap();
        assert_eq!(back.tput.len(), 0);
    }
}
