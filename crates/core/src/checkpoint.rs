//! Crash-safe campaign checkpointing — the platform-level half of
//! challenge \[C2\].
//!
//! The paper's campaign is a multi-day drive; a mid-run death of the
//! collection host must not cost the miles already driven. This module
//! persists the segment-parallel engine's progress as an **append-only
//! shard journal**: as each (operator × trace-day segment) shard
//! completes, its records ([`ShardRecords`]: the shard dataset, the
//! `TestAudit` ledger rows inside it, and the shard's served-cell set)
//! are appended as one length-prefixed, checksummed frame. A run killed
//! at *any byte* can be restarted with the same configuration: completed
//! shards replay from the journal, the torn or corrupt tail frame (if
//! the kill landed mid-append) is detected and truncated away, and only
//! the missing shards are re-simulated — the merged result is
//! bit-identical to an uninterrupted run (`tests/crash_resume.rs`).
//!
//! # Journal format
//!
//! ```text
//! "WCJ1"                                     4-byte magic
//! frame        header: JSON Fingerprint      run identity (see below)
//! frame*       one per completed shard: JSON (job index, ShardRecords)
//!
//! frame := len: u32 LE | fnv1a64(payload): u64 LE | payload bytes
//! ```
//!
//! The journal is *created* via temp-file + atomic rename (a kill during
//! creation leaves either no journal or a complete header, never a
//! half-written one); shard frames are then appended sequentially and
//! synced, so a kill mid-append leaves at most one torn tail frame. On
//! resume, the first frame whose length or checksum does not hold marks
//! the torn tail: it and everything after it are truncated away. A
//! checksum can only vouch for bytes that were fully written, so
//! anything beyond the first bad frame is unreliable by construction.
//!
//! # Fingerprint rule
//!
//! Frames are only as trustworthy as the run that wrote them. The header
//! records a [`Fingerprint`] of everything the shard plan and shard
//! contents depend on — seed, scale knobs (cycles, stride, apps, static,
//! sub-day splits), the full [`FaultConfig`], and the derived plan shape
//! (segment and job counts). `threads` is deliberately absent: the
//! engine guarantees thread-count invariance, so a journal written at
//! `--threads 1` may be resumed at `--threads 8`. Any other difference
//! is refused with a field-by-field diagnostic — a journal is never
//! silently merged into a run it does not belong to.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::disrupt::FaultConfig;
use crate::records::ShardRecords;

/// File name of the shard journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.wcj";

/// Journal magic + format version.
const MAGIC: &[u8; 4] = b"WCJ1";

/// Bytes of frame framing ahead of the payload (u32 length + u64 checksum).
const FRAME_HEADER: usize = 12;

/// Everything a checkpointed run's output depends on, minus the worker
/// count. Two runs with equal fingerprints execute the same shard plan
/// and produce the same shard records, so their journal frames are
/// interchangeable; anything else must be refused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Master seed.
    pub seed: u64,
    /// Cycle cap (`CampaignConfig::max_cycles`).
    pub max_cycles: Option<usize>,
    /// App tests included in each cycle.
    pub include_apps: bool,
    /// Static city baselines included.
    pub include_static: bool,
    /// Trace start offset.
    pub start_at_sample: usize,
    /// Idle gap after each cycle (seconds).
    pub cycle_stride_s: u64,
    /// Sub-day shard split.
    pub shard_cycles: Option<usize>,
    /// The full fault-injection configuration (schedules are part of the
    /// shard contents, so any change invalidates recorded frames).
    pub faults: FaultConfig,
    /// Drive segments per operator in the shard plan.
    pub segments: usize,
    /// Total jobs in the shard plan (all operators).
    pub jobs: usize,
}

impl Fingerprint {
    /// Human-readable field-by-field differences, for the refusal
    /// diagnostic (`self` = requested run, `other` = journal header).
    fn diff(&self, other: &Fingerprint) -> Vec<String> {
        let mut out = Vec::new();
        let mut field = |name: &str, want: String, got: String| {
            if want != got {
                out.push(format!("{name}: run has {want}, journal has {got}"));
            }
        };
        field("seed", format!("{}", self.seed), format!("{}", other.seed));
        field(
            "max_cycles",
            format!("{:?}", self.max_cycles),
            format!("{:?}", other.max_cycles),
        );
        field(
            "include_apps",
            format!("{}", self.include_apps),
            format!("{}", other.include_apps),
        );
        field(
            "include_static",
            format!("{}", self.include_static),
            format!("{}", other.include_static),
        );
        field(
            "start_at_sample",
            format!("{}", self.start_at_sample),
            format!("{}", other.start_at_sample),
        );
        field(
            "cycle_stride_s",
            format!("{}", self.cycle_stride_s),
            format!("{}", other.cycle_stride_s),
        );
        field(
            "shard_cycles",
            format!("{:?}", self.shard_cycles),
            format!("{:?}", other.shard_cycles),
        );
        field(
            "faults",
            format!("{:?}", self.faults),
            format!("{:?}", other.faults),
        );
        field(
            "segments",
            format!("{}", self.segments),
            format!("{}", other.segments),
        );
        field("jobs", format!("{}", self.jobs), format!("{}", other.jobs));
        out
    }
}

/// The byte span of one intact shard frame inside the journal file
/// (length prefix and checksum included), as handed out by
/// [`Journal::resume_indexed`] and [`Journal::append`]. A span is a
/// claim that the frame was checksum-verified (resume) or freshly
/// written and synced (append); [`JournalReader::read_frame`]
/// re-verifies the checksum on every read anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSpan {
    /// Offset of the frame's length prefix.
    pub start: u64,
    /// Offset just past the frame payload.
    pub end: u64,
}

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The journal is missing, not a journal, or structurally unusable
    /// (e.g. its identity header is torn — nothing can be verified).
    Invalid(String),
    /// The journal belongs to a different run; the diagnostic lists the
    /// mismatching fingerprint fields.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Invalid(d) => write!(f, "invalid checkpoint journal: {d}"),
            CheckpointError::Mismatch(d) => {
                write!(f, "checkpoint journal belongs to a different run: {d}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit — a small, dependency-free integrity checksum. It only
/// needs to catch torn writes and bit rot, not adversaries. Shared with
/// the WCD1 columnar dataset format (`column::wcd`).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one frame (length prefix + checksum + payload).
fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, CheckpointError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| CheckpointError::Invalid("frame payload exceeds u32 length".to_string()))?;
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// One frame-scan step.
enum Scan<'a> {
    /// A complete, checksum-verified frame; `end` is the offset just
    /// past it.
    Frame { payload: &'a [u8], end: usize },
    /// The bytes at `pos` are not a complete valid frame (torn tail).
    Torn,
    /// Exactly at end of journal.
    End,
}

/// Scan one frame at `pos`.
fn scan_frame(bytes: &[u8], pos: usize) -> Scan<'_> {
    if pos == bytes.len() {
        return Scan::End;
    }
    if bytes.len() - pos < FRAME_HEADER {
        return Scan::Torn;
    }
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(&bytes[pos..pos + 4]);
    let Ok(len) = usize::try_from(u32::from_le_bytes(len4)) else {
        return Scan::Torn;
    };
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&bytes[pos + 4..pos + FRAME_HEADER]);
    let stored = u64::from_le_bytes(sum8);
    let body = pos + FRAME_HEADER;
    if bytes.len() - body < len {
        return Scan::Torn;
    }
    let payload = &bytes[body..body + len];
    if fnv1a64(payload) != stored {
        return Scan::Torn;
    }
    Scan::Frame {
        payload,
        end: body + len,
    }
}

/// Extract the job index from a shard-frame payload without decoding
/// the records: the payload is `serde_json` of `(job, ShardRecords)` —
/// i.e. `[<digits>,{…}]` — so the index is the integer right after the
/// opening bracket. This is what lets a resume build its frame index
/// without materializing a single shard.
fn frame_job(payload: &[u8], pos: usize) -> Result<usize, CheckpointError> {
    let bad = || {
        CheckpointError::Invalid(format!(
            "checksummed frame at byte {pos} does not start with a job index"
        ))
    };
    let s = std::str::from_utf8(payload).map_err(|_| bad())?;
    let body = s.strip_prefix('[').ok_or_else(bad)?;
    let digits = &body[..body.find(',').ok_or_else(bad)?];
    digits.trim().parse().map_err(|_| bad())
}

/// Read `dir`'s journal and verify its magic and identity header
/// against `fp`. Returns the journal path, its raw bytes, and the
/// offset of the first shard frame. Shared by the resume paths and the
/// read-only [`tail`] replay.
fn open_verified(
    dir: &Path,
    fp: &Fingerprint,
) -> Result<(PathBuf, Vec<u8>, usize), CheckpointError> {
    let path = Journal::file_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(CheckpointError::Invalid(format!(
                "no journal at {} — start the run with --checkpoint first",
                path.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::Invalid(format!(
            "{} is not a wheels checkpoint journal (bad magic)",
            path.display()
        )));
    }
    // The header must be intact: a journal whose identity cannot be
    // verified cannot be trusted at all.
    let (header, pos) = match scan_frame(&bytes, MAGIC.len()) {
        Scan::Frame { payload, end } => (payload, end),
        Scan::Torn | Scan::End => {
            return Err(CheckpointError::Invalid(format!(
                "{}: identity header is torn or missing — the journal cannot be verified",
                path.display()
            )));
        }
    };
    let header_str = std::str::from_utf8(header)
        .map_err(|_| CheckpointError::Invalid("identity header is not valid UTF-8".to_string()))?;
    let recorded: Fingerprint = serde_json::from_str(header_str)
        .map_err(|e| CheckpointError::Invalid(format!("unreadable identity header: {e}")))?;
    if recorded != *fp {
        return Err(CheckpointError::Mismatch(fp.diff(&recorded).join("; ")));
    }
    Ok((path, bytes, pos))
}

/// Where a journal tail stopped: the resume cursor a live follower
/// feeds back into [`tail_from`] on its next poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailState {
    /// Byte offset of the first unconsumed frame — the end of the last
    /// intact frame delivered (or, equivalently, the start of the torn
    /// tail if the walk stopped at one). Resuming here makes polling
    /// incremental: nothing before this offset is ever re-read, and a
    /// frame that was torn on one poll and completed by the writer
    /// before the next is delivered exactly once.
    pub next_offset: u64,
    /// Frames delivered to the sink by this walk.
    pub delivered: usize,
}

/// Replay `dir`'s journal frame-by-frame into `sink`, in append order,
/// without ever holding more than one decoded frame in memory. The
/// identity header is verified against `fp` exactly like a resume, but
/// the walk is strictly **read-only**: a torn tail stops the replay
/// (every intact frame before it is delivered) and is *not* truncated
/// away. This is the one incremental pipeline shared by
/// `run_checkpointed --resume`, `DatasetView::from_journal`, and the
/// `wheels-serve` live follower. Returns the [`TailState`] cursor;
/// follow-up polls continue from it via [`tail_from`].
pub fn tail(
    dir: &Path,
    fp: &Fingerprint,
    sink: impl FnMut(usize, ShardRecords) -> Result<(), CheckpointError>,
) -> Result<TailState, CheckpointError> {
    tail_from(dir, fp, None, sink)
}

/// [`tail`] with a resume cursor: `resume_at = Some(offset)` continues
/// a live follow from a prior [`TailState::next_offset`], reading only
/// the bytes at and after the offset — no full-journal re-read per
/// poll, and no header re-verification (the identity was pinned when
/// the follower attached with `resume_at = None`). The offset contract
/// makes the torn-tail race safe by construction: a poll that lands
/// mid-append stops *at* the torn frame's start and returns that
/// offset, so the next poll re-scans the now-completed frame and
/// delivers it exactly once — never skipped, never double-ingested.
/// Offsets must come from a prior tail of the same journal; an
/// arbitrary offset is harmless (a frame checksum cannot hold at a
/// misaligned position, so the walk just reports a torn tail) but
/// useless.
pub fn tail_from(
    dir: &Path,
    fp: &Fingerprint,
    resume_at: Option<u64>,
    mut sink: impl FnMut(usize, ShardRecords) -> Result<(), CheckpointError>,
) -> Result<TailState, CheckpointError> {
    // `bytes[start..]` holds the unconsumed journal suffix; `base` is
    // the absolute file offset of `bytes[0]`.
    let (bytes, mut pos, base) = match resume_at {
        None => {
            let (_path, bytes, pos) = open_verified(dir, fp)?;
            (bytes, pos, 0u64)
        }
        Some(off) => {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = File::open(Journal::file_path(dir))?;
            f.seek(SeekFrom::Start(off))?;
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            (bytes, 0usize, off)
        }
    };
    let mut delivered = 0usize;
    loop {
        match scan_frame(&bytes, pos) {
            Scan::End | Scan::Torn => break,
            Scan::Frame { payload, end } => {
                let text = std::str::from_utf8(payload).map_err(|_| {
                    CheckpointError::Invalid(format!(
                        "checksummed frame at byte {pos} is not valid UTF-8"
                    ))
                })?;
                let (job, records): (usize, ShardRecords) =
                    serde_json::from_str(text).map_err(|e| {
                        CheckpointError::Invalid(format!(
                            "checksummed frame at byte {pos} does not decode: {e}"
                        ))
                    })?;
                sink(job, records)?;
                delivered += 1;
                pos = end;
            }
        }
    }
    let consumed = u64::try_from(pos)
        .map_err(|_| CheckpointError::Invalid("journal length exceeds u64".to_string()))?;
    Ok(TailState {
        next_offset: base + consumed,
        delivered,
    })
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// flush + fsync, then rename over the destination. Readers (and a
/// resumed run) see either the old content or the new, never a torn
/// intermediate. Shared by the journal header and the `dataset` binary's
/// JSON export.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, |w| w.write_all(bytes))
}

/// Streaming variant of [`write_atomic`]: `write` produces the content
/// incrementally into a buffered temp-file writer, so large documents
/// (the WCD1 dataset export) never need a full in-memory image. The
/// same crash guarantee holds — the rename only happens after the
/// writer is drained and fsynced, so readers see old content, new
/// content, or (for a fresh path) nothing, never a torn intermediate.
pub fn write_atomic_with<E: From<io::Error>>(
    path: &Path,
    write: impl FnOnce(&mut io::BufWriter<File>) -> Result<(), E>,
) -> Result<(), E> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut w = io::BufWriter::new(File::create(&tmp)?);
    write(&mut w)?;
    let f = w.into_inner().map_err(|e| e.into_error())?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)?;
    // The rename is durable only once the *directory entry* is on disk:
    // fsyncing the file persists its bytes, but a crash before the
    // parent directory syncs can resurrect the old name (or no name at
    // all) on some filesystems. Journal creation rides through here, so
    // this is what makes "the journal exists" itself crash-safe.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fsync_dir(&parent)?;
    Ok(())
}

/// Count of parent-directory fsyncs issued, observable from the
/// durability unit test (`dir_is_synced_after_atomic_writes`).
#[cfg(test)]
static DIR_SYNCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Fsync a directory so a just-renamed entry inside it survives power
/// loss. On platforms where directories cannot be opened for sync this
/// degrades to a no-op error propagation like any other io failure.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(test)]
    DIR_SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    File::open(dir)?.sync_all()
}

/// Append-traffic counters the journal bumps when a [`JournalMetrics`]
/// is attached ([`Journal::attach_metrics`]). Pure event counts — no
/// clocks — so checkpointed runs stay deterministic; the shared
/// primitives come from `wheels-metrics` (the same layer `wheels-serve`
/// and `wheels-stress` report through).
#[derive(Debug, Default)]
pub struct JournalMetrics {
    /// Shard frames appended (excludes the identity header).
    pub frames_appended: wheels_metrics::Counter,
    /// Frame bytes appended, framing included.
    pub bytes_appended: wheels_metrics::Counter,
}

/// An open shard journal: created fresh (`--checkpoint`) or recovered
/// (`--resume`), then appended to as shards complete.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    metrics: Option<std::sync::Arc<JournalMetrics>>,
}

impl Journal {
    /// The journal file path inside a checkpoint directory.
    pub fn file_path(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Start a fresh journal in `dir` (created if missing), identified by
    /// `fp`. Overwrites any previous journal atomically: a kill during
    /// creation leaves either the old journal or the new header, never a
    /// hybrid.
    pub fn create(dir: &Path, fp: &Fingerprint) -> Result<Journal, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let header = serde_json::to_string(fp)
            .map_err(|e| CheckpointError::Invalid(format!("cannot serialize fingerprint: {e}")))?;
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(header.as_bytes())?);
        let path = Self::file_path(dir);
        write_atomic(&path, &bytes)?;
        Ok(Journal {
            path,
            metrics: None,
        })
    }

    /// Recover the journal in `dir` for the run identified by `fp`
    /// **without materializing any shard**: verify the identity header,
    /// index every intact shard frame by its byte span, and truncate the
    /// torn/corrupt tail (everything from the first bad frame on) so
    /// subsequent appends extend a valid prefix. Returns the journal and
    /// the completed frame spans keyed by plan-order job index; decode a
    /// span on demand with [`JournalReader::read_frame`].
    pub fn resume_indexed(
        dir: &Path,
        fp: &Fingerprint,
    ) -> Result<(Journal, BTreeMap<usize, FrameSpan>), CheckpointError> {
        let (path, bytes, mut pos) = open_verified(dir, fp)?;
        let mut completed = BTreeMap::new();
        let valid_end = loop {
            match scan_frame(&bytes, pos) {
                Scan::End | Scan::Torn => break pos,
                Scan::Frame { payload, end } => {
                    let job = frame_job(payload, pos)?;
                    completed.insert(
                        job,
                        FrameSpan {
                            start: u64::try_from(pos).map_err(|_| {
                                CheckpointError::Invalid("journal length exceeds u64".to_string())
                            })?,
                            end: u64::try_from(end).map_err(|_| {
                                CheckpointError::Invalid("journal length exceeds u64".to_string())
                            })?,
                        },
                    );
                    pos = end;
                }
            }
        };
        if valid_end < bytes.len() {
            // Torn tail: cut the journal back to its valid prefix so the
            // resumed run appends after the last intact frame.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(u64::try_from(valid_end).map_err(|_| {
                CheckpointError::Invalid("journal length exceeds u64".to_string())
            })?)?;
            f.sync_all()?;
        }
        Ok((
            Journal {
                path,
                metrics: None,
            },
            completed,
        ))
    }

    /// [`Journal::resume_indexed`], then decode every indexed frame — a
    /// convenience for tests and small tools that want the shards in
    /// hand. The campaign engine itself resumes via the index and drains
    /// frames one at a time through its reorder window.
    pub fn resume(
        dir: &Path,
        fp: &Fingerprint,
    ) -> Result<(Journal, BTreeMap<usize, ShardRecords>), CheckpointError> {
        let (journal, spans) = Self::resume_indexed(dir, fp)?;
        let reader = journal.reader();
        let mut completed = BTreeMap::new();
        for (job, span) in spans {
            // lint: allow(bounded-ingest, deliberate full materialization for tests and small tools; the engine resumes via resume_indexed and drains through the reorder window)
            completed.insert(job, reader.read_frame(span)?);
        }
        Ok((journal, completed))
    }

    /// Attach append-traffic counters; every subsequent
    /// [`Journal::append`] bumps them. Counters are shared ([`Arc`])
    /// because the observer usually outlives the journal — e.g. the
    /// campaign's metrics bundle keeps reporting after the run ends.
    pub fn attach_metrics(&mut self, metrics: std::sync::Arc<JournalMetrics>) {
        self.metrics = Some(metrics);
    }

    /// A read-only handle on this journal's file, usable concurrently
    /// with appends (spans are only handed out for fully-synced bytes).
    pub fn reader(&self) -> JournalReader {
        JournalReader {
            path: self.path.clone(),
        }
    }

    /// Append one completed shard frame and sync it to disk. A kill
    /// anywhere inside this write leaves a torn tail that the next
    /// resume truncates. Returns the frame's byte span, so a caller that
    /// drops the in-RAM shard can re-read it later — the journal doubles
    /// as the reorder window's spill.
    pub fn append(
        &mut self,
        job: usize,
        records: &ShardRecords,
    ) -> Result<FrameSpan, CheckpointError> {
        let payload = serde_json::to_string(&(job, records))
            .map_err(|e| CheckpointError::Invalid(format!("cannot serialize shard frame: {e}")))?;
        let frame = encode_frame(payload.as_bytes())?;
        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        let start = f.metadata()?.len();
        f.write_all(&frame)?;
        f.sync_data()?;
        let len = u64::try_from(frame.len())
            .map_err(|_| CheckpointError::Invalid("frame length exceeds u64".to_string()))?;
        if let Some(m) = &self.metrics {
            m.frames_appended.inc();
            m.bytes_appended.add(len);
        }
        Ok(FrameSpan {
            start,
            end: start + len,
        })
    }
}

/// A cloneable read-only view of a journal file: decodes single frames
/// by span, re-verifying the checksum on every read. This is what the
/// campaign's reorder window drains spilled shards through.
#[derive(Debug, Clone)]
pub struct JournalReader {
    path: PathBuf,
}

impl JournalReader {
    /// Decode the shard frame at `span`, verifying its checksum.
    pub fn read_frame(&self, span: FrameSpan) -> Result<ShardRecords, CheckpointError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(span.start))?;
        let len = usize::try_from(span.end.saturating_sub(span.start))
            .map_err(|_| CheckpointError::Invalid("frame span exceeds usize".to_string()))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        let verified = match scan_frame(&buf, 0) {
            Scan::Frame { payload, end } if end == len => Some(payload),
            _ => None,
        };
        let Some(payload) = verified else {
            return Err(CheckpointError::Invalid(format!(
                "journal frame at bytes {}..{} failed re-verification — the file changed under a live run",
                span.start, span.end
            )));
        };
        let text = std::str::from_utf8(payload).map_err(|_| {
            CheckpointError::Invalid(format!(
                "checksummed frame at byte {} is not valid UTF-8",
                span.start
            ))
        })?;
        let (_, records): (usize, ShardRecords) = serde_json::from_str(text).map_err(|e| {
            CheckpointError::Invalid(format!(
                "checksummed frame at byte {} does not decode: {e}",
                span.start
            ))
        })?;
        Ok(records)
    }
}

/// Byte offsets of every intact frame boundary in `dir`'s journal, in
/// order: the end of the identity header first, then the end of each
/// shard frame. These are exactly the kill points at which the file is
/// tear-free; the crash harness truncates at (and between) them.
pub fn frame_ends(dir: &Path) -> Result<Vec<u64>, CheckpointError> {
    let path = Journal::file_path(dir);
    let bytes = std::fs::read(&path)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::Invalid(format!(
            "{} is not a wheels checkpoint journal (bad magic)",
            path.display()
        )));
    }
    let mut ends = Vec::new();
    let mut pos = MAGIC.len();
    while let Scan::Frame { end, .. } = scan_frame(&bytes, pos) {
        ends.push(
            u64::try_from(end)
                .map_err(|_| CheckpointError::Invalid("journal length exceeds u64".to_string()))?,
        );
        pos = end;
    }
    Ok(ends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::Dataset;
    use wheels_ran::cells::CellId;
    use wheels_ran::operator::Operator;

    fn fp(seed: u64) -> Fingerprint {
        Fingerprint {
            seed,
            max_cycles: Some(2),
            include_apps: false,
            include_static: false,
            start_at_sample: 0,
            cycle_stride_s: 40_000,
            shard_cycles: Some(1),
            faults: FaultConfig::default(),
            segments: 2,
            jobs: 6,
        }
    }

    fn rec(op: Operator) -> ShardRecords {
        let dataset = Dataset {
            rx_bytes: 12.5,
            ..Dataset::default()
        };
        ShardRecords {
            operator: op,
            dataset,
            cells: vec![CellId(3), CellId(7)],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("wheels-checkpoint-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_then_resume_empty() {
        let dir = tmpdir("ckpt_empty");
        Journal::create(&dir, &fp(1)).unwrap();
        let (_, done) = Journal::resume(&dir, &fp(1)).unwrap();
        assert!(done.is_empty());
    }

    #[test]
    fn append_and_replay() {
        let dir = tmpdir("ckpt_replay");
        let mut j = Journal::create(&dir, &fp(1)).unwrap();
        j.append(0, &rec(Operator::Verizon)).unwrap();
        j.append(3, &rec(Operator::Att)).unwrap();
        let (_, done) = Journal::resume(&dir, &fp(1)).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[&0], rec(Operator::Verizon));
        assert_eq!(done[&3], rec(Operator::Att));
    }

    #[test]
    fn resume_indexed_spans_decode_on_demand() {
        let dir = tmpdir("ckpt_indexed");
        let mut j = Journal::create(&dir, &fp(1)).unwrap();
        let s0 = j.append(0, &rec(Operator::Verizon)).unwrap();
        let s3 = j.append(3, &rec(Operator::Att)).unwrap();
        let (j2, spans) = Journal::resume_indexed(&dir, &fp(1)).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[&0], s0);
        assert_eq!(spans[&3], s3);
        let reader = j2.reader();
        assert_eq!(
            reader.read_frame(spans[&0]).unwrap(),
            rec(Operator::Verizon)
        );
        assert_eq!(reader.read_frame(spans[&3]).unwrap(), rec(Operator::Att));
    }

    #[test]
    fn tail_replays_in_append_order_and_is_read_only() {
        let dir = tmpdir("ckpt_tail");
        let mut j = Journal::create(&dir, &fp(1)).unwrap();
        j.append(2, &rec(Operator::Verizon)).unwrap();
        j.append(0, &rec(Operator::TMobile)).unwrap();
        let full = std::fs::read(Journal::file_path(&dir)).unwrap();
        // Tear the third frame in half: tail must deliver the two intact
        // frames in append order, then stop without truncating anything.
        j.append(1, &rec(Operator::Att)).unwrap();
        let torn = std::fs::read(Journal::file_path(&dir)).unwrap();
        let cut = full.len() + (torn.len() - full.len()) / 2;
        std::fs::write(Journal::file_path(&dir), &torn[..cut]).unwrap();
        let mut seen = Vec::new();
        let state = tail(&dir, &fp(1), |job, rec| {
            seen.push((job, rec.operator));
            Ok(())
        })
        .unwrap();
        assert_eq!(state.delivered, 2);
        assert_eq!(
            state.next_offset,
            u64::try_from(full.len()).unwrap(),
            "resume cursor must sit at the start of the torn frame"
        );
        assert_eq!(seen, vec![(2, Operator::Verizon), (0, Operator::TMobile)]);
        assert_eq!(
            std::fs::metadata(Journal::file_path(&dir)).unwrap().len(),
            u64::try_from(cut).unwrap(),
            "tail must not truncate the torn tail"
        );
        // And it enforces the same identity rule as a resume.
        match tail(&dir, &fp(9), |_, _| Ok(())) {
            Err(CheckpointError::Mismatch(d)) => assert!(d.contains("seed"), "{d}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn tail_from_resumes_mid_frame_without_skip_or_double_ingest() {
        let dir = tmpdir("ckpt_tail_resume");
        let mut j = Journal::create(&dir, &fp(1)).unwrap();
        j.append(0, &rec(Operator::Verizon)).unwrap();
        let mut seen = Vec::new();
        let st0 = tail(&dir, &fp(1), |job, rec| {
            seen.push((job, rec.operator));
            Ok(())
        })
        .unwrap();
        assert_eq!((st0.delivered, seen.len()), (1, 1));
        let len0 = std::fs::metadata(Journal::file_path(&dir)).unwrap().len();
        assert_eq!(st0.next_offset, len0);

        // The writer starts appending frame 1; a poll lands mid-frame.
        j.append(1, &rec(Operator::TMobile)).unwrap();
        let full = std::fs::read(Journal::file_path(&dir)).unwrap();
        let cut = usize::try_from(st0.next_offset).unwrap() + FRAME_HEADER / 2;
        std::fs::write(Journal::file_path(&dir), &full[..cut]).unwrap();
        let st1 = tail_from(&dir, &fp(1), Some(st0.next_offset), |job, rec| {
            seen.push((job, rec.operator));
            Ok(())
        })
        .unwrap();
        assert_eq!(st1.delivered, 0, "a torn frame must not be delivered");
        assert_eq!(
            st1.next_offset, st0.next_offset,
            "the cursor must stay at the torn frame's start"
        );

        // The writer finishes the append; the next poll picks the frame
        // up exactly once — neither skipped nor double-ingested.
        std::fs::write(Journal::file_path(&dir), &full).unwrap();
        let st2 = tail_from(&dir, &fp(1), Some(st1.next_offset), |job, rec| {
            seen.push((job, rec.operator));
            Ok(())
        })
        .unwrap();
        assert_eq!(st2.delivered, 1);
        assert_eq!(st2.next_offset, u64::try_from(full.len()).unwrap());

        // Polls are incremental: with the cursor past the header, a new
        // frame is picked up even when the already-consumed prefix is
        // unreadable garbage — proof the poll never re-reads from byte 0.
        j.append(2, &rec(Operator::Att)).unwrap();
        let appended = std::fs::read(Journal::file_path(&dir)).unwrap();
        let mut scribbled = appended.clone();
        for b in scribbled.iter_mut().take(MAGIC.len()) {
            *b = 0xFF;
        }
        std::fs::write(Journal::file_path(&dir), &scribbled).unwrap();
        let st3 = tail_from(&dir, &fp(1), Some(st2.next_offset), |job, rec| {
            seen.push((job, rec.operator));
            Ok(())
        })
        .unwrap();
        assert_eq!(st3.delivered, 1);
        assert_eq!(st3.next_offset, u64::try_from(appended.len()).unwrap());
        assert_eq!(
            seen,
            vec![
                (0, Operator::Verizon),
                (1, Operator::TMobile),
                (2, Operator::Att)
            ],
            "every frame exactly once, in append order"
        );
    }

    #[test]
    fn fingerprint_mismatch_is_refused_with_field_names() {
        let dir = tmpdir("ckpt_mismatch");
        Journal::create(&dir, &fp(1)).unwrap();
        let err = Journal::resume(&dir, &fp(2)).unwrap_err();
        match err {
            CheckpointError::Mismatch(d) => assert!(d.contains("seed"), "{d}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        let mut other = fp(1);
        other.faults = FaultConfig::demo();
        let err = Journal::resume(&dir, &other).unwrap_err();
        match err {
            CheckpointError::Mismatch(d) => assert!(d.contains("faults"), "{d}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let dir = tmpdir("ckpt_torn");
        let mut j = Journal::create(&dir, &fp(1)).unwrap();
        j.append(0, &rec(Operator::Verizon)).unwrap();
        let keep = std::fs::read(Journal::file_path(&dir)).unwrap();
        j.append(1, &rec(Operator::TMobile)).unwrap();
        let full = std::fs::read(Journal::file_path(&dir)).unwrap();
        // Kill at every byte of the second frame: resume must always
        // recover exactly frame 0 and truncate back to `keep`.
        for cut in keep.len()..full.len() {
            std::fs::write(Journal::file_path(&dir), &full[..cut]).unwrap();
            let (_, done) = Journal::resume(&dir, &fp(1)).unwrap();
            assert_eq!(done.len(), 1, "cut at byte {cut}");
            assert!(done.contains_key(&0), "cut at byte {cut}");
            let after = std::fs::read(Journal::file_path(&dir)).unwrap();
            assert_eq!(after, keep, "cut at byte {cut}: tail not truncated");
        }
    }

    #[test]
    fn corrupt_mid_frame_byte_drops_the_tail() {
        let dir = tmpdir("ckpt_flip");
        let mut j = Journal::create(&dir, &fp(1)).unwrap();
        j.append(0, &rec(Operator::Verizon)).unwrap();
        let keep_len = std::fs::metadata(Journal::file_path(&dir)).unwrap().len();
        j.append(1, &rec(Operator::TMobile)).unwrap();
        let mut bytes = std::fs::read(Journal::file_path(&dir)).unwrap();
        // Flip one payload byte inside the second frame.
        let idx = usize::try_from(keep_len).unwrap() + FRAME_HEADER + 2;
        bytes[idx] ^= 0x40;
        std::fs::write(Journal::file_path(&dir), &bytes).unwrap();
        let (_, done) = Journal::resume(&dir, &fp(1)).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(
            std::fs::metadata(Journal::file_path(&dir)).unwrap().len(),
            keep_len
        );
    }

    #[test]
    fn missing_and_torn_header_journals_are_invalid() {
        let dir = tmpdir("ckpt_missing");
        match Journal::resume(&dir, &fp(1)) {
            Err(CheckpointError::Invalid(d)) => assert!(d.contains("--checkpoint"), "{d}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        Journal::create(&dir, &fp(1)).unwrap();
        let bytes = std::fs::read(Journal::file_path(&dir)).unwrap();
        std::fs::write(Journal::file_path(&dir), &bytes[..bytes.len() - 1]).unwrap();
        match Journal::resume(&dir, &fp(1)) {
            Err(CheckpointError::Invalid(d)) => assert!(d.contains("header"), "{d}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        std::fs::write(Journal::file_path(&dir), b"not a journal").unwrap();
        match Journal::resume(&dir, &fp(1)) {
            Err(CheckpointError::Invalid(d)) => assert!(d.contains("magic"), "{d}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn frame_ends_track_appends() {
        let dir = tmpdir("ckpt_ends");
        let mut j = Journal::create(&dir, &fp(1)).unwrap();
        let e0 = frame_ends(&dir).unwrap();
        assert_eq!(e0.len(), 1, "header only");
        j.append(0, &rec(Operator::Verizon)).unwrap();
        j.append(1, &rec(Operator::Att)).unwrap();
        let e2 = frame_ends(&dir).unwrap();
        assert_eq!(e2.len(), 3);
        assert_eq!(e2[0], e0[0]);
        assert_eq!(
            *e2.last().unwrap(),
            std::fs::metadata(Journal::file_path(&dir)).unwrap().len()
        );
    }

    #[test]
    fn write_atomic_replaces_content() {
        let dir = tmpdir("ckpt_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("out.json.tmp").exists());
    }

    #[test]
    fn dir_is_synced_after_atomic_writes() {
        use std::sync::atomic::Ordering;
        let dir = tmpdir("ckpt_dirsync");
        std::fs::create_dir_all(&dir).unwrap();
        // Other tests also write atomically (the counter is global), so
        // assert the delta from our three renames, not an absolute.
        let before = DIR_SYNCS.load(Ordering::Relaxed);
        write_atomic(&dir.join("a.json"), b"a").unwrap();
        write_atomic(&dir.join("b.json"), b"b").unwrap();
        Journal::create(&dir, &fp(1)).unwrap();
        let after = DIR_SYNCS.load(Ordering::Relaxed);
        assert!(
            after >= before + 3,
            "expected >=3 parent-dir fsyncs (two write_atomic + journal \
             creation), saw {}",
            after - before
        );
    }
}
