//! WCD1 — the columnar dataset's binary on-disk format.
//!
//! Same family as the WCJ1 checkpoint journal: magic, length prefixes,
//! and FNV-1a-64 checksums, but laid out as a *column catalogue* rather
//! than an append-only frame log. Each named column is one fixed-width
//! little-endian section whose payload starts on an 8-byte boundary, so
//! a loader may memory-map the file and view every section in place;
//! the portable decoder here copies instead (no `unsafe` in this
//! workspace) but still performs zero parsing — decode cost is a
//! checksum pass plus `memcpy`-shaped copies.
//!
//! ```text
//! file    := "WCD1" | count: u32 LE | section*
//! section := tag: u8 | name_len: u8 | name bytes (ASCII)
//!          | elems: u64 LE | fnv1a64(payload): u64 LE
//!          | pad to 8-byte file offset | payload (elems × width LE)
//! tag     := 1 = u8 | 2 = u32 | 3 = u64 | 4 = f64
//! ```
//!
//! `f64` payloads are raw IEEE-754 bit patterns (`to_le_bytes`), so the
//! format is lossless for every value JSON can carry and then some.
//! Decoding is strict: an unknown column name, a missing column, a
//! duplicate, a bad tag, or a checksum mismatch all fail loudly — a
//! WCD1 file either loads exactly or not at all, mirroring the
//! journal's "torn tail is truncated, corrupt body is an error" rule.

use std::fmt;
use std::io;
use std::path::Path;

use crate::checkpoint::{fnv1a64, write_atomic_with};

use super::ColumnarDataset;

/// File magic; also the auto-detection key used by
/// [`super::load_dataset`].
pub const MAGIC: &[u8; 4] = b"WCD1";

const TAG_U8: u8 = 1;
const TAG_U32: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;

/// Decode failure: structurally broken, checksum-mismatched, or
/// foreign/unknown-schema bytes.
#[derive(Debug)]
pub enum WcdError {
    /// Not a WCD1 file or the catalogue is malformed.
    Invalid(String),
    /// A section checksum did not match its payload.
    Checksum(String),
    /// Underlying I/O failure (file-level helpers only).
    Io(io::Error),
}

impl fmt::Display for WcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcdError::Invalid(m) => write!(f, "invalid WCD1 data: {m}"),
            WcdError::Checksum(m) => write!(f, "WCD1 checksum mismatch: {m}"),
            WcdError::Io(e) => write!(f, "WCD1 io error: {e}"),
        }
    }
}

impl std::error::Error for WcdError {}

impl From<io::Error> for WcdError {
    fn from(e: io::Error) -> Self {
        WcdError::Io(e)
    }
}

/// The single source of truth for the column catalogue: hands every
/// `(name, field path, kind)` triple of a [`ColumnarDataset`] in file
/// order to the callback macro `$with`, so the encoder (shared
/// borrows, streamed) and the decoder (`&mut` slots, filled in place)
/// walk one list and can never disagree about names, tags, or
/// ordering. The three dataset scalars travel as one-element `f64`
/// sections at the end.
macro_rules! catalogue {
    ($with:ident) => {
        $with!("tput.t_ms", tput.t_ms, U64);
        $with!("tput.test_id", tput.test_id, U32);
        $with!("tput.operator", tput.operator, U8);
        $with!("tput.direction", tput.direction, U8);
        $with!("tput.mbps", tput.mbps, F64);
        $with!("tput.tech", tput.tech, U8);
        $with!("tput.cell", tput.cell, U32);
        $with!("tput.speed_mph", tput.speed_mph, F64);
        $with!("tput.zone", tput.zone, U8);
        $with!("tput.tz", tput.tz, U8);
        $with!("tput.server", tput.server, U8);
        $with!("tput.rsrp_dbm", tput.rsrp_dbm, F64);
        $with!("tput.mcs", tput.mcs, U8);
        $with!("tput.bler", tput.bler, F64);
        $with!("tput.carriers", tput.carriers, U8);
        $with!("tput.handovers_in_bin", tput.handovers_in_bin, U8);
        $with!("tput.driving", tput.driving, U8);

        $with!("rtt.t_ms", rtt.t_ms, U64);
        $with!("rtt.test_id", rtt.test_id, U32);
        $with!("rtt.operator", rtt.operator, U8);
        $with!("rtt.rtt_valid", rtt.rtt_valid, U8);
        $with!("rtt.rtt_ms", rtt.rtt_ms, F64);
        $with!("rtt.tech", rtt.tech, U8);
        $with!("rtt.speed_mph", rtt.speed_mph, F64);
        $with!("rtt.tz", rtt.tz, U8);
        $with!("rtt.server", rtt.server, U8);
        $with!("rtt.driving", rtt.driving, U8);

        $with!("coverage.t_ms", coverage.t_ms, U64);
        $with!("coverage.operator", coverage.operator, U8);
        $with!("coverage.tech", coverage.tech, U8);
        $with!("coverage.direction", coverage.direction, U8);
        $with!("coverage.miles", coverage.miles, F64);
        $with!("coverage.speed_mph", coverage.speed_mph, F64);
        $with!("coverage.tz", coverage.tz, U8);
        $with!("coverage.zone", coverage.zone, U8);

        $with!("runs.id", runs.id, U32);
        $with!("runs.kind", runs.kind, U8);
        $with!("runs.operator", runs.operator, U8);
        $with!("runs.start_ms", runs.start_ms, U64);
        $with!("runs.end_ms", runs.end_ms, U64);
        $with!("runs.miles", runs.miles, F64);
        $with!("runs.tz", runs.tz, U8);
        $with!("runs.server", runs.server, U8);
        $with!("runs.hs5g_fraction", runs.hs5g_fraction, F64);
        $with!("runs.handovers", runs.handovers, U32);
        $with!("runs.driving", runs.driving, U8);
        $with!("runs.partial", runs.partial, U8);

        $with!("handovers.start_ms", handovers.start_ms, U64);
        $with!("handovers.duration_ms", handovers.duration_ms, U64);
        $with!("handovers.from_cell", handovers.from_cell, U32);
        $with!("handovers.to_cell", handovers.to_cell, U32);
        $with!("handovers.from_tech", handovers.from_tech, U8);
        $with!("handovers.to_tech", handovers.to_tech, U8);
        $with!("handovers.kind", handovers.kind, U8);
        $with!("handovers.operator", handovers.operator, U8);
        $with!("handovers.test_valid", handovers.test_valid, U8);
        $with!("handovers.test_id", handovers.test_id, U32);
        $with!("handovers.direction", handovers.direction, U8);

        $with!("apps.id", apps.id, U32);
        $with!("apps.operator", apps.operator, U8);
        $with!("apps.kind", apps.kind, U8);
        $with!("apps.server", apps.server, U8);
        $with!("apps.driving", apps.driving, U8);
        $with!("apps.off_valid", apps.off_valid, U8);
        $with!("apps.off_e2e_len", apps.off_e2e_len, U32);
        $with!("apps.off_frames_offloaded", apps.off_frames_offloaded, U64);
        $with!("apps.off_frames_total", apps.off_frames_total, U64);
        $with!("apps.off_compressed", apps.off_compressed, U8);
        $with!("apps.off_hs5g", apps.off_hs5g, F64);
        $with!("apps.off_handovers", apps.off_handovers, U64);
        $with!("apps.off_e2e_ms", apps.off_e2e_ms, F64);
        $with!("apps.vid_valid", apps.vid_valid, U8);
        $with!("apps.vid_chunks_len", apps.vid_chunks_len, U32);
        $with!("apps.vid_hs5g", apps.vid_hs5g, F64);
        $with!("apps.vid_handovers", apps.vid_handovers, U64);
        $with!("apps.vid_bitrate_mbps", apps.vid_bitrate_mbps, F64);
        $with!("apps.vid_rebuffer_s", apps.vid_rebuffer_s, F64);
        $with!("apps.vid_qoe", apps.vid_qoe, F64);
        $with!("apps.gam_valid", apps.gam_valid, U8);
        $with!("apps.gam_bitrate_len", apps.gam_bitrate_len, U32);
        $with!("apps.gam_latency_len", apps.gam_latency_len, U32);
        $with!("apps.gam_frames_dropped", apps.gam_frames_dropped, U64);
        $with!("apps.gam_frames_sent", apps.gam_frames_sent, U64);
        $with!("apps.gam_hs5g", apps.gam_hs5g, F64);
        $with!("apps.gam_handovers", apps.gam_handovers, U64);
        $with!("apps.gam_bitrate_mbps", apps.gam_bitrate_mbps, F64);
        $with!("apps.gam_latency_ms", apps.gam_latency_ms, F64);

        $with!("audits.test_id", audits.test_id, U32);
        $with!("audits.operator", audits.operator, U8);
        $with!("audits.kind", audits.kind, U8);
        $with!("audits.day", audits.day, U8);
        $with!("audits.scheduled_ms", audits.scheduled_ms, U64);
        $with!("audits.status", audits.status, U8);
        $with!("audits.attempts", audits.attempts, U32);
        $with!("audits.fault", audits.fault, U8);
        $with!("audits.planned_samples", audits.planned_samples, U32);
        $with!("audits.recorded_samples", audits.recorded_samples, U32);
        $with!("audits.lost_samples", audits.lost_samples, U32);

        $with!("cells.operator", cells_operator, U8);
        $with!("cells.count", cells_count, U64);
        $with!("runtime.operator", runtime_operator, U8);
        $with!("runtime.min", runtime_min, F64);

        $with!("scalar.rx_bytes", rx_bytes, Scalar);
        $with!("scalar.tx_bytes", tx_bytes, Scalar);
        $with!("scalar.log_bytes", log_bytes, Scalar);
    };
}

/// A mutable borrow of one catalogue column slot, filled by the
/// decoder.
enum EntrySource<'a> {
    U8(&'a mut Vec<u8>),
    U32(&'a mut Vec<u32>),
    U64(&'a mut Vec<u64>),
    F64(&'a mut Vec<f64>),
    Scalar(&'a mut f64),
}

/// A shared borrow of one catalogue column, read by the encoder. The
/// split from [`EntrySource`] is what lets `encode_to` stream straight
/// off the caller's dataset without cloning it.
enum EntryRef<'a> {
    U8(&'a Vec<u8>),
    U32(&'a Vec<u32>),
    U64(&'a Vec<u64>),
    F64(&'a Vec<f64>),
    Scalar(&'a f64),
}

impl EntrySource<'_> {
    fn tag(&self) -> u8 {
        match self {
            EntrySource::U8(_) => TAG_U8,
            EntrySource::U32(_) => TAG_U32,
            EntrySource::U64(_) => TAG_U64,
            EntrySource::F64(_) | EntrySource::Scalar(_) => TAG_F64,
        }
    }
}

/// Streaming section emitter: tracks the absolute file offset so the
/// pad-to-8 math works against any `io::Write` sink (the in-memory
/// buffer's length is not available once the bytes go straight to a
/// file). One scratch buffer is reused across sections, so peak memory
/// is one column's payload, not the whole file image.
struct SectionWriter<W: io::Write> {
    w: W,
    pos: u64,
    scratch: Vec<u8>,
}

impl<W: io::Write> SectionWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), WcdError> {
        self.w.write_all(bytes)?;
        self.pos += len64(bytes.len())?;
        Ok(())
    }

    fn section(&mut self, name: &str, col: EntryRef<'_>) -> Result<(), WcdError> {
        self.scratch.clear();
        let (tag, elems) = match col {
            EntryRef::U8(v) => {
                self.scratch.extend_from_slice(v);
                (TAG_U8, len64(v.len())?)
            }
            EntryRef::U32(v) => {
                self.scratch.extend(v.iter().flat_map(|x| x.to_le_bytes()));
                (TAG_U32, len64(v.len())?)
            }
            EntryRef::U64(v) => {
                self.scratch.extend(v.iter().flat_map(|x| x.to_le_bytes()));
                (TAG_U64, len64(v.len())?)
            }
            EntryRef::F64(v) => {
                self.scratch.extend(v.iter().flat_map(|x| x.to_le_bytes()));
                (TAG_F64, len64(v.len())?)
            }
            EntryRef::Scalar(v) => {
                self.scratch.extend_from_slice(&v.to_le_bytes());
                (TAG_F64, 1)
            }
        };
        let name_len = u8::try_from(name.len())
            .map_err(|_| WcdError::Invalid(format!("column name {name:?} exceeds 255 bytes")))?;
        let sum = fnv1a64(&self.scratch);
        self.put(&[tag, name_len])?;
        self.put(name.as_bytes())?;
        self.put(&elems.to_le_bytes())?;
        self.put(&sum.to_le_bytes())?;
        while !self.pos.is_multiple_of(8) {
            self.put(&[0])?;
        }
        self.w.write_all(&self.scratch)?;
        self.pos += len64(self.scratch.len())?;
        Ok(())
    }
}

fn len64(n: usize) -> Result<u64, WcdError> {
    u64::try_from(n).map_err(|_| WcdError::Invalid("column length exceeds u64".to_string()))
}

/// Serialize a columnar dataset straight into `w`, section by section.
/// Peak memory is one column's payload (the checksum needs the
/// serialized bytes before the header is written), never the full
/// encoded image — the `dataset --format bin` export streams through
/// here. Bytes produced are identical to [`encode`].
pub fn encode_to<W: io::Write>(ds: &ColumnarDataset, w: W) -> Result<(), WcdError> {
    let mut count: u32 = 0;
    macro_rules! count_col {
        ($name:literal, $($field:ident).+, $kind:ident) => {
            count += 1;
        };
    }
    catalogue!(count_col);
    let mut sw = SectionWriter {
        w,
        pos: 0,
        scratch: Vec::new(),
    };
    sw.put(MAGIC)?;
    sw.put(&count.to_le_bytes())?;
    macro_rules! write_col {
        ($name:literal, $($field:ident).+, $kind:ident) => {
            sw.section($name, EntryRef::$kind(&ds.$($field).+))?;
        };
    }
    catalogue!(write_col);
    Ok(())
}

/// Serialize a columnar dataset to WCD1 bytes in memory.
pub fn encode(ds: &ColumnarDataset) -> Vec<u8> {
    let mut out = Vec::new();
    encode_to(ds, &mut out).expect("encoding to memory cannot fail");
    out
}

/// Streaming reader over the section catalogue.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WcdError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WcdError::Invalid(format!("file truncated reading {what}")))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64le(&mut self, what: &str) -> Result<u64, WcdError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8, what)?);
        Ok(u64::from_le_bytes(b))
    }

    fn align8(&mut self) {
        self.pos = (self.pos + 7) & !7;
    }

    /// Read one section header + payload; returns `(name, tag, payload)`.
    fn section(&mut self) -> Result<(&'a str, u8, &'a [u8]), WcdError> {
        let tag = self.take(1, "section tag")?[0];
        let width: usize = match tag {
            TAG_U8 => 1,
            TAG_U32 => 4,
            TAG_U64 => 8,
            TAG_F64 => 8,
            other => return Err(WcdError::Invalid(format!("unknown column tag {other}"))),
        };
        let name_len = usize::from(self.take(1, "name length")?[0]);
        let name = std::str::from_utf8(self.take(name_len, "column name")?)
            .map_err(|_| WcdError::Invalid("column name is not UTF-8".to_string()))?;
        let elems = self.u64le("element count")?;
        let stored_sum = self.u64le("checksum")?;
        let n = usize::try_from(elems)
            .ok()
            .and_then(|n| n.checked_mul(width))
            .ok_or_else(|| WcdError::Invalid(format!("column {name} too large for memory")))?;
        self.align8();
        let payload = self.take(n, "column payload")?;
        if fnv1a64(payload) != stored_sum {
            return Err(WcdError::Checksum(format!("column {name}")));
        }
        Ok((name, tag, payload))
    }
}

fn fill(slot: EntrySource<'_>, tag: u8, payload: &[u8], name: &str) -> Result<(), WcdError> {
    if slot.tag() != tag {
        return Err(WcdError::Invalid(format!(
            "column {name}: expected tag {}, file has {tag}",
            slot.tag()
        )));
    }
    match slot {
        EntrySource::U8(v) => {
            v.clear();
            v.extend_from_slice(payload);
        }
        EntrySource::U32(v) => {
            v.clear();
            v.reserve(payload.len() / 4);
            for c in payload.chunks_exact(4) {
                let mut b = [0u8; 4];
                b.copy_from_slice(c);
                v.push(u32::from_le_bytes(b));
            }
        }
        EntrySource::U64(v) => {
            v.clear();
            v.reserve(payload.len() / 8);
            for c in payload.chunks_exact(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                v.push(u64::from_le_bytes(b));
            }
        }
        EntrySource::F64(v) => {
            v.clear();
            v.reserve(payload.len() / 8);
            for c in payload.chunks_exact(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                v.push(f64::from_le_bytes(b));
            }
        }
        EntrySource::Scalar(v) => {
            if payload.len() != 8 {
                return Err(WcdError::Invalid(format!(
                    "scalar column {name} must hold exactly one element"
                )));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(payload);
            *v = f64::from_le_bytes(b);
        }
    }
    Ok(())
}

/// Deserialize WCD1 bytes into a columnar dataset. Strict: the file
/// must contain exactly the catalogue's columns, in catalogue order,
/// with matching tags and checksums.
pub fn decode(bytes: &[u8]) -> Result<ColumnarDataset, WcdError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4, "magic").ok() != Some(MAGIC.as_slice()) {
        return Err(WcdError::Invalid("missing WCD1 magic".to_string()));
    }
    let mut count_b = [0u8; 4];
    count_b.copy_from_slice(r.take(4, "column count")?);
    let declared = u32::from_le_bytes(count_b);

    let mut ds = ColumnarDataset::default();
    let mut seen: u32 = 0;
    macro_rules! read_col {
        ($name:literal, $($field:ident).+, $kind:ident) => {{
            let (got_name, tag, payload) = r.section()?;
            if got_name != $name {
                return Err(WcdError::Invalid(format!(
                    "expected column {}, file has {got_name}",
                    $name
                )));
            }
            seen += 1;
            fill(EntrySource::$kind(&mut ds.$($field).+), tag, payload, $name)?;
        }};
    }
    catalogue!(read_col);
    if seen != declared {
        return Err(WcdError::Invalid(format!(
            "catalogue declares {declared} columns, schema expects {seen}"
        )));
    }
    if r.pos != bytes.len() {
        return Err(WcdError::Invalid(format!(
            "{} trailing bytes after last column",
            bytes.len() - r.pos
        )));
    }
    ds.check().map_err(|e| WcdError::Invalid(e.0))?;
    Ok(ds)
}

/// Encode and persist via the checkpoint crash-safety discipline
/// (temp file + fsync + atomic rename), streaming sections to the
/// temp file instead of materializing the encoded image in memory.
pub fn write_file(path: &Path, ds: &ColumnarDataset) -> Result<(), WcdError> {
    write_atomic_with(path, |w| encode_to(ds, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dataset_encodes_and_decodes() {
        let ds = ColumnarDataset::default();
        let bytes = encode(&ds);
        assert_eq!(&bytes[..4], MAGIC);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back, ds);
    }

    #[test]
    fn payloads_are_8_byte_aligned() {
        // Corrupting any payload byte must be caught; alignment is part
        // of the frame math, so a decode success proves both.
        let ds = ColumnarDataset {
            rx_bytes: 1.5,
            ..ColumnarDataset::default()
        };
        let bytes = encode(&ds);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back.rx_bytes, 1.5);
    }

    /// An `io::Write` that forwards one byte per `write` call, forcing
    /// the section writer's running-offset pad math to survive
    /// arbitrarily fragmented sinks.
    struct DribbleWriter(Vec<u8>);

    impl io::Write for DribbleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match buf.first() {
                Some(&b) => {
                    self.0.push(b);
                    Ok(1)
                }
                None => Ok(0),
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streamed_encode_is_byte_identical() {
        let ds = ColumnarDataset {
            rx_bytes: 3.25,
            tx_bytes: 0.5,
            log_bytes: 9.0,
            cells_operator: vec![0, 1, 2],
            cells_count: vec![10, 20, 30],
            ..ColumnarDataset::default()
        };
        let mut dribbled = DribbleWriter(Vec::new());
        encode_to(&ds, &mut dribbled).expect("streamed encode succeeds");
        assert_eq!(dribbled.0, encode(&ds));
    }

    #[test]
    fn write_file_streams_the_same_bytes() {
        let dir = std::env::temp_dir().join("wheels-wcd-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.wcd");
        let ds = ColumnarDataset {
            log_bytes: 42.0,
            runtime_operator: vec![0, 1, 2],
            runtime_min: vec![1.0, 2.0, 3.0],
            ..ColumnarDataset::default()
        };
        write_file(&path, &ds).expect("streamed file write succeeds");
        assert_eq!(std::fs::read(&path).unwrap(), encode(&ds));
        assert!(!dir.join("stream.wcd.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let ds = ColumnarDataset {
            log_bytes: 7.25,
            ..ColumnarDataset::default()
        };
        let mut bytes = encode(&ds);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(decode(&bytes).is_err(), "flipped payload bit must fail");
        assert!(
            decode(&bytes[..bytes.len() - 9]).is_err(),
            "truncation must fail"
        );
        assert!(
            decode(b"WCJ1----").is_err(),
            "journal magic is not a dataset"
        );
    }
}
