//! WCD1 — the columnar dataset's binary on-disk format.
//!
//! Same family as the WCJ1 checkpoint journal: magic, length prefixes,
//! and FNV-1a-64 checksums, but laid out as a *column catalogue* rather
//! than an append-only frame log. Each named column is one fixed-width
//! little-endian section whose payload starts on an 8-byte boundary, so
//! a loader may memory-map the file and view every section in place;
//! the portable decoder here copies instead (no `unsafe` in this
//! workspace) but still performs zero parsing — decode cost is a
//! checksum pass plus `memcpy`-shaped copies.
//!
//! ```text
//! file    := "WCD1" | count: u32 LE | section*
//! section := tag: u8 | name_len: u8 | name bytes (ASCII)
//!          | elems: u64 LE | fnv1a64(payload): u64 LE
//!          | pad to 8-byte file offset | payload (elems × width LE)
//! tag     := 1 = u8 | 2 = u32 | 3 = u64 | 4 = f64
//! ```
//!
//! `f64` payloads are raw IEEE-754 bit patterns (`to_le_bytes`), so the
//! format is lossless for every value JSON can carry and then some.
//! Decoding is strict: an unknown column name, a missing column, a
//! duplicate, a bad tag, or a checksum mismatch all fail loudly — a
//! WCD1 file either loads exactly or not at all, mirroring the
//! journal's "torn tail is truncated, corrupt body is an error" rule.

use std::fmt;
use std::io;
use std::path::Path;

use crate::checkpoint::{fnv1a64, write_atomic};

use super::ColumnarDataset;

/// File magic; also the auto-detection key used by
/// [`super::load_dataset`].
pub const MAGIC: &[u8; 4] = b"WCD1";

const TAG_U8: u8 = 1;
const TAG_U32: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;

/// Decode failure: structurally broken, checksum-mismatched, or
/// foreign/unknown-schema bytes.
#[derive(Debug)]
pub enum WcdError {
    /// Not a WCD1 file or the catalogue is malformed.
    Invalid(String),
    /// A section checksum did not match its payload.
    Checksum(String),
    /// Underlying I/O failure (file-level helpers only).
    Io(io::Error),
}

impl fmt::Display for WcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcdError::Invalid(m) => write!(f, "invalid WCD1 data: {m}"),
            WcdError::Checksum(m) => write!(f, "WCD1 checksum mismatch: {m}"),
            WcdError::Io(e) => write!(f, "WCD1 io error: {e}"),
        }
    }
}

impl std::error::Error for WcdError {}

impl From<io::Error> for WcdError {
    fn from(e: io::Error) -> Self {
        WcdError::Io(e)
    }
}

/// The single source of truth for the column catalogue: visits every
/// `(name, column)` pair of a [`ColumnarDataset`] in file order. Both
/// the encoder and the decoder walk this list, so the two sides can
/// never disagree about names, tags, or ordering. The three dataset
/// scalars travel as one-element `f64` sections at the end.
macro_rules! catalogue {
    ($ds:expr, $f:expr) => {{
        let ds = $ds;
        let mut f = $f;
        let mut walk = || -> Result<(), WcdError> {
            f("tput.t_ms", kind_u64(&mut ds.tput.t_ms))?;
            f("tput.test_id", kind_u32(&mut ds.tput.test_id))?;
            f("tput.operator", kind_u8(&mut ds.tput.operator))?;
            f("tput.direction", kind_u8(&mut ds.tput.direction))?;
            f("tput.mbps", kind_f64(&mut ds.tput.mbps))?;
            f("tput.tech", kind_u8(&mut ds.tput.tech))?;
            f("tput.cell", kind_u32(&mut ds.tput.cell))?;
            f("tput.speed_mph", kind_f64(&mut ds.tput.speed_mph))?;
            f("tput.zone", kind_u8(&mut ds.tput.zone))?;
            f("tput.tz", kind_u8(&mut ds.tput.tz))?;
            f("tput.server", kind_u8(&mut ds.tput.server))?;
            f("tput.rsrp_dbm", kind_f64(&mut ds.tput.rsrp_dbm))?;
            f("tput.mcs", kind_u8(&mut ds.tput.mcs))?;
            f("tput.bler", kind_f64(&mut ds.tput.bler))?;
            f("tput.carriers", kind_u8(&mut ds.tput.carriers))?;
            f(
                "tput.handovers_in_bin",
                kind_u8(&mut ds.tput.handovers_in_bin),
            )?;
            f("tput.driving", kind_u8(&mut ds.tput.driving))?;

            f("rtt.t_ms", kind_u64(&mut ds.rtt.t_ms))?;
            f("rtt.test_id", kind_u32(&mut ds.rtt.test_id))?;
            f("rtt.operator", kind_u8(&mut ds.rtt.operator))?;
            f("rtt.rtt_valid", kind_u8(&mut ds.rtt.rtt_valid))?;
            f("rtt.rtt_ms", kind_f64(&mut ds.rtt.rtt_ms))?;
            f("rtt.tech", kind_u8(&mut ds.rtt.tech))?;
            f("rtt.speed_mph", kind_f64(&mut ds.rtt.speed_mph))?;
            f("rtt.tz", kind_u8(&mut ds.rtt.tz))?;
            f("rtt.server", kind_u8(&mut ds.rtt.server))?;
            f("rtt.driving", kind_u8(&mut ds.rtt.driving))?;

            f("coverage.t_ms", kind_u64(&mut ds.coverage.t_ms))?;
            f("coverage.operator", kind_u8(&mut ds.coverage.operator))?;
            f("coverage.tech", kind_u8(&mut ds.coverage.tech))?;
            f("coverage.direction", kind_u8(&mut ds.coverage.direction))?;
            f("coverage.miles", kind_f64(&mut ds.coverage.miles))?;
            f("coverage.speed_mph", kind_f64(&mut ds.coverage.speed_mph))?;
            f("coverage.tz", kind_u8(&mut ds.coverage.tz))?;
            f("coverage.zone", kind_u8(&mut ds.coverage.zone))?;

            f("runs.id", kind_u32(&mut ds.runs.id))?;
            f("runs.kind", kind_u8(&mut ds.runs.kind))?;
            f("runs.operator", kind_u8(&mut ds.runs.operator))?;
            f("runs.start_ms", kind_u64(&mut ds.runs.start_ms))?;
            f("runs.end_ms", kind_u64(&mut ds.runs.end_ms))?;
            f("runs.miles", kind_f64(&mut ds.runs.miles))?;
            f("runs.tz", kind_u8(&mut ds.runs.tz))?;
            f("runs.server", kind_u8(&mut ds.runs.server))?;
            f("runs.hs5g_fraction", kind_f64(&mut ds.runs.hs5g_fraction))?;
            f("runs.handovers", kind_u32(&mut ds.runs.handovers))?;
            f("runs.driving", kind_u8(&mut ds.runs.driving))?;
            f("runs.partial", kind_u8(&mut ds.runs.partial))?;

            f("handovers.start_ms", kind_u64(&mut ds.handovers.start_ms))?;
            f(
                "handovers.duration_ms",
                kind_u64(&mut ds.handovers.duration_ms),
            )?;
            f("handovers.from_cell", kind_u32(&mut ds.handovers.from_cell))?;
            f("handovers.to_cell", kind_u32(&mut ds.handovers.to_cell))?;
            f("handovers.from_tech", kind_u8(&mut ds.handovers.from_tech))?;
            f("handovers.to_tech", kind_u8(&mut ds.handovers.to_tech))?;
            f("handovers.kind", kind_u8(&mut ds.handovers.kind))?;
            f("handovers.operator", kind_u8(&mut ds.handovers.operator))?;
            f(
                "handovers.test_valid",
                kind_u8(&mut ds.handovers.test_valid),
            )?;
            f("handovers.test_id", kind_u32(&mut ds.handovers.test_id))?;
            f("handovers.direction", kind_u8(&mut ds.handovers.direction))?;

            f("apps.id", kind_u32(&mut ds.apps.id))?;
            f("apps.operator", kind_u8(&mut ds.apps.operator))?;
            f("apps.kind", kind_u8(&mut ds.apps.kind))?;
            f("apps.server", kind_u8(&mut ds.apps.server))?;
            f("apps.driving", kind_u8(&mut ds.apps.driving))?;
            f("apps.off_valid", kind_u8(&mut ds.apps.off_valid))?;
            f("apps.off_e2e_len", kind_u32(&mut ds.apps.off_e2e_len))?;
            f(
                "apps.off_frames_offloaded",
                kind_u64(&mut ds.apps.off_frames_offloaded),
            )?;
            f(
                "apps.off_frames_total",
                kind_u64(&mut ds.apps.off_frames_total),
            )?;
            f("apps.off_compressed", kind_u8(&mut ds.apps.off_compressed))?;
            f("apps.off_hs5g", kind_f64(&mut ds.apps.off_hs5g))?;
            f("apps.off_handovers", kind_u64(&mut ds.apps.off_handovers))?;
            f("apps.off_e2e_ms", kind_f64(&mut ds.apps.off_e2e_ms))?;
            f("apps.vid_valid", kind_u8(&mut ds.apps.vid_valid))?;
            f("apps.vid_chunks_len", kind_u32(&mut ds.apps.vid_chunks_len))?;
            f("apps.vid_hs5g", kind_f64(&mut ds.apps.vid_hs5g))?;
            f("apps.vid_handovers", kind_u64(&mut ds.apps.vid_handovers))?;
            f(
                "apps.vid_bitrate_mbps",
                kind_f64(&mut ds.apps.vid_bitrate_mbps),
            )?;
            f("apps.vid_rebuffer_s", kind_f64(&mut ds.apps.vid_rebuffer_s))?;
            f("apps.vid_qoe", kind_f64(&mut ds.apps.vid_qoe))?;
            f("apps.gam_valid", kind_u8(&mut ds.apps.gam_valid))?;
            f(
                "apps.gam_bitrate_len",
                kind_u32(&mut ds.apps.gam_bitrate_len),
            )?;
            f(
                "apps.gam_latency_len",
                kind_u32(&mut ds.apps.gam_latency_len),
            )?;
            f(
                "apps.gam_frames_dropped",
                kind_u64(&mut ds.apps.gam_frames_dropped),
            )?;
            f(
                "apps.gam_frames_sent",
                kind_u64(&mut ds.apps.gam_frames_sent),
            )?;
            f("apps.gam_hs5g", kind_f64(&mut ds.apps.gam_hs5g))?;
            f("apps.gam_handovers", kind_u64(&mut ds.apps.gam_handovers))?;
            f(
                "apps.gam_bitrate_mbps",
                kind_f64(&mut ds.apps.gam_bitrate_mbps),
            )?;
            f("apps.gam_latency_ms", kind_f64(&mut ds.apps.gam_latency_ms))?;

            f("audits.test_id", kind_u32(&mut ds.audits.test_id))?;
            f("audits.operator", kind_u8(&mut ds.audits.operator))?;
            f("audits.kind", kind_u8(&mut ds.audits.kind))?;
            f("audits.day", kind_u8(&mut ds.audits.day))?;
            f("audits.scheduled_ms", kind_u64(&mut ds.audits.scheduled_ms))?;
            f("audits.status", kind_u8(&mut ds.audits.status))?;
            f("audits.attempts", kind_u32(&mut ds.audits.attempts))?;
            f("audits.fault", kind_u8(&mut ds.audits.fault))?;
            f(
                "audits.planned_samples",
                kind_u32(&mut ds.audits.planned_samples),
            )?;
            f(
                "audits.recorded_samples",
                kind_u32(&mut ds.audits.recorded_samples),
            )?;
            f("audits.lost_samples", kind_u32(&mut ds.audits.lost_samples))?;

            f("cells.operator", kind_u8(&mut ds.cells_operator))?;
            f("cells.count", kind_u64(&mut ds.cells_count))?;
            f("runtime.operator", kind_u8(&mut ds.runtime_operator))?;
            f("runtime.min", kind_f64(&mut ds.runtime_min))?;

            f("scalar.rx_bytes", scalar(&mut ds.rx_bytes))?;
            f("scalar.tx_bytes", scalar(&mut ds.tx_bytes))?;
            f("scalar.log_bytes", scalar(&mut ds.log_bytes))?;
            Ok(())
        };
        walk()
    }};
}

fn kind_u8(v: &mut Vec<u8>) -> EntrySource<'_> {
    EntrySource::U8(v)
}
fn kind_u32(v: &mut Vec<u32>) -> EntrySource<'_> {
    EntrySource::U32(v)
}
fn kind_u64(v: &mut Vec<u64>) -> EntrySource<'_> {
    EntrySource::U64(v)
}
fn kind_f64(v: &mut Vec<f64>) -> EntrySource<'_> {
    EntrySource::F64(v)
}
fn scalar(v: &mut f64) -> EntrySource<'_> {
    EntrySource::Scalar(v)
}

/// A mutable borrow of one catalogue column; each visitor decides
/// whether to read it (encode) or fill it (decode).
enum EntrySource<'a> {
    U8(&'a mut Vec<u8>),
    U32(&'a mut Vec<u32>),
    U64(&'a mut Vec<u64>),
    F64(&'a mut Vec<f64>),
    Scalar(&'a mut f64),
}

impl EntrySource<'_> {
    fn tag(&self) -> u8 {
        match self {
            EntrySource::U8(_) => TAG_U8,
            EntrySource::U32(_) => TAG_U32,
            EntrySource::U64(_) => TAG_U64,
            EntrySource::F64(_) | EntrySource::Scalar(_) => TAG_F64,
        }
    }
}

fn push_section(out: &mut Vec<u8>, name: &str, src: &EntrySource<'_>) -> Result<(), WcdError> {
    let (tag, elems, payload): (u8, u64, Vec<u8>) = match src {
        EntrySource::U8(v) => (TAG_U8, len64(v.len())?, v.to_vec()),
        EntrySource::U32(v) => (
            TAG_U32,
            len64(v.len())?,
            v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        ),
        EntrySource::U64(v) => (
            TAG_U64,
            len64(v.len())?,
            v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        ),
        EntrySource::F64(v) => (
            TAG_F64,
            len64(v.len())?,
            v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        ),
        EntrySource::Scalar(v) => (TAG_F64, 1, v.to_le_bytes().to_vec()),
    };
    let name_len = u8::try_from(name.len())
        .map_err(|_| WcdError::Invalid(format!("column name {name:?} exceeds 255 bytes")))?;
    out.push(tag);
    out.push(name_len);
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&elems.to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
    out.extend_from_slice(&payload);
    debug_assert_eq!(tag, src.tag());
    Ok(())
}

fn len64(n: usize) -> Result<u64, WcdError> {
    u64::try_from(n).map_err(|_| WcdError::Invalid("column length exceeds u64".to_string()))
}

/// Serialize a columnar dataset to WCD1 bytes.
pub fn encode(ds: &ColumnarDataset) -> Vec<u8> {
    // The catalogue visitor takes `&mut` slots so decode can fill them;
    // encode pays one clone to reuse the same single-source catalogue —
    // save cost is dominated by the payload copies either way.
    let mut ds = ds.clone();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut count: u32 = 0;
    let counter: Result<(), WcdError> = catalogue!(&mut ds, |_name: &str,
                                                             _src: EntrySource<'_>|
     -> Result<(), WcdError> {
        count += 1;
        Ok(())
    });
    counter.expect("counting visitor cannot fail");
    out.extend_from_slice(&count.to_le_bytes());
    let body: Result<(), WcdError> = catalogue!(&mut ds, |name: &str,
                                                          src: EntrySource<'_>|
     -> Result<(), WcdError> {
        push_section(&mut out, name, &src)
    });
    body.expect("encode visitor cannot fail: lengths checked per section");
    out
}

/// Streaming reader over the section catalogue.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WcdError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WcdError::Invalid(format!("file truncated reading {what}")))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64le(&mut self, what: &str) -> Result<u64, WcdError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8, what)?);
        Ok(u64::from_le_bytes(b))
    }

    fn align8(&mut self) {
        self.pos = (self.pos + 7) & !7;
    }

    /// Read one section header + payload; returns `(name, tag, payload)`.
    fn section(&mut self) -> Result<(&'a str, u8, &'a [u8]), WcdError> {
        let tag = self.take(1, "section tag")?[0];
        let width: usize = match tag {
            TAG_U8 => 1,
            TAG_U32 => 4,
            TAG_U64 => 8,
            TAG_F64 => 8,
            other => return Err(WcdError::Invalid(format!("unknown column tag {other}"))),
        };
        let name_len = usize::from(self.take(1, "name length")?[0]);
        let name = std::str::from_utf8(self.take(name_len, "column name")?)
            .map_err(|_| WcdError::Invalid("column name is not UTF-8".to_string()))?;
        let elems = self.u64le("element count")?;
        let stored_sum = self.u64le("checksum")?;
        let n = usize::try_from(elems)
            .ok()
            .and_then(|n| n.checked_mul(width))
            .ok_or_else(|| WcdError::Invalid(format!("column {name} too large for memory")))?;
        self.align8();
        let payload = self.take(n, "column payload")?;
        if fnv1a64(payload) != stored_sum {
            return Err(WcdError::Checksum(format!("column {name}")));
        }
        Ok((name, tag, payload))
    }
}

fn fill(slot: EntrySource<'_>, tag: u8, payload: &[u8], name: &str) -> Result<(), WcdError> {
    if slot.tag() != tag {
        return Err(WcdError::Invalid(format!(
            "column {name}: expected tag {}, file has {tag}",
            slot.tag()
        )));
    }
    match slot {
        EntrySource::U8(v) => {
            v.clear();
            v.extend_from_slice(payload);
        }
        EntrySource::U32(v) => {
            v.clear();
            v.reserve(payload.len() / 4);
            for c in payload.chunks_exact(4) {
                let mut b = [0u8; 4];
                b.copy_from_slice(c);
                v.push(u32::from_le_bytes(b));
            }
        }
        EntrySource::U64(v) => {
            v.clear();
            v.reserve(payload.len() / 8);
            for c in payload.chunks_exact(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                v.push(u64::from_le_bytes(b));
            }
        }
        EntrySource::F64(v) => {
            v.clear();
            v.reserve(payload.len() / 8);
            for c in payload.chunks_exact(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                v.push(f64::from_le_bytes(b));
            }
        }
        EntrySource::Scalar(v) => {
            if payload.len() != 8 {
                return Err(WcdError::Invalid(format!(
                    "scalar column {name} must hold exactly one element"
                )));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(payload);
            *v = f64::from_le_bytes(b);
        }
    }
    Ok(())
}

/// Deserialize WCD1 bytes into a columnar dataset. Strict: the file
/// must contain exactly the catalogue's columns, in catalogue order,
/// with matching tags and checksums.
pub fn decode(bytes: &[u8]) -> Result<ColumnarDataset, WcdError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4, "magic").ok() != Some(MAGIC.as_slice()) {
        return Err(WcdError::Invalid("missing WCD1 magic".to_string()));
    }
    let mut count_b = [0u8; 4];
    count_b.copy_from_slice(r.take(4, "column count")?);
    let declared = u32::from_le_bytes(count_b);

    let mut ds = ColumnarDataset::default();
    let mut seen: u32 = 0;
    let visit: Result<(), WcdError> = catalogue!(&mut ds, |name: &str,
                                                           slot: EntrySource<'_>|
     -> Result<(), WcdError> {
        let (got_name, tag, payload) = r.section()?;
        if got_name != name {
            return Err(WcdError::Invalid(format!(
                "expected column {name}, file has {got_name}"
            )));
        }
        seen += 1;
        fill(slot, tag, payload, name)
    });
    visit?;
    if seen != declared {
        return Err(WcdError::Invalid(format!(
            "catalogue declares {declared} columns, schema expects {seen}"
        )));
    }
    if r.pos != bytes.len() {
        return Err(WcdError::Invalid(format!(
            "{} trailing bytes after last column",
            bytes.len() - r.pos
        )));
    }
    ds.check().map_err(|e| WcdError::Invalid(e.0))?;
    Ok(ds)
}

/// Encode and persist via the checkpoint crash-safety discipline
/// (temp file + fsync + atomic rename).
pub fn write_file(path: &Path, ds: &ColumnarDataset) -> io::Result<()> {
    write_atomic(path, &encode(ds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dataset_encodes_and_decodes() {
        let ds = ColumnarDataset::default();
        let bytes = encode(&ds);
        assert_eq!(&bytes[..4], MAGIC);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back, ds);
    }

    #[test]
    fn payloads_are_8_byte_aligned() {
        // Corrupting any payload byte must be caught; alignment is part
        // of the frame math, so a decode success proves both.
        let ds = ColumnarDataset {
            rx_bytes: 1.5,
            ..ColumnarDataset::default()
        };
        let bytes = encode(&ds);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back.rx_bytes, 1.5);
    }

    #[test]
    fn corruption_is_detected() {
        let ds = ColumnarDataset {
            log_bytes: 7.25,
            ..ColumnarDataset::default()
        };
        let mut bytes = encode(&ds);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(decode(&bytes).is_err(), "flipped payload bit must fail");
        assert!(
            decode(&bytes[..bytes.len() - 9]).is_err(),
            "truncation must fail"
        );
        assert!(
            decode(b"WCJ1----").is_err(),
            "journal magic is not a dataset"
        );
    }
}
